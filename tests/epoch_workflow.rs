//! Integration test of the full epoch workflow (paper §3.3 + §4.5 end):
//! per-epoch indexes, statistics learned across epoch boundaries, queries
//! spanning epochs with globally consistent results, time-restricted
//! investigations touching only overlapping epochs, and the adaptive
//! jump-index decision.

use trustworthy_search::core::epoch::{EpochConfig, EpochManager};
use trustworthy_search::core::merge::MergeAssignment;
use trustworthy_search::corpus::{CorpusConfig, DocumentGenerator};
use trustworthy_search::jump::JumpConfig;
use trustworthy_search::prelude::*;

const DOCS: u64 = 900;
const PER_EPOCH: u64 = 300;

fn corpus() -> DocumentGenerator {
    DocumentGenerator::new(CorpusConfig {
        num_docs: DOCS,
        vocab_size: 800,
        mean_distinct_terms: 25,
        ..Default::default()
    })
}

fn manager() -> EpochManager {
    EpochManager::new(EpochConfig {
        docs_per_epoch: PER_EPOCH,
        vocab_size: 800,
        num_lists: 32,
        unmerged_terms: 4,
        rank_by_query_freq: false,
        ..Default::default()
    })
}

fn ingest(m: &mut EpochManager, gen: &DocumentGenerator) {
    for d in gen.docs(0..DOCS) {
        let global = m.add_document_terms(&d.terms, d.timestamp).unwrap();
        assert_eq!(global, d.id, "global IDs must track commit order");
    }
}

#[test]
fn epoch_results_match_single_engine_reference() {
    let gen = corpus();
    let mut epochs = manager();
    ingest(&mut epochs, &gen);
    assert_eq!(epochs.num_epochs(), 3);

    // Reference: one flat engine over the same corpus.
    let mut flat = SearchEngine::new(EngineConfig {
        assignment: MergeAssignment::uniform(32),
        store_documents: false,
        ..Default::default()
    })
    .unwrap();
    for d in gen.docs(0..DOCS) {
        flat.add_document_terms(&d.terms, d.timestamp, None)
            .unwrap();
    }

    for probe in 0..30u32 {
        let terms = [TermId(probe), TermId(probe * 3 + 1)];
        let mut a = epochs.conjunctive_terms(&terms).unwrap();
        let (b, _) = flat.conjunctive_terms(&terms).unwrap();
        a.sort_unstable();
        assert_eq!(a, b, "terms {terms:?}");
    }
}

#[test]
fn later_epochs_learn_assignments() {
    let gen = corpus();
    let mut epochs = manager();
    ingest(&mut epochs, &gen);
    // The current (3rd) epoch must use a learned Table assignment with
    // the corpus's hottest terms (low IDs, by construction) unmerged.
    match epochs.current_assignment() {
        Some(MergeAssignment::Table { list_of, .. }) => {
            let private: Vec<u32> = (0..800u32).filter(|&t| list_of[t as usize] < 4).collect();
            assert_eq!(private.len(), 4);
            assert!(
                private.iter().all(|&t| t < 32),
                "unmerged terms should be head terms, got {private:?}"
            );
        }
        other => panic!("expected learned assignment, got {other:?}"),
    }
}

#[test]
fn time_restriction_prunes_epochs() {
    let gen = corpus();
    let mut epochs = manager();
    ingest(&mut epochs, &gen);
    // Query an always-present head term within epoch 2's time span only.
    let from = gen.doc(PER_EPOCH).timestamp;
    let to = gen.doc(2 * PER_EPOCH - 1).timestamp;
    let (docs, scanned) = epochs.conjunctive_in_range(&[TermId(0)], from, to).unwrap();
    assert_eq!(scanned, 1, "only the middle epoch overlaps");
    assert!(docs
        .iter()
        .all(|d| (PER_EPOCH..2 * PER_EPOCH).contains(&d.0)));
    assert!(!docs.is_empty());
}

#[test]
fn adaptive_jump_workflow() {
    let gen = corpus();
    let mut epochs = EpochManager::new(EpochConfig {
        docs_per_epoch: PER_EPOCH,
        vocab_size: 800,
        num_lists: 32,
        unmerged_terms: 0,
        adaptive_jump: Some(JumpConfig::new(2048, 4, 1 << 32)),
        ..Default::default()
    });
    // Epoch 1 while issuing long conjunctive queries.
    for d in gen.docs(0..PER_EPOCH) {
        epochs.add_document_terms(&d.terms, d.timestamp).unwrap();
    }
    assert_eq!(
        epochs.current_jump_enabled(),
        Some(false),
        "no statistics yet"
    );
    for i in 0..20u32 {
        let terms: Vec<TermId> = (0..5).map(|j| TermId((i + j * 7) % 50)).collect();
        epochs.conjunctive_terms(&terms).unwrap();
    }
    // Epoch 2 sees the learned many-keyword pattern.
    for d in gen.docs(PER_EPOCH..2 * PER_EPOCH) {
        epochs.add_document_terms(&d.terms, d.timestamp).unwrap();
    }
    assert_eq!(epochs.current_jump_enabled(), Some(true));
    // Queries still return correct results with the jump index on.
    let docs = epochs.conjunctive_terms(&[TermId(0), TermId(1)]).unwrap();
    let reference: Vec<u64> = gen
        .docs(0..2 * PER_EPOCH)
        .filter(|d| {
            d.terms.iter().any(|&(t, _)| t == TermId(0))
                && d.terms.iter().any(|&(t, _)| t == TermId(1))
        })
        .map(|d| d.id.0)
        .collect();
    let got: Vec<u64> = docs.iter().map(|d| d.0).collect();
    assert_eq!(got, reference);
}
