//! Deterministic schedule-permutation race tests ("loom-lite").
//!
//! Each test drives the real concurrency types — [`AtomicIoStats`] and the
//! `IndexWriter`/`Searcher` service — through hundreds of seeded
//! interleavings of virtual-thread operations (see `tks_core::sched`).
//! Any violated invariant reports the exact seed, so a failure here is
//! reproducible by construction: re-run the test and the same seed fails
//! the same way.

use tks_core::sched::{explore, interleave, Step};
use tks_core::{service, EngineConfig, IndexWriter, Query, SearchEngine, Searcher};
use tks_postings::types::Timestamp;
use tks_replica::{attach, detach, fresh_images, recover_shard, ApplyMode, ReplicaSet};
use tks_shard::{shard_of, QuerySession, ShardedArchive, ShardedSearcher, ShardedWriter};
use tks_worm::{AtomicIoStats, ChainHead, FaultPolicy, IoStats};

const SCHEDULES: u64 = 160;

fn small_engine() -> SearchEngine {
    SearchEngine::new(EngineConfig::default()).expect("default config is valid")
}

// ---------------------------------------------------------------------------
// AtomicIoStats: record / snapshot / reset under every interleaving.
// ---------------------------------------------------------------------------

struct StatsState {
    shared: AtomicIoStats,
    /// What the counters must read right now, updated in lockstep by every
    /// mutating op.
    model: IoStats,
    violations: Vec<String>,
}

fn delta(read_ios: u64, write_ios: u64, hits: u64, misses: u64) -> IoStats {
    IoStats {
        read_ios,
        write_ios,
        hits,
        misses,
    }
}

/// Two recorders, one snapshotter, one resetter.  The snapshot must always
/// equal the model exactly (ops are atomic at schedule granularity), which
/// pins down that `record` adds to every counter, `reset` zeroes every
/// counter, and `snapshot` reads them coherently.
fn stats_threads(with_reset: bool) -> (StatsState, Vec<Vec<Step<'static, StatsState>>>) {
    let state = StatsState {
        shared: AtomicIoStats::new(),
        model: IoStats::new(),
        violations: Vec::new(),
    };
    let recorder = |scale: u64| -> Vec<Step<'static, StatsState>> {
        (1..=5u64)
            .map(|i| {
                let d = delta(i * scale, i, i + scale, i % 2);
                Box::new(move |s: &mut StatsState| {
                    s.shared.record(d);
                    s.model += d;
                }) as Step<'static, StatsState>
            })
            .collect()
    };
    let snapshotter: Vec<Step<'static, StatsState>> = (0..5)
        .map(|_| {
            Box::new(|s: &mut StatsState| {
                let got = s.shared.snapshot();
                if got != s.model {
                    s.violations
                        .push(format!("snapshot {got:?} != model {:?}", s.model));
                }
            }) as Step<'static, StatsState>
        })
        .collect();
    let mut threads = vec![recorder(1), recorder(10), snapshotter];
    if with_reset {
        threads.push(
            (0..2)
                .map(|_| {
                    Box::new(|s: &mut StatsState| {
                        s.shared.reset();
                        s.model = IoStats::new();
                    }) as Step<'static, StatsState>
                })
                .collect(),
        );
    }
    (state, threads)
}

#[test]
fn stats_snapshots_agree_with_model_under_all_schedules() {
    let clean = explore(0xA11CE, SCHEDULES, |seed| {
        let (mut state, mut threads) = stats_threads(false);
        interleave(seed, &mut state, &mut threads);
        // Quiescent equality: once every op has run, the counters hold
        // exactly the sum of all recorded deltas.
        let end = state.shared.snapshot();
        if end != state.model {
            state
                .violations
                .push(format!("quiescent {end:?} != model {:?}", state.model));
        }
        if state.violations.is_empty() {
            Ok(())
        } else {
            Err(state.violations.join("; "))
        }
    })
    .unwrap_or_else(|f| panic!("{f}"));
    assert_eq!(clean, SCHEDULES);
}

#[test]
fn stats_reset_is_total_under_all_schedules() {
    explore(0xBEEF, SCHEDULES, |seed| {
        let (mut state, mut threads) = stats_threads(true);
        interleave(seed, &mut state, &mut threads);
        let end = state.shared.snapshot();
        if end != state.model {
            state
                .violations
                .push(format!("quiescent {end:?} != model {:?}", state.model));
        }
        if state.violations.is_empty() {
            Ok(())
        } else {
            Err(state.violations.join("; "))
        }
    })
    .unwrap_or_else(|f| panic!("{f}"));
}

#[test]
fn stats_snapshots_are_monotone_without_reset() {
    explore(0xCAFE, SCHEDULES, |seed| {
        let (mut state, mut threads) = stats_threads(false);
        let mut last = IoStats::new();
        // Append a monotonicity checker interleaved as a fourth thread.
        threads.push(
            (0..4)
                .map(|_| {
                    Box::new(move |s: &mut StatsState| {
                        let got = s.shared.snapshot();
                        if got.read_ios < last.read_ios
                            || got.write_ios < last.write_ios
                            || got.hits < last.hits
                            || got.misses < last.misses
                        {
                            s.violations
                                .push(format!("snapshot {got:?} went backwards from {last:?}"));
                        }
                        last = got;
                    }) as Step<'_, StatsState>
                })
                .collect(),
        );
        interleave(seed, &mut state, &mut threads);
        if state.violations.is_empty() {
            Ok(())
        } else {
            Err(state.violations.join("; "))
        }
    })
    .unwrap_or_else(|f| panic!("{f}"));
}

// ---------------------------------------------------------------------------
// Watermark publication: IndexWriter commits vs Searcher reads.
// ---------------------------------------------------------------------------

struct WmState {
    writer: IndexWriter,
    searcher: Searcher,
    /// Documents committed so far (the model the watermark must track).
    committed: u64,
    /// Watermark seen by the previous reader op.
    last_seen: u64,
    /// `(watermark, handle)` captured by the pinning op.
    pinned: Option<(u64, Searcher)>,
    violations: Vec<String>,
}

impl WmState {
    fn check(&mut self, what: &str, cond: bool, detail: String) {
        if !cond {
            self.violations.push(format!("{what}: {detail}"));
        }
    }
}

const DOCS: u64 = 5;

fn wm_threads() -> (WmState, Vec<Vec<Step<'static, WmState>>>) {
    let (writer, searcher) = service(small_engine());
    let state = WmState {
        writer,
        searcher,
        committed: 0,
        last_seen: 0,
        pinned: None,
        violations: Vec::new(),
    };
    // Writer: commit DOCS documents that all contain the term "common".
    let writer_ops: Vec<Step<'static, WmState>> = (0..DOCS)
        .map(|i| {
            Box::new(move |s: &mut WmState| {
                match s
                    .writer
                    .commit(&format!("common record{i}"), Timestamp(1_000 + i))
                {
                    Ok(_) => s.committed += 1,
                    Err(e) => s.violations.push(format!("commit {i} failed: {e}")),
                }
            }) as Step<'static, WmState>
        })
        .collect();
    // Reader: watermark exactness + monotonicity + prefix visibility.
    let reader_ops: Vec<Step<'static, WmState>> = (0..6)
        .map(|_| {
            Box::new(|s: &mut WmState| {
                let seen = s.searcher.visible_docs();
                let (committed, last) = (s.committed, s.last_seen);
                s.check(
                    "watermark-exact",
                    seen == committed,
                    format!("visible {seen} but {committed} committed"),
                );
                s.check(
                    "watermark-monotone",
                    seen >= last,
                    format!("visible {seen} after seeing {last}"),
                );
                s.last_seen = seen;
                match s.searcher.execute(Query::disjunctive("common", usize::MAX)) {
                    Ok(resp) => {
                        let hits = resp.hits.len() as u64;
                        s.check(
                            "prefix-visibility",
                            hits == seen,
                            format!("{hits} hits at watermark {seen}"),
                        );
                    }
                    Err(e) => s.violations.push(format!("query failed: {e}")),
                }
            }) as Step<'static, WmState>
        })
        .collect();
    // Pinner: one op takes a pinned snapshot, later ops require it stable.
    let mut pin_ops: Vec<Step<'static, WmState>> = vec![Box::new(|s: &mut WmState| {
        let handle = s.searcher.pin();
        s.pinned = Some((handle.visible_docs(), handle));
    })];
    for _ in 0..3 {
        pin_ops.push(Box::new(|s: &mut WmState| {
            let Some((at, handle)) = s.pinned.take() else {
                return;
            };
            let now = handle.visible_docs();
            let hits = match handle.execute(Query::disjunctive("common", usize::MAX)) {
                Ok(resp) => resp.hits.len() as u64,
                Err(e) => {
                    s.violations.push(format!("pinned query failed: {e}"));
                    at
                }
            };
            s.check(
                "pin-stability",
                now == at && hits == at,
                format!("pinned at {at} but sees watermark {now} / {hits} hits"),
            );
            s.pinned = Some((at, handle));
        }));
    }
    (state, vec![writer_ops, reader_ops, pin_ops])
}

#[test]
fn watermark_invariants_hold_under_all_schedules() {
    let clean = explore(0xD0C5, SCHEDULES, |seed| {
        let (mut state, mut threads) = wm_threads();
        interleave(seed, &mut state, &mut threads);
        // Quiescent: every commit published, the full corpus visible.
        let end = state.searcher.visible_docs();
        if end != DOCS {
            state
                .violations
                .push(format!("quiescent watermark {end}, expected {DOCS}"));
        }
        if state.violations.is_empty() {
            Ok(())
        } else {
            Err(state.violations.join("; "))
        }
    })
    .unwrap_or_else(|f| panic!("{f}"));
    assert_eq!(clean, SCHEDULES);
}

// ---------------------------------------------------------------------------
// Decoded-block cache: cache hits must never change results across writer
// appends (tail-block growth invalidates by length, no writer → reader
// signalling).
// ---------------------------------------------------------------------------

struct CacheState {
    writer: IndexWriter,
    searcher: Searcher,
    committed: u64,
    violations: Vec<String>,
}

fn cache_threads() -> (CacheState, Vec<Vec<Step<'static, CacheState>>>) {
    let (writer, searcher) = service(small_engine());
    let state = CacheState {
        writer,
        searcher,
        committed: 0,
        violations: Vec::new(),
    };
    // Writer: every document matches the conjunctive query below, so the
    // correct answer at any point is exactly the committed prefix.
    let writer_ops: Vec<Step<'static, CacheState>> = (0..DOCS)
        .map(|i| {
            Box::new(move |s: &mut CacheState| {
                match s
                    .writer
                    .commit(&format!("common beta filler{i}"), Timestamp(3_000 + i))
                {
                    Ok(_) => s.committed += 1,
                    Err(e) => s.violations.push(format!("commit {i} failed: {e}")),
                }
            }) as Step<'static, CacheState>
        })
        .collect();
    // Reader: a conjunctive query runs the scan-merge path through the
    // decoded-block cache.  Each op executes it twice back to back — the
    // second run is served from blocks the first just decoded — and both
    // must agree with the committed prefix exactly.
    let reader_ops: Vec<Step<'static, CacheState>> = (0..6)
        .map(|_| {
            Box::new(|s: &mut CacheState| {
                let committed = s.committed;
                let cold = s.searcher.execute(Query::conjunctive("common beta"));
                let warm = s.searcher.execute(Query::conjunctive("common beta"));
                match (cold, warm) {
                    (Ok(a), Ok(b)) => {
                        if a.docs().len() as u64 != committed {
                            s.violations.push(format!(
                                "conjunctive saw {} docs with {committed} committed",
                                a.docs().len()
                            ));
                        }
                        if a.docs() != b.docs() {
                            s.violations
                                .push("cache-served re-execution changed the result".into());
                        }
                    }
                    (Err(e), _) | (_, Err(e)) => {
                        s.violations.push(format!("conjunctive failed: {e}"))
                    }
                }
            }) as Step<'static, CacheState>
        })
        .collect();
    (state, vec![writer_ops, reader_ops])
}

#[test]
fn decoded_cache_results_track_appends_under_all_schedules() {
    let clean = explore(0xB10C, SCHEDULES, |seed| {
        let (mut state, mut threads) = cache_threads();
        interleave(seed, &mut state, &mut threads);
        // Quiescent: the full corpus matches.
        match state.searcher.execute(Query::conjunctive("common beta")) {
            Ok(resp) if resp.docs().len() as u64 == DOCS => {}
            Ok(resp) => state.violations.push(format!(
                "quiescent saw {} docs, expected {DOCS}",
                resp.docs().len()
            )),
            Err(e) => state
                .violations
                .push(format!("quiescent query failed: {e}")),
        }
        if state.violations.is_empty() {
            Ok(())
        } else {
            Err(state.violations.join("; "))
        }
    })
    .unwrap_or_else(|f| panic!("{f}"));
    assert_eq!(clean, SCHEDULES);
}

#[test]
fn decoded_cache_invalidates_grown_tail_blocks() {
    // Deterministic interleaving: read, append, read again.  The second
    // read must observe the new posting (length-based invalidation of the
    // cached tail decode) and the cache must record both the reuse and the
    // invalidation.
    let (mut writer, searcher) = service(small_engine());
    writer.commit("common one", Timestamp(1)).unwrap();
    let first = searcher.execute(Query::conjunctive("common")).unwrap();
    assert_eq!(first.docs().len(), 1);
    writer.commit("common two", Timestamp(2)).unwrap();
    let second = searcher.execute(Query::conjunctive("common")).unwrap();
    assert_eq!(
        second.docs().len(),
        2,
        "stale cached tail block served after append"
    );
    let stats = searcher.decoded_cache_stats();
    assert!(
        stats.invalidations >= 1,
        "tail growth must invalidate, got {stats:?}"
    );
}

// ---------------------------------------------------------------------------
// Writer crash mid-schedule: a seeded WORM fault kills a commit while
// readers and pinned snapshots are live, then the "rebooted" engine must
// recover to exactly the committed prefix.
// ---------------------------------------------------------------------------

struct CrashState {
    writer: IndexWriter,
    searcher: Searcher,
    /// Successful commits only — failed commits must publish nothing.
    committed: u64,
    pinned: Option<(u64, Searcher)>,
    violations: Vec<String>,
}

fn crash_threads(seed: u64) -> (CrashState, Vec<Vec<Step<'static, CrashState>>>) {
    let (mut writer, searcher) = service(small_engine());
    // Arm a seeded fault on the posting store mid-corpus: the SplitMix64
    // stream decides which append dies and whether bytes tear.
    writer.with_engine(|e| {
        e.list_store_mut()
            .fs_mut()
            .arm_faults(FaultPolicy::seeded(seed, 24));
    });
    let state = CrashState {
        writer,
        searcher,
        committed: 0,
        pinned: None,
        violations: Vec::new(),
    };
    let writer_ops: Vec<Step<'static, CrashState>> = (0..DOCS)
        .map(|i| {
            Box::new(move |s: &mut CrashState| {
                match s
                    .writer
                    .commit(&format!("common record{i}"), Timestamp(5_000 + i))
                {
                    // A success after a failure is fine per se (healing
                    // regimes recover); the reader and recovery invariants
                    // below catch any resurrected quarantined bytes.
                    Ok(_) => s.committed += 1,
                    // Failed commits publish nothing — the invariant the
                    // readers verify against `committed`.
                    Err(_) => {}
                }
            }) as Step<'static, CrashState>
        })
        .collect();
    // Reader: the watermark must track successful commits exactly even
    // while commits are dying mid-append.
    let reader_ops: Vec<Step<'static, CrashState>> = (0..6)
        .map(|_| {
            Box::new(|s: &mut CrashState| {
                let seen = s.searcher.visible_docs();
                if seen != s.committed {
                    s.violations.push(format!(
                        "watermark-exact: visible {seen} but {} committed",
                        s.committed
                    ));
                }
                match s.searcher.execute(Query::disjunctive("common", usize::MAX)) {
                    Ok(resp) => {
                        let hits = resp.hits.len() as u64;
                        if hits != seen {
                            s.violations.push(format!(
                                "prefix-visibility: {hits} hits at watermark {seen}"
                            ));
                        }
                    }
                    Err(e) => s.violations.push(format!("query failed: {e}")),
                }
            }) as Step<'static, CrashState>
        })
        .collect();
    // Pinner: snapshots taken before the crash stay valid afterwards.
    let mut pin_ops: Vec<Step<'static, CrashState>> = vec![Box::new(|s: &mut CrashState| {
        let handle = s.searcher.pin();
        s.pinned = Some((handle.visible_docs(), handle));
    })];
    for _ in 0..3 {
        pin_ops.push(Box::new(|s: &mut CrashState| {
            let Some((at, handle)) = s.pinned.take() else {
                return;
            };
            let now = handle.visible_docs();
            let hits = match handle.execute(Query::disjunctive("common", usize::MAX)) {
                Ok(resp) => resp.hits.len() as u64,
                Err(e) => {
                    s.violations.push(format!("pinned query failed: {e}"));
                    at
                }
            };
            if now != at || hits != at {
                s.violations.push(format!(
                    "pin-stability: pinned at {at} but sees watermark {now} / {hits} hits"
                ));
            }
            s.pinned = Some((at, handle));
        }));
    }
    (state, vec![writer_ops, reader_ops, pin_ops])
}

#[test]
fn writer_crash_keeps_watermark_and_pins_valid_then_recovery_converges() {
    let clean = explore(0xC8A5, SCHEDULES, |seed| {
        let (mut state, mut threads) = crash_threads(seed);
        interleave(seed, &mut state, &mut threads);
        let committed = state.committed;
        // Quiescent: drop every reader handle, reboot the engine from its
        // raw devices, and require convergence to the committed prefix.
        let CrashState {
            writer,
            searcher,
            mut violations,
            pinned,
            ..
        } = state;
        drop(searcher);
        drop(pinned);
        let engine = match writer.try_into_engine() {
            Ok(e) => e,
            Err(_) => return Err("searcher handles still pinned the engine".into()),
        };
        let mut parts = engine.into_parts();
        parts.store_fs.disarm_faults();
        if let Err(e) = parts.store_fs.crash_recover() {
            return Err(format!("crash_recover failed: {e}"));
        }
        match SearchEngine::recover(parts, EngineConfig::default()) {
            Ok(recovered) => {
                if recovered.num_docs() != committed {
                    violations.push(format!(
                        "recovered {} docs, {committed} committed",
                        recovered.num_docs()
                    ));
                }
                match recovered.execute(&Query::disjunctive("common", usize::MAX)) {
                    Ok(resp) => {
                        if resp.hits.len() as u64 != committed {
                            violations.push(format!(
                                "recovered engine returned {} hits, expected {committed}",
                                resp.hits.len()
                            ));
                        }
                    }
                    Err(e) => violations.push(format!("recovered query failed: {e}")),
                }
            }
            Err(e) => violations.push(format!("recovery failed: {e}")),
        }
        if violations.is_empty() {
            Ok(())
        } else {
            Err(violations.join("; "))
        }
    })
    .unwrap_or_else(|f| panic!("{f}"));
    assert_eq!(clean, SCHEDULES);
}

// ---------------------------------------------------------------------------
// Commit-chain heads under concurrency: a response's chain head must be a
// pure function of its watermark — the same watermark always carries the
// same head, pinned snapshots never change heads, watermark 0 carries the
// genesis head — and heads observed before a crash must match the
// recovered engine's heads at every surviving watermark.
// ---------------------------------------------------------------------------

struct ChainState {
    writer: IndexWriter,
    searcher: Searcher,
    committed: u64,
    /// First head observed at each watermark: once seen, that watermark
    /// may never answer with a different head.
    heads: std::collections::BTreeMap<u64, ChainHead>,
    pinned: Option<(u64, ChainHead, Searcher)>,
    violations: Vec<String>,
}

impl ChainState {
    fn observe(&mut self, watermark: u64, head: ChainHead, ctx: &str) {
        if watermark == 0 && head != ChainHead::genesis() {
            self.violations.push(format!(
                "{ctx}: watermark 0 carried non-genesis head {head}"
            ));
        }
        match self.heads.get(&watermark) {
            Some(first) if *first != head => self.violations.push(format!(
                "{ctx}: watermark {watermark} answered head {head} after {first}"
            )),
            Some(_) => {}
            None => {
                if self.heads.values().any(|h| *h == head) {
                    self.violations.push(format!(
                        "{ctx}: head {head} reused at a second watermark {watermark}"
                    ));
                }
                self.heads.insert(watermark, head);
            }
        }
    }
}

fn chain_threads(faults: Option<u64>) -> (ChainState, Vec<Vec<Step<'static, ChainState>>>) {
    let (mut writer, searcher) = service(small_engine());
    if let Some(seed) = faults {
        writer.with_engine(|e| {
            e.list_store_mut()
                .fs_mut()
                .arm_faults(FaultPolicy::seeded(seed, 24));
        });
    }
    let state = ChainState {
        writer,
        searcher,
        committed: 0,
        heads: std::collections::BTreeMap::new(),
        pinned: None,
        violations: Vec::new(),
    };
    let writer_ops: Vec<Step<'static, ChainState>> = (0..DOCS)
        .map(|i| {
            Box::new(move |s: &mut ChainState| {
                if s.writer
                    .commit(&format!("common record{i}"), Timestamp(9_000 + i))
                    .is_ok()
                {
                    s.committed += 1;
                }
            }) as Step<'static, ChainState>
        })
        .collect();
    let reader_ops: Vec<Step<'static, ChainState>> = (0..6)
        .map(|_| {
            Box::new(|s: &mut ChainState| {
                match s.searcher.execute(Query::disjunctive("common", usize::MAX)) {
                    Ok(resp) => s.observe(resp.visible_docs, resp.chain_head, "reader"),
                    Err(e) => s.violations.push(format!("query failed: {e}")),
                }
            }) as Step<'static, ChainState>
        })
        .collect();
    let mut pin_ops: Vec<Step<'static, ChainState>> = vec![Box::new(|s: &mut ChainState| {
        let handle = s.searcher.pin();
        match handle.execute(Query::disjunctive("common", usize::MAX)) {
            Ok(resp) => s.pinned = Some((resp.visible_docs, resp.chain_head, handle)),
            Err(e) => s.violations.push(format!("pin query failed: {e}")),
        }
    })];
    for _ in 0..3 {
        pin_ops.push(Box::new(|s: &mut ChainState| {
            let Some((at, head, handle)) = s.pinned.take() else {
                return;
            };
            match handle.execute(Query::disjunctive("common", usize::MAX)) {
                Ok(resp) => {
                    if resp.visible_docs != at || resp.chain_head != head {
                        s.violations.push(format!(
                            "pin-stability: pinned watermark {at} head {head}, later saw \
                             watermark {} head {}",
                            resp.visible_docs, resp.chain_head
                        ));
                    }
                }
                Err(e) => s.violations.push(format!("pinned query failed: {e}")),
            }
            s.pinned = Some((at, head, handle));
        }));
    }
    (state, vec![writer_ops, reader_ops, pin_ops])
}

#[test]
fn chain_heads_are_a_pure_function_of_the_watermark_under_all_schedules() {
    let clean = explore(0xC4A1, SCHEDULES, |seed| {
        let (mut state, mut threads) = chain_threads(None);
        interleave(seed, &mut state, &mut threads);
        // Monotone advancement: with DOCS successful commits there must be
        // one distinct head per watermark the readers saw, and the map is
        // keyed by watermark so distinctness was already enforced.
        if state.violations.is_empty() {
            Ok(())
        } else {
            Err(state.violations.join("; "))
        }
    })
    .unwrap_or_else(|f| panic!("{f}"));
    assert_eq!(clean, SCHEDULES);
}

#[test]
fn chain_heads_observed_before_a_crash_survive_recovery() {
    let clean = explore(0xC4A2, SCHEDULES, |seed| {
        let (mut state, mut threads) = chain_threads(Some(seed));
        interleave(seed, &mut state, &mut threads);
        let ChainState {
            writer,
            searcher,
            committed,
            heads,
            pinned,
            mut violations,
        } = state;
        drop(searcher);
        drop(pinned);
        let engine = match writer.try_into_engine() {
            Ok(e) => e,
            Err(_) => return Err("searcher handles still pinned the engine".into()),
        };
        let mut parts = engine.into_parts();
        parts.store_fs.disarm_faults();
        if let Err(e) = parts.store_fs.crash_recover() {
            return Err(format!("crash_recover failed: {e}"));
        }
        match SearchEngine::recover(parts, EngineConfig::default()) {
            Ok(recovered) => {
                if let Some(m) = recovered.chain_mismatch() {
                    violations.push(format!("crash residue misread as tamper: {m}"));
                }
                for (&w, &head) in heads.iter().filter(|&(&w, _)| w <= committed) {
                    if recovered.chain_head_at(w) != Some(head) {
                        violations.push(format!(
                            "watermark {w} head changed across recovery: saw {head}, \
                             recovered {:?}",
                            recovered.chain_head_at(w)
                        ));
                    }
                }
            }
            Err(e) => violations.push(format!("recovery failed: {e}")),
        }
        if violations.is_empty() {
            Ok(())
        } else {
            Err(violations.join("; "))
        }
    })
    .unwrap_or_else(|f| panic!("{f}"));
    assert_eq!(clean, SCHEDULES);
}

// ---------------------------------------------------------------------------
// Sharded watermark vector: per-shard writers vs scatter-gather readers.
// The sharded service has no global sequencer, so its consistency unit is
// the *vector* of per-shard watermarks: every slot must be exact against
// the per-shard commit model, move monotonically, and the merged response
// must equal the vector's sum — under every interleaving of the two
// shard writers and the reader.
// ---------------------------------------------------------------------------

struct ShardWmState {
    writer: ShardedWriter,
    searcher: ShardedSearcher,
    /// Per-shard documents committed so far (the model the vector tracks).
    committed: Vec<u64>,
    /// Watermark vector seen by the previous reader op.
    last_seen: Vec<u64>,
    /// `(vector, session)` captured by the snapshot op.
    pinned: Option<(Vec<u64>, QuerySession)>,
    violations: Vec<String>,
}

impl ShardWmState {
    fn check(&mut self, what: &str, cond: bool, detail: String) {
        if !cond {
            self.violations.push(format!("{what}: {detail}"));
        }
    }
}

/// Documents each shard's writer thread commits.
const SHARD_DOCS: u64 = 3;

fn sharded_state() -> ShardWmState {
    let archive = ShardedArchive::create(EngineConfig::default(), 2).expect("valid config");
    let (writer, searcher) = archive.into_service();
    ShardWmState {
        writer,
        searcher,
        committed: vec![0, 0],
        last_seen: vec![0, 0],
        pinned: None,
        violations: Vec::new(),
    }
}

/// One virtual writer thread that commits `SHARD_DOCS` documents to a
/// fixed shard (`commit_to` pins the route, so the model knows exactly
/// which vector slot every commit advances).
fn shard_writer_ops(shard: u32) -> Vec<Step<'static, ShardWmState>> {
    (0..SHARD_DOCS)
        .map(move |i| {
            Box::new(move |s: &mut ShardWmState| {
                let text = format!("common shard{shard} record{i}");
                match s.writer.commit_to(shard, &text, Timestamp(1_000 + i)) {
                    Ok(doc) => {
                        s.committed[shard as usize] += 1;
                        if shard_of(doc) != shard {
                            s.violations
                                .push(format!("{doc} routed to shard {}", shard_of(doc)));
                        }
                    }
                    Err(e) => s
                        .violations
                        .push(format!("commit {i} to shard {shard} failed: {e}")),
                }
            }) as Step<'static, ShardWmState>
        })
        .collect()
}

fn sharded_wm_threads() -> (ShardWmState, Vec<Vec<Step<'static, ShardWmState>>>) {
    // Reader: vector exactness + per-slot monotonicity + merged prefix
    // visibility (the scatter-gathered hit count equals the vector sum).
    let reader_ops: Vec<Step<'static, ShardWmState>> = (0..6)
        .map(|_| {
            Box::new(|s: &mut ShardWmState| {
                let vector = s.searcher.watermarks();
                let (model, last) = (s.committed.clone(), s.last_seen.clone());
                s.check(
                    "vector-exact",
                    vector == model,
                    format!("vector {vector:?} but {model:?} committed"),
                );
                s.check(
                    "vector-monotone",
                    vector.iter().zip(&last).all(|(now, then)| now >= then),
                    format!("vector {vector:?} after seeing {last:?}"),
                );
                s.last_seen = vector.clone();
                let sum: u64 = vector.iter().sum();
                match s.searcher.execute(Query::disjunctive("common", usize::MAX)) {
                    Ok(resp) => {
                        let hits = resp.hits.len() as u64;
                        s.check(
                            "merged-prefix-visibility",
                            hits == sum && resp.visible_docs == sum,
                            format!(
                                "{hits} hits / {} visible at vector {vector:?}",
                                resp.visible_docs
                            ),
                        );
                        s.check("merged-trusted", resp.trusted, "untrusted".to_string());
                    }
                    Err(e) => s.violations.push(format!("query failed: {e}")),
                }
            }) as Step<'static, ShardWmState>
        })
        .collect();
    (
        sharded_state(),
        vec![shard_writer_ops(0), shard_writer_ops(1), reader_ops],
    )
}

#[test]
fn sharded_watermark_vector_invariants_hold_under_all_schedules() {
    let clean = explore(0x5AAD, SCHEDULES, |seed| {
        let (mut state, mut threads) = sharded_wm_threads();
        interleave(seed, &mut state, &mut threads);
        // Quiescent: both shards fully published.
        let end = state.searcher.watermarks();
        if end != vec![SHARD_DOCS, SHARD_DOCS] {
            state
                .violations
                .push(format!("quiescent vector {end:?}, expected full"));
        }
        if state.violations.is_empty() {
            Ok(())
        } else {
            Err(state.violations.join("; "))
        }
    })
    .unwrap_or_else(|f| panic!("{f}"));
    assert_eq!(clean, SCHEDULES);
}

// ---------------------------------------------------------------------------
// Sharded pin stability: a pinned searcher freezes the whole watermark
// vector at once, and must keep answering from exactly that vector while
// both shards' writers race past it.
// ---------------------------------------------------------------------------

fn sharded_pin_threads() -> (ShardWmState, Vec<Vec<Step<'static, ShardWmState>>>) {
    // Pinner: one op takes the pinned snapshot (its vector must be exact
    // against the commit model at that instant); later ops require every
    // slot of the vector — and the merged answer — unchanged.
    let mut pin_ops: Vec<Step<'static, ShardWmState>> = vec![Box::new(|s: &mut ShardWmState| {
        let session = QuerySession::open(&s.searcher);
        let vector = session.watermarks().to_vec();
        let model = s.committed.clone();
        s.check(
            "pin-vector-exact",
            vector == model,
            format!("pinned vector {vector:?} but {model:?} committed"),
        );
        s.pinned = Some((vector, session));
    })];
    for _ in 0..4 {
        pin_ops.push(Box::new(|s: &mut ShardWmState| {
            let Some((at, session)) = s.pinned.take() else {
                return;
            };
            let now = session.watermarks().to_vec();
            let sum: u64 = at.iter().sum();
            let hits = match session.execute(Query::disjunctive("common", usize::MAX)) {
                Ok(resp) => resp.hits.len() as u64,
                Err(e) => {
                    s.violations.push(format!("pinned query failed: {e}"));
                    sum
                }
            };
            s.check(
                "pin-vector-stability",
                now == at && hits == sum,
                format!("pinned at {at:?} but sees {now:?} / {hits} hits"),
            );
            s.pinned = Some((at, session));
        }));
    }
    (
        sharded_state(),
        vec![shard_writer_ops(0), shard_writer_ops(1), pin_ops],
    )
}

#[test]
fn sharded_pin_freezes_the_vector_under_all_schedules() {
    let clean = explore(0xF12E, SCHEDULES, |seed| {
        let (mut state, mut threads) = sharded_pin_threads();
        interleave(seed, &mut state, &mut threads);
        // The live (unpinned) searcher still reaches the full corpus.
        let end = state.searcher.visible_docs();
        if end != 2 * SHARD_DOCS {
            state.violations.push(format!(
                "quiescent watermark {end}, expected {}",
                2 * SHARD_DOCS
            ));
        }
        if state.violations.is_empty() {
            Ok(())
        } else {
            Err(state.violations.join("; "))
        }
    })
    .unwrap_or_else(|f| panic!("{f}"));
    assert_eq!(clean, SCHEDULES);
}

// ---------------------------------------------------------------------------
// Replication: queued replica appliers racing the primary writer.  A
// replica's verified chain head must be a pure function of its replicated
// watermark — byte-for-byte the primary's chain head at that watermark —
// at every intermediate drain point, under every interleaving and every
// drain budget; and failover promotion must never observe an unverified
// prefix (queued-but-unverified entries are crash losses, not data).
// ---------------------------------------------------------------------------

const REPLICAS: usize = 2;

struct ReplState {
    writer: IndexWriter,
    searcher: Searcher,
    set: std::sync::Arc<ReplicaSet>,
    committed: u64,
    /// Watermark last verified by each replica (must be monotone).
    last_wm: Vec<u64>,
    violations: Vec<String>,
}

fn repl_threads(seed: u64) -> (ReplState, Vec<Vec<Step<'static, ReplState>>>) {
    let (mut writer, searcher) = service(small_engine());
    let set = writer.with_engine(|e| {
        let set = std::sync::Arc::new(ReplicaSet::new(
            fresh_images(e, REPLICAS),
            ApplyMode::Queued,
        ));
        attach(e, &set);
        set
    });
    let state = ReplState {
        writer,
        searcher,
        set,
        committed: 0,
        last_wm: vec![0; REPLICAS],
        violations: Vec::new(),
    };
    let writer_ops: Vec<Step<'static, ReplState>> = (0..DOCS)
        .map(|i| {
            Box::new(move |s: &mut ReplState| {
                match s
                    .writer
                    .commit(&format!("common record{i}"), Timestamp(7_000 + i))
                {
                    Ok(_) => s.committed += 1,
                    Err(e) => s.violations.push(format!("commit {i} failed: {e}")),
                }
            }) as Step<'static, ReplState>
        })
        .collect();
    // One drainer thread per replica with seed-varying budgets, so each
    // replica advances through arbitrary partial prefixes of the log.
    let drainer = |replica: usize| -> Vec<Step<'static, ReplState>> {
        (0..8usize)
            .map(|i| {
                let budget = 1 + (seed as usize).wrapping_add(i.wrapping_mul(7) + replica) % 4;
                Box::new(move |s: &mut ReplState| {
                    s.set.drain(replica, budget);
                }) as Step<'static, ReplState>
            })
            .collect()
    };
    // Checker: at every intermediate point each replica is unquarantined,
    // monotone, never ahead of the commit model, and its verified chain
    // head is exactly the primary's head at the replica's watermark.
    let checker_ops: Vec<Step<'static, ReplState>> = (0..6)
        .map(|_| {
            Box::new(|s: &mut ReplState| {
                for st in s.set.statuses() {
                    if let Some(q) = st.quarantined {
                        s.violations
                            .push(format!("replica {} quarantined: {q}", st.replica));
                        continue;
                    }
                    if st.verified_watermark > s.committed {
                        s.violations.push(format!(
                            "replica {} verified {} with only {} committed",
                            st.replica, st.verified_watermark, s.committed
                        ));
                    }
                    if st.verified_watermark < s.last_wm[st.replica] {
                        s.violations.push(format!(
                            "replica {} watermark went backwards: {} after {}",
                            st.replica, st.verified_watermark, s.last_wm[st.replica]
                        ));
                    }
                    s.last_wm[st.replica] = st.verified_watermark;
                    let expected = s
                        .writer
                        .with_engine(|e| e.chain_head_at(st.verified_watermark));
                    if expected != Some(st.chain_head) {
                        s.violations.push(format!(
                            "replica {} head at watermark {} diverged: {} vs primary {:?}",
                            st.replica, st.verified_watermark, st.chain_head, expected
                        ));
                    }
                }
            }) as Step<'static, ReplState>
        })
        .collect();
    (state, vec![writer_ops, drainer(0), drainer(1), checker_ops])
}

#[test]
fn replica_chain_heads_track_the_replicated_watermark_under_all_schedules() {
    let clean = explore(0x5E7A, SCHEDULES, |seed| {
        let (mut state, mut threads) = repl_threads(seed);
        interleave(seed, &mut state, &mut threads);
        // Quiescent: drain everything; every replica converges on the
        // primary's exact head at the full watermark with an empty queue.
        state.set.drain_all();
        let head = state.writer.with_engine(|e| e.chain_head());
        for st in state.set.statuses() {
            if st.verified_watermark != state.committed || st.chain_head != head || st.queued != 0 {
                state.violations.push(format!(
                    "replica {} quiesced at watermark {} head {} ({} queued); primary at {} \
                     head {head}",
                    st.replica, st.verified_watermark, st.chain_head, st.queued, state.committed
                ));
            }
        }
        if state.violations.is_empty() {
            Ok(())
        } else {
            Err(state.violations.join("; "))
        }
    })
    .unwrap_or_else(|f| panic!("{f}"));
    assert_eq!(clean, SCHEDULES);
}

#[test]
fn promotion_never_observes_an_unverified_prefix_under_all_schedules() {
    let clean = explore(0x9E0E, SCHEDULES, |seed| {
        let (mut state, mut threads) = repl_threads(seed);
        interleave(seed, &mut state, &mut threads);
        // Deliberately do NOT drain the queues dry: whatever each replica
        // verified mid-schedule is all a crash leaves it.  Lose the primary
        // outright and require the promoted replica to serve exactly its
        // verified prefix — never a byte of the queued remainder.
        let statuses = state.set.statuses();
        let ReplState {
            writer,
            searcher,
            set,
            committed,
            mut violations,
            ..
        } = state;
        drop(searcher);
        let mut engine = match writer.try_into_engine() {
            Ok(e) => e,
            Err(_) => return Err("searcher handles still pinned the engine".into()),
        };
        detach(&mut engine);
        let expected: Vec<(u64, ChainHead)> = statuses
            .iter()
            .map(|st| (st.verified_watermark, st.chain_head))
            .collect();
        let replica_parts: Vec<Result<_, String>> = match ReplicaSet::reclaim(set) {
            Ok(parts) => parts
                .into_iter()
                .map(|(parts, fault)| {
                    if let Some(f) = &fault {
                        violations.push(format!("replication faulted: {f}"));
                    }
                    Ok(parts)
                })
                .collect(),
            Err(_) => return Err("tap handles still pinned the replica set".into()),
        };
        let outcome = recover_shard(
            Err("primary lost".to_string()),
            replica_parts,
            &EngineConfig::default(),
        );
        let Some(promoted) = outcome.promoted_from else {
            return Err(format!(
                "no replica promoted: {:?}",
                outcome.degraded_reason
            ));
        };
        let (wm, head) = expected[promoted];
        let best = expected.iter().map(|&(w, _)| w).max().unwrap_or(0);
        if wm != best {
            violations.push(format!(
                "promoted replica {promoted} at watermark {wm}, best verified was {best}"
            ));
        }
        if wm > committed {
            violations.push(format!(
                "replica verified {wm} with only {committed} committed"
            ));
        }
        match outcome.engine.as_deref() {
            Some(engine) => {
                if engine.num_docs() != wm {
                    violations.push(format!(
                        "promoted engine serves {} docs, replica had verified {wm}",
                        engine.num_docs()
                    ));
                }
                if engine.chain_head() != head {
                    violations.push(format!(
                        "promoted head {} != verified head {head}",
                        engine.chain_head()
                    ));
                }
                match engine.execute(&Query::disjunctive("common", usize::MAX)) {
                    Ok(resp) => {
                        if resp.hits.len() as u64 != wm || !resp.trusted {
                            violations.push(format!(
                                "promoted engine answered {} hits (trusted {}) at watermark {wm}",
                                resp.hits.len(),
                                resp.trusted
                            ));
                        }
                    }
                    Err(e) => violations.push(format!("promoted query failed: {e}")),
                }
            }
            None => violations.push(format!("degraded: {:?}", outcome.degraded_reason)),
        }
        if violations.is_empty() {
            Ok(())
        } else {
            Err(violations.join("; "))
        }
    })
    .unwrap_or_else(|f| panic!("{f}"));
    assert_eq!(clean, SCHEDULES);
}

#[test]
fn schedules_are_reproducible_given_a_seed() {
    let run = |seed: u64| {
        let (mut state, mut threads) = wm_threads();
        let trace = interleave(seed, &mut state, &mut threads);
        (trace, state.committed, state.last_seen)
    };
    for seed in [0u64, 1, 0xD0C5, u64::MAX] {
        assert_eq!(run(seed), run(seed), "seed {seed} must replay identically");
    }
}
