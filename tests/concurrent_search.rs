//! Concurrent query service integration: many reader threads execute
//! [`Query`]s through cloned [`Searcher`] handles while an [`IndexWriter`]
//! commits documents in real time.  The invariant under test is the
//! paper's §2.3 guarantee lifted to the concurrent setting: once a commit
//! call returns (and is published), **no reader may ever miss that
//! document** — the watermark only moves forward and index entries are
//! never buffered.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use trustworthy_search::prelude::*;

fn small_config() -> EngineConfig {
    EngineConfig::builder()
        .assignment(MergeAssignment::uniform(16))
        .jump(JumpConfig::new(2048, 8, 1 << 32))
        .build()
        .expect("valid configuration")
}

/// Four reader threads hammer the index while the writer commits 200
/// documents.  Every reader snapshots the published commit count *before*
/// querying; the result must contain at least that many documents — a
/// smaller result would mean a committed index entry was lost or hidden.
#[test]
fn readers_never_miss_published_commits() {
    const DOCS: u64 = 200;
    const READERS: usize = 4;
    let (mut writer, searcher) = service(SearchEngine::new(small_config()).unwrap());
    let published = AtomicU64::new(0);
    let done = AtomicBool::new(false);

    std::thread::scope(|scope| {
        let published = &published;
        let done = &done;
        scope.spawn(move || {
            for i in 0..DOCS {
                writer
                    .commit(&format!("common record number{i}"), Timestamp(i))
                    .unwrap();
                // Publish *after* commit returns: from here on, every
                // query must see at least i + 1 documents.
                published.store(i + 1, Ordering::Release);
            }
            done.store(true, Ordering::Release);
        });
        for r in 0..READERS {
            let searcher = searcher.clone();
            scope.spawn(move || {
                let mut max_seen = 0u64;
                loop {
                    // Read the ack counter *before* querying: the result
                    // may only be larger, never smaller.
                    let finished = done.load(Ordering::Acquire);
                    let floor = published.load(Ordering::Acquire);
                    let resp = searcher
                        .execute(Query::disjunctive("common", usize::MAX))
                        .unwrap();
                    assert!(
                        resp.hits.len() as u64 >= floor,
                        "reader {r}: only {} hits but {floor} commits were acknowledged",
                        resp.hits.len()
                    );
                    max_seen = max_seen.max(resp.hits.len() as u64);
                    if finished {
                        break;
                    }
                }
                assert_eq!(max_seen, DOCS, "reader {r} never saw the full index");
            });
        }
    });
    assert_eq!(searcher.visible_docs(), DOCS);
    assert!(searcher.audit().is_clean());
}

/// A pinned searcher is a repeatable-read snapshot: its results are
/// byte-identical no matter how much the writer commits concurrently.
#[test]
fn pinned_snapshot_is_stable_under_concurrent_writes() {
    let (mut writer, searcher) = service(SearchEngine::new(small_config()).unwrap());
    for i in 0..20u64 {
        writer
            .commit(&format!("alpha doc{i}"), Timestamp(i))
            .unwrap();
    }
    let pinned = searcher.pin();
    let before = pinned
        .execute(Query::disjunctive("alpha", usize::MAX))
        .unwrap();

    std::thread::scope(|scope| {
        scope.spawn(move || {
            for i in 20..60u64 {
                writer
                    .commit(&format!("alpha doc{i}"), Timestamp(i))
                    .unwrap();
            }
        });
        for _ in 0..4 {
            let pinned = pinned.clone();
            let before_docs = before.docs();
            scope.spawn(move || {
                for _ in 0..25 {
                    let again = pinned
                        .execute(Query::disjunctive("alpha", usize::MAX))
                        .unwrap();
                    assert_eq!(again.docs(), before_docs);
                    assert_eq!(again.visible_docs, 20);
                }
            });
        }
    });
    // The unpinned handle sees everything the writer added.
    let live = searcher
        .execute(Query::disjunctive("alpha", usize::MAX))
        .unwrap();
    assert_eq!(live.hits.len(), 60);
}

/// `execute_many` answers a mixed batch across 1/2/4/8 threads with
/// results identical to the sequential order.
#[test]
fn multi_query_driver_matches_sequential_across_thread_counts() {
    let (mut writer, searcher) = service(
        SearchEngine::new(
            EngineConfig::builder()
                .assignment(MergeAssignment::uniform(16))
                .positional(true)
                .build()
                .unwrap(),
        )
        .unwrap(),
    );
    let texts = [
        "merger escrow wire instructions",
        "quarterly earnings restatement draft",
        "escrow release schedule for the merger",
        "cafeteria menu",
        "earnings call transcript with restatement appendix",
    ];
    for (i, t) in texts.iter().enumerate() {
        writer.commit(t, Timestamp(i as u64 + 1)).unwrap();
    }
    let queries = vec![
        Query::disjunctive("merger escrow", 10),
        Query::conjunctive("earnings restatement"),
        Query::phrase("escrow wire instructions"),
        Query::conjunctive_in_range("earnings", Timestamp(2), Timestamp(4)),
        Query::time_range(Timestamp(1), Timestamp(3)),
    ];
    let sequential: Vec<_> = queries
        .iter()
        .map(|q| searcher.execute(q.clone()).unwrap().docs())
        .collect();
    assert!(sequential.iter().any(|d| !d.is_empty()));
    for threads in [1usize, 2, 4, 8] {
        let parallel: Vec<_> = searcher
            .execute_many(queries.clone(), threads)
            .into_iter()
            .map(|r| r.unwrap().docs())
            .collect();
        assert_eq!(parallel, sequential, "threads = {threads}");
    }
}

/// Queries are plain serde values: a saved investigation can be replayed
/// verbatim.
#[test]
fn queries_serialize_round_trip() {
    let queries = vec![
        Query::disjunctive("earnings restatement", 10),
        Query::conjunctive(vec![TermId(3), TermId(9)]),
        Query::phrase("wire instructions"),
        Query::conjunctive_in_range("escrow", Timestamp(5), Timestamp(50)),
        Query::time_range(Timestamp(0), Timestamp(100)),
    ];
    for q in queries {
        let json = serde_json::to_string(&q).unwrap();
        let back: Query = serde_json::from_str(&json).unwrap();
        assert_eq!(q, back, "{json}");
    }
}
