//! Randomized adversary integration test: interleave legitimate engine
//! operation with every raw WORM mutation Mala can make, then check the
//! system's global guarantee — **every committed document is either still
//! correctly retrievable, or the audit pipeline reports tamper evidence.**
//! Silent loss is the one outcome that must never occur.

use proptest::prelude::*;
use trustworthy_search::core::engine::{EngineConfig, SearchEngine, SearchError};
use trustworthy_search::core::merge::MergeAssignment;
use trustworthy_search::core::query::Query;
use trustworthy_search::core::rank_attack::detect_phantom_postings;
use trustworthy_search::jump::JumpConfig;
use trustworthy_search::postings::{encode_posting, DocId, ListId, Posting, TermId, Timestamp};

/// One step of the interleaved workload.
#[derive(Debug, Clone)]
enum Step {
    /// Legitimate: commit a document with these (small) term ids.
    Commit(Vec<u8>),
    /// Mala: append a raw posting (doc, tag, tf) to a list file.
    RawPosting { list: u8, doc: u16, tag: u8 },
    /// Mala: append raw garbage bytes to a list file.
    RawGarbage { list: u8, bytes: Vec<u8> },
    /// Mala: attempt to overwrite a committed byte (always refused).
    Overwrite { block: u8, offset: u8 },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        4 => proptest::collection::vec(0u8..20, 1..6).prop_map(Step::Commit),
        2 => (0u8..4, 0u16..200, 0u8..6)
            .prop_map(|(list, doc, tag)| Step::RawPosting { list, doc, tag }),
        1 => (0u8..4, proptest::collection::vec(any::<u8>(), 1..7))
            .prop_map(|(list, bytes)| Step::RawGarbage { list, bytes }),
        1 => (any::<u8>(), any::<u8>()).prop_map(|(block, offset)| Step::Overwrite { block, offset }),
    ]
}

/// Run one interleaved workload and check the global guarantee with plain
/// panics. Shared by the property test and the deterministic regression
/// replays below.
fn run_workload(steps: &[Step]) {
    let mut engine = SearchEngine::new(EngineConfig {
        assignment: MergeAssignment::uniform(4),
        jump: Some(JumpConfig::new(1024, 4, 1 << 32)),
        store_documents: false,
        ..Default::default()
    })
    .unwrap();
    // (doc, terms) pairs committed through the legitimate path.
    let mut committed: Vec<(DocId, Vec<TermId>)> = Vec::new();
    let mut mala_acted = false;

    for (i, step) in steps.iter().enumerate() {
        match step {
            Step::Commit(raw_terms) => {
                let mut terms: Vec<(TermId, u32)> =
                    raw_terms.iter().map(|&t| (TermId(t as u32), 1)).collect();
                terms.sort_unstable_by_key(|&(t, _)| t);
                terms.dedup_by_key(|&mut (t, _)| t);
                let doc = engine
                    .add_document_terms(&terms, Timestamp(i as u64), None)
                    .expect("legitimate commits always succeed");
                committed.push((doc, terms.into_iter().map(|(t, _)| t).collect()));
            }
            Step::RawPosting { list, doc, tag } => {
                let name = format!("lists/{list}");
                let store = engine.list_store_mut();
                let file = match store.fs().open(&name) {
                    Ok(f) => f,
                    Err(_) => store.fs_mut().create(&name, u64::MAX).expect("fresh file"),
                };
                let bytes = encode_posting(Posting::new(DocId(*doc as u64), *tag as u32, 99));
                store
                    .fs_mut()
                    .append(file, &bytes)
                    .expect("raw appends are legal");
                mala_acted = true;
            }
            Step::RawGarbage { list, bytes } => {
                let name = format!("lists/{list}");
                let store = engine.list_store_mut();
                let file = match store.fs().open(&name) {
                    Ok(f) => f,
                    Err(_) => store.fs_mut().create(&name, u64::MAX).expect("fresh file"),
                };
                store
                    .fs_mut()
                    .append(file, bytes)
                    .expect("raw appends are legal");
                mala_acted = true;
            }
            Step::Overwrite { block, offset } => {
                let dev = engine.list_store_mut().fs_mut().device_mut();
                if (*block as u64) < dev.num_blocks() as u64 {
                    // Always refused — and logged.
                    assert!(dev
                        .try_overwrite(
                            trustworthy_search::worm::BlockId(*block as u64),
                            *offset as usize,
                            b"X"
                        )
                        .is_err());
                    mala_acted = true;
                }
            }
        }
    }

    // The guarantee: every committed document is still retrievable
    // through every query path, or tamper evidence exists.
    let audit = engine.audit();
    let phantoms = detect_phantom_postings(&engine).unwrap_or_default();
    let evidence = !audit.is_clean() || !phantoms.is_empty();

    for (doc, terms) in &committed {
        // Disjunctive: the document scores for each of its terms.
        for &t in terms {
            let found = engine
                .execute(&Query::disjunctive(vec![t], usize::MAX))
                .map(|r| r.hits.iter().any(|h| h.doc == *doc))
                .unwrap_or(false);
            assert!(
                found || evidence,
                "{doc} silently missing from disjunctive results for {t} \
                 (mala acted: {mala_acted})"
            );
        }
        // Conjunctive over all its terms.
        match engine.conjunctive_terms(terms) {
            Ok((docs, _)) => assert!(
                docs.contains(doc) || evidence,
                "{doc} silently missing from conjunctive results"
            ),
            // A query-time tamper report is acceptable evidence too.
            Err(_) => assert!(mala_acted),
        }
    }

    // And the flip side: evidence never appears without a cause.
    if !mala_acted {
        assert!(
            !evidence,
            "clean runs must audit clean: {audit:?} {phantoms:?}"
        );
        // Clean stores must also recover cleanly.
        let config = engine.config().clone();
        let recovered = SearchEngine::recover(engine.into_parts(), config);
        assert!(recovered.is_ok());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn committed_documents_never_vanish_silently(steps in proptest::collection::vec(step_strategy(), 1..60)) {
        run_workload(&steps);
    }
}

// Deterministic replays of the minimized cases recorded in
// `adversary_fuzz.proptest-regressions`. Both originally exposed phantom
// postings slipping past the audit when Mala wrote to a list *between*
// two legitimate commits; they are kept as explicit tests so the cases
// run on every `cargo test` regardless of the property-test runner in
// use (the vendored proptest stand-in does not replay `cc` seed files).
#[test]
fn regression_raw_posting_between_commits() {
    run_workload(&[
        Step::Commit(vec![3]),
        Step::RawPosting {
            list: 1,
            doc: 0,
            tag: 0,
        },
        Step::Commit(vec![7]),
    ]);
}

#[test]
fn regression_raw_garbage_before_commits() {
    run_workload(&[
        Step::RawGarbage {
            list: 3,
            bytes: vec![0, 0, 0, 1],
        },
        Step::Commit(vec![0]),
        Step::Commit(vec![15]),
    ]);
}

#[test]
fn raw_list_tampering_is_always_evident() {
    // Deterministic companion: any raw posting Mala appends is caught by
    // monotonicity, tag-dictionary, phantom-doc checks — or recovery.
    for doc in [0u64, 5, 1_000] {
        for tag in [0u32, 9] {
            let mut e = SearchEngine::new(EngineConfig {
                assignment: MergeAssignment::uniform(2),
                ..Default::default()
            })
            .unwrap();
            e.add_document("alpha beta", Timestamp(1)).unwrap();
            e.add_document("alpha gamma", Timestamp(2)).unwrap();
            let config = e.config().clone();
            let store = e.list_store_mut();
            let file = store.fs().open("lists/0").unwrap();
            let evil = encode_posting(Posting::new(DocId(doc), tag, 42));
            store.fs_mut().append(file, &evil).unwrap();

            let audit = e.audit();
            let phantoms = detect_phantom_postings(&e).unwrap_or_default();
            let live_evidence = !audit.list_violations.is_empty() || !phantoms.is_empty();
            let recovery_refuses = SearchEngine::recover(e.into_parts(), config).is_err();
            assert!(
                live_evidence || recovery_refuses,
                "raw posting (doc {doc}, tag {tag}) left no evidence anywhere"
            );
        }
    }
}

#[test]
fn audit_identifies_the_specific_list() {
    let mut e = SearchEngine::new(EngineConfig {
        assignment: MergeAssignment::uniform(3),
        ..Default::default()
    })
    .unwrap();
    for i in 0..12u64 {
        e.add_document(&format!("word{i} shared filler"), Timestamp(i))
            .unwrap();
    }
    let victim = ListId(1);
    let file = e.list_store().fs().open("lists/1").unwrap();
    let evil = encode_posting(Posting::new(DocId(0), 0, 1));
    e.list_store_mut().fs_mut().append(file, &evil).unwrap();
    let report = e.audit();
    assert_eq!(report.list_violations.len(), 1);
    assert_eq!(report.list_violations[0].0, victim);
}

/// Adversarial *configurations*: the `EngineConfig` fields are public, so a
/// hostile caller can hand `SearchEngine::new` geometry that would overflow
/// or divide by zero if it reached the storage layers.  Every such config
/// must come back as a typed `SearchError::Config`, never a panic.
#[test]
fn hostile_configs_are_rejected_with_typed_errors() {
    let hostile: Vec<(&str, EngineConfig)> = vec![
        (
            "zero block size",
            EngineConfig {
                block_size: 0,
                ..EngineConfig::default()
            },
        ),
        (
            "block size below minimum",
            EngineConfig {
                block_size: 3,
                ..EngineConfig::default()
            },
        ),
        (
            "block size not a posting multiple",
            EngineConfig {
                block_size: 129,
                ..EngineConfig::default()
            },
        ),
        (
            "block size larger than the cache",
            EngineConfig {
                block_size: usize::MAX & !7,
                ..EngineConfig::default()
            },
        ),
        (
            "cache smaller than one block",
            EngineConfig {
                cache_bytes: 1,
                ..EngineConfig::default()
            },
        ),
        (
            "degenerate jump branching",
            EngineConfig {
                jump: Some(JumpConfig {
                    block_size: 8192,
                    branching: 1,
                    max_key: 1 << 32,
                }),
                ..EngineConfig::default()
            },
        ),
        (
            "degenerate jump key space",
            EngineConfig {
                jump: Some(JumpConfig {
                    block_size: 8192,
                    branching: 4,
                    max_key: 0,
                }),
                ..EngineConfig::default()
            },
        ),
        (
            "jump block too small for one entry",
            EngineConfig {
                jump: Some(JumpConfig {
                    block_size: 8,
                    branching: 64,
                    max_key: 1 << 32,
                }),
                ..EngineConfig::default()
            },
        ),
    ];
    for (what, config) in hostile {
        match SearchEngine::new(config) {
            Err(SearchError::Config(e)) => {
                assert!(
                    !e.to_string().is_empty(),
                    "{what}: config error must explain itself"
                );
            }
            Err(other) => panic!("{what}: expected SearchError::Config, got {other}"),
            Ok(_) => panic!("{what}: hostile config was accepted"),
        }
    }
    // An explicitly uncached device (cache_bytes = 0) stays legal.
    assert!(SearchEngine::new(EngineConfig {
        cache_bytes: 0,
        ..EngineConfig::default()
    })
    .is_ok());
}
