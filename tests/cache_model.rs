//! The storage-cache simulator validated against a brute-force reference
//! implementation of the paper's §3 policy, over randomized workloads.
//!
//! The reference keeps an explicit recency-ordered `Vec` and recomputes
//! everything naively; the production simulator must agree on every
//! counter after every access, for any interleaving of appends, updates,
//! reads, fills and fresh blocks, at any capacity.

use proptest::prelude::*;
use trustworthy_search::worm::{AccessKind, BlockId, CacheConfig, StorageCache};

/// Naive reference model of the §3 cache policy.
struct RefCache {
    capacity: u64,
    /// Front = most recent.  (id, dirty)
    resident: Vec<(u64, bool)>,
    reads: u64,
    writes: u64,
    hits: u64,
    misses: u64,
}

impl RefCache {
    fn new(capacity: u64) -> Self {
        Self {
            capacity,
            resident: Vec::new(),
            reads: 0,
            writes: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn touch_front(&mut self, id: u64) -> bool {
        if let Some(i) = self.resident.iter().position(|&(b, _)| b == id) {
            let e = self.resident.remove(i);
            self.resident.insert(0, e);
            true
        } else {
            false
        }
    }

    fn access(&mut self, id: u64, kind: AccessKind) {
        let hit = self.touch_front(id);
        if hit {
            self.hits += 1;
        } else {
            self.misses += 1;
            if self.capacity == 0 {
                match kind {
                    AccessKind::Append { .. } | AccessKind::Update => self.writes += 1,
                    AccessKind::Read => self.reads += 1,
                }
                return;
            }
            if self.resident.len() as u64 >= self.capacity {
                if let Some((_, dirty)) = self.resident.pop() {
                    if dirty {
                        self.writes += 1;
                    }
                }
            }
            let needs_read = match kind {
                AccessKind::Append { was_empty, .. } => !was_empty,
                AccessKind::Update | AccessKind::Read => true,
            };
            if needs_read {
                self.reads += 1;
            }
            self.resident.insert(0, (id, false));
        }
        match kind {
            AccessKind::Append { fills, .. } => {
                if fills {
                    self.writes += 1;
                    self.resident.retain(|&(b, _)| b != id);
                } else {
                    self.resident[0].1 = true;
                }
            }
            AccessKind::Update => {
                self.resident[0].1 = true;
            }
            AccessKind::Read => {
                // Dirtiness unchanged; the entry is at the front either
                // way (insert or touch).
            }
        }
    }
}

fn kind_strategy() -> impl Strategy<Value = AccessKind> {
    prop_oneof![
        (any::<bool>(), any::<bool>())
            .prop_map(|(was_empty, fills)| AccessKind::Append { was_empty, fills }),
        Just(AccessKind::Update),
        Just(AccessKind::Read),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn simulator_matches_reference_model(
        capacity in 0u64..12,
        ops in proptest::collection::vec((0u64..20, kind_strategy()), 1..300),
    ) {
        let block = 64u32;
        let mut sim = StorageCache::new(CacheConfig::new(capacity * block as u64, block));
        let mut reference = RefCache::new(capacity);
        for (i, &(id, kind)) in ops.iter().enumerate() {
            sim.access(BlockId(id), kind);
            reference.access(id, kind);
            let s = sim.stats();
            prop_assert_eq!(s.read_ios, reference.reads, "reads diverged at op {}", i);
            prop_assert_eq!(s.write_ios, reference.writes, "writes diverged at op {}", i);
            prop_assert_eq!(s.hits, reference.hits, "hits diverged at op {}", i);
            prop_assert_eq!(s.misses, reference.misses, "misses diverged at op {}", i);
            prop_assert_eq!(
                sim.resident_blocks(),
                reference.resident.len(),
                "residency diverged at op {}",
                i
            );
        }
        // Flushing writes out exactly the dirty residents.
        let dirty = reference.resident.iter().filter(|&&(_, d)| d).count() as u64;
        prop_assert_eq!(sim.flush(), dirty);
    }
}
