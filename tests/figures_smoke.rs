//! Small-scale smoke versions of the paper's experiments, asserting the
//! *shape* claims that EXPERIMENTS.md reports at full harness scale.

use std::collections::HashSet;
use trustworthy_search::core::cost::{
    cumulative_workload_curve, unmerged_workload_cost, workload_cost,
};
use trustworthy_search::core::engine::EngineConfig;
use trustworthy_search::core::merge::MergeAssignment;
use trustworthy_search::core::sim::{
    btree_conjunctive_cost, build_engine, build_term_btrees, insertion_ios, jump_insertion_ios,
    scan_merge_blocks,
};
use trustworthy_search::corpus::{
    CorpusConfig, DocumentGenerator, QueryConfig, QueryGenerator, QueryTermStats, TermStats,
};
use trustworthy_search::jump::{space_overhead, JumpConfig};
use trustworthy_search::postings::TermId;

fn corpus(docs: u64) -> DocumentGenerator {
    DocumentGenerator::new(CorpusConfig {
        num_docs: docs,
        vocab_size: 5_000,
        mean_distinct_terms: 40,
        ..Default::default()
    })
}

#[test]
fn fig2_shape_caching_helps_but_plateaus() {
    let gen = corpus(800);
    let a = MergeAssignment::unmerged(5_000);
    let tiny = insertion_ios(&gen, &a, 800, 32 * 8192, 8192);
    let medium = insertion_ios(&gen, &a, 800, 512 * 8192, 8192);
    let huge = insertion_ios(&gen, &a, 800, 1 << 30, 8192);
    assert!(tiny.ios_per_doc() > medium.ios_per_doc());
    assert!(medium.ios_per_doc() > huge.ios_per_doc());
    // Even a medium cache leaves many I/Os — the Zipf-tail effect.
    assert!(medium.ios_per_doc() > 1.0);
}

#[test]
fn fig3_shape_merging_cost_falls_with_cache_and_few_terms_dominate() {
    let gen = corpus(800);
    let qgen = QueryGenerator::new(QueryConfig {
        query_vocab: 1_500,
        ..Default::default()
    });
    let ti = TermStats::collect(&gen, 0..800).doc_freq;
    let qi = QueryTermStats::collect(&qgen, 0..5_000, 5_000).query_freq;
    let unmerged = unmerged_workload_cost(&ti, &qi);

    // 3(d)/(e): the ratio improves monotonically (within noise) with M.
    let r = |m: u32| workload_cost(&MergeAssignment::uniform(m), &ti, &qi) as f64 / unmerged as f64;
    assert!(r(16) > r(256));
    assert!(r(256) > r(2_048));
    assert!(
        r(2_048) < 1.5,
        "large M must approach the unmerged cost, got {}",
        r(2_048)
    );

    // 3(c): the top 5% of QF-ranked terms carry most of the cost.
    let curve = cumulative_workload_curve(&ti, &qi, true, 5_000);
    let total = *curve.last().unwrap() as f64;
    let head = curve[249] as f64; // top 250 of 5000
    assert!(head / total > 0.5, "head fraction {}", head / total);

    // Popular-terms-unmerged beats uniform at the same M.
    let ranked = QueryTermStats {
        query_freq: qi.clone(),
        num_queries: 5_000,
    }
    .terms_by_rank();
    let uniform = workload_cost(&MergeAssignment::uniform(64), &ti, &qi);
    let popular = workload_cost(
        &MergeAssignment::popular_unmerged(&ranked, 16, 64, 5_000),
        &ti,
        &qi,
    );
    assert!(popular < uniform);
}

#[test]
fn fig3fg_shape_learned_statistics_are_stable() {
    let gen = corpus(1_000);
    let qgen = QueryGenerator::new(QueryConfig {
        query_vocab: 1_500,
        ..Default::default()
    });
    let ti = TermStats::collect(&gen, 0..1_000).doc_freq;
    let qi = QueryTermStats::collect(&qgen, 0..5_000, 5_000).query_freq;
    let unmerged = unmerged_workload_cost(&ti, &qi) as f64;

    let full_rank = TermStats {
        doc_freq: ti.clone(),
        num_docs: 1_000,
        total_postings: 0,
    }
    .terms_by_rank();
    let learned_rank = TermStats::collect(&gen, 0..100).terms_by_rank();
    let m = 128;
    let q_full = workload_cost(
        &MergeAssignment::popular_unmerged(&full_rank, 32, m, 5_000),
        &ti,
        &qi,
    ) as f64;
    let q_learned = workload_cost(
        &MergeAssignment::popular_unmerged(&learned_rank, 32, m, 5_000),
        &ti,
        &qi,
    ) as f64;
    // Learned ranking performs within 20% of the oracle ranking (paper:
    // "almost unchanged").
    assert!(
        (q_learned / unmerged) < (q_full / unmerged) * 1.2,
        "learned {} vs full {}",
        q_learned / unmerged,
        q_full / unmerged
    );
}

#[test]
fn fig8a_shape_overhead_grows_with_b_shrinks_with_l() {
    let n = 1u64 << 32;
    assert!(space_overhead(8192, 2, n) < space_overhead(8192, 32, n));
    assert!(space_overhead(8192, 32, n) < space_overhead(8192, 64, n));
    assert!(space_overhead(4096, 32, n) > space_overhead(16384, 32, n));
    let headline = space_overhead(8192, 32, n);
    assert!(
        (0.10..=0.13).contains(&headline),
        "paper says ~11%, got {headline}"
    );
}

#[test]
fn fig8b_shape_jump_update_cost_converges_with_cache() {
    let gen = corpus(600);
    let m = 32;
    let assignment = MergeAssignment::uniform(m);
    let jump = JumpConfig::new(1024, 32, 1 << 32);
    let (tight, _) = jump_insertion_ios(&gen, &assignment, jump, 600, m as u64 * 1024).unwrap();
    let (roomy, _) = jump_insertion_ios(&gen, &assignment, jump, 600, 1 << 30).unwrap();
    assert!(tight.ios_per_doc() >= roomy.ios_per_doc());
    // With a cache holding the whole working set, the cost per document
    // approaches the geometric floor: one block-fill write per p postings
    // (plus at most one read-back per block for its pointer set).  The
    // paper's "1.1 vs 1.0 I/Os per doc" is this bound at p ≈ 500; here
    // p = 19, so the floor is proportionally higher but still bounded.
    let postings_per_doc = roomy.postings as f64 / roomy.docs as f64;
    let fill_floor = postings_per_doc / jump.entries_per_block() as f64;
    assert!(
        roomy.ios_per_doc() <= 2.5 * fill_floor,
        "roomy {} vs floor {}",
        roomy.ios_per_doc(),
        fill_floor
    );
}

#[test]
fn fig8c_shape_speedup_grows_with_keywords() {
    let gen = corpus(2_000);
    let qgen = QueryGenerator::new(QueryConfig {
        query_vocab: 600,
        ..Default::default()
    });
    let engine = build_engine(
        &gen,
        2_000,
        EngineConfig {
            assignment: MergeAssignment::uniform(24),
            jump: Some(JumpConfig::new(2048, 32, 1 << 32)),
            block_size: 2048,
            ..Default::default()
        },
    )
    .unwrap();
    let ratio_for = |len: usize| {
        let (mut scan, mut jump) = (0u64, 0u64);
        for i in 0..40 {
            let q = qgen.query_of_len(i, len);
            scan += scan_merge_blocks(&engine, &q.terms);
            jump += engine.conjunctive_terms(&q.terms).unwrap().1;
        }
        scan as f64 / jump.max(1) as f64
    };
    let s2 = ratio_for(2);
    let s7 = ratio_for(7);
    assert!(
        s7 > s2,
        "speedup must grow with keywords: 2kw {s2:.2} vs 7kw {s7:.2}"
    );
    assert!(s7 > 1.2, "7-keyword queries must benefit, got {s7:.2}");
}

#[test]
fn btree_ideal_baseline_agrees_with_engine_results() {
    let gen = corpus(1_500);
    let qgen = QueryGenerator::new(QueryConfig {
        query_vocab: 600,
        ..Default::default()
    });
    let engine = build_engine(
        &gen,
        1_500,
        EngineConfig {
            assignment: MergeAssignment::uniform(16),
            ..Default::default()
        },
    )
    .unwrap();
    let mut needed: HashSet<TermId> = HashSet::new();
    let queries: Vec<Vec<TermId>> = (0..20).map(|i| qgen.query_of_len(i, 3).terms).collect();
    for q in &queries {
        needed.extend(q.iter().copied());
    }
    let trees = build_term_btrees(
        &gen,
        1_500,
        &needed,
        trustworthy_search::btree::BTreeConfig::tiny(64, 64),
    )
    .unwrap();
    for q in &queries {
        let (a, _) = engine.conjunctive_terms(q).unwrap();
        let (b, _) = btree_conjunctive_cost(&trees, q).unwrap();
        assert_eq!(a, b, "query {q:?}");
    }
}
