//! Cross-crate trust properties: the attacks of the paper either fail
//! outright or leave detectable evidence — and the baseline they defeat
//! (B+ trees on WORM) really is defeated.

use proptest::prelude::*;
use trustworthy_search::btree::{hide_keys_above, AppendOnlyBPlusTree, BTreeConfig};
use trustworthy_search::core::rank_attack::{
    detect_phantom_postings, stuff_phantom_postings, PhantomReason,
};
use trustworthy_search::jump::{BlockJumpIndex, JumpConfig, WormJumpIndex};
use trustworthy_search::prelude::*;
use trustworthy_search::worm::{WormError, WormFs};

#[test]
fn the_motivating_contrast_btree_falls_jump_index_stands() {
    // Same key sequence, same adversary powers (append-only writes).
    let keys = [2u64, 4, 7, 11, 13, 19, 23, 29, 31];

    let mut tree = AppendOnlyBPlusTree::new(BTreeConfig::tiny(3, 4));
    let mut jump: BlockJumpIndex<u64> = BlockJumpIndex::new(JumpConfig::new(256, 3, 1 << 16));
    for &k in &keys {
        tree.insert(k).unwrap();
        jump.insert(k).unwrap();
    }

    // B+ tree: the attack hides committed keys with zero evidence.
    let attack = hide_keys_above(&mut tree, 25, &[25, 26, 30]).unwrap();
    assert!(!attack.hidden_keys.is_empty());
    assert!(!tree.lookup(31, &mut |_| {}));

    // Jump index: every legal adversarial action leaves all keys visible.
    jump.insert(100).unwrap(); // larger appends are all Mala can do
    for &k in &keys {
        assert!(jump.lookup(k).unwrap(), "jump index lost {k}");
    }
    assert!(jump.audit().is_ok());
}

#[test]
fn worm_device_never_yields_to_overwrites() {
    let mut dev = WormDevice::new(64);
    let b = dev.alloc_block();
    dev.append(b, b"evidence").unwrap();
    for offset in 0..8 {
        assert!(dev.try_overwrite(b, offset, b"x").is_err());
    }
    assert_eq!(dev.read(b, 0, 8).unwrap(), b"evidence");
    assert_eq!(dev.tamper_log().len(), 8, "every attempt is logged");
}

#[test]
fn jump_index_recovery_flags_all_raw_tampering_routes() {
    // Build, persist, then try each raw mutation Mala can make on the
    // WORM files; recovery must refuse or the data must be intact.
    let cfg = JumpConfig::new(256, 3, 1 << 16);
    let fs = WormFs::new(WormDevice::new(4096));
    let mut idx: WormJumpIndex<u64> = WormJumpIndex::create(fs, "pl", cfg).unwrap();
    for k in (0..200u64).map(|i| i * 13 + 1) {
        idx.insert(k).unwrap();
    }
    // Route 1: append an out-of-order key to the data file.
    let mut fs = idx.into_fs();
    let data = fs.open("pl.data").unwrap();
    fs.append(data, &5u64.to_le_bytes()).unwrap();
    let err = WormJumpIndex::<u64>::recover(fs, "pl", cfg).unwrap_err();
    assert!(err.to_string().contains("tamper"), "{err}");
}

#[test]
fn engine_audit_catches_raw_posting_tampering() {
    let mut e = SearchEngine::new(EngineConfig {
        assignment: MergeAssignment::uniform(4),
        ..Default::default()
    })
    .unwrap();
    for i in 0..10u64 {
        e.add_document(
            &format!("record {i} fraud investigation material"),
            Timestamp(i),
        )
        .unwrap();
    }
    assert!(e.audit().is_clean());
    // Mala appends a stale (small) doc ID to every list she can open.
    let evil = trustworthy_search::postings::encode_posting(
        trustworthy_search::postings::Posting::new(DocId(0), 0, 1),
    );
    let mut tampered = 0;
    for l in 0..4u32 {
        let name = format!("lists/{l}");
        if let Ok(f) = e.list_store().fs().open(&name) {
            e.list_store_mut().fs_mut().append(f, &evil).unwrap();
            tampered += 1;
        }
    }
    assert!(tampered > 0);
    let report = e.audit();
    assert_eq!(report.list_violations.len(), tampered);
}

#[test]
fn phantom_postings_detected_even_when_monotone() {
    // Forged postings with large (future) doc IDs pass the monotonicity
    // audit — but posting verification still catches them.
    let mut e = SearchEngine::new(EngineConfig {
        assignment: MergeAssignment::uniform(4),
        ..Default::default()
    })
    .unwrap();
    e.add_document("incriminating ledger entry", Timestamp(5))
        .unwrap();
    let term = e.term_of("ledger").unwrap();
    stuff_phantom_postings(&mut e, term, &[40, 41]).unwrap();
    assert!(
        e.audit().list_violations.is_empty(),
        "monotone forgeries evade the audit"
    );
    let phantoms = detect_phantom_postings(&e).unwrap();
    assert_eq!(phantoms.len(), 2);
    assert!(phantoms
        .iter()
        .all(|p| p.reason == PhantomReason::NoSuchDocument));
}

#[test]
fn retention_periods_are_enforced() {
    let mut fs = WormFs::new(WormDevice::new(512));
    let f = fs.create("records/2006", 1_000_000).unwrap();
    fs.append(f, b"retained record").unwrap();
    assert!(matches!(
        fs.delete(f, 999_999),
        Err(WormError::RetentionNotExpired { .. })
    ));
    assert_eq!(fs.device().tamper_log().len(), 1);
    fs.delete(f, 1_000_000).unwrap();
}

#[test]
fn commit_time_index_rejects_backdating() {
    // §5: "Mala must not be able to retroactively insert email supposedly
    // committed during an earlier period."
    let mut e = SearchEngine::new(EngineConfig::default()).unwrap();
    e.add_document("genuine november record", Timestamp(2_000))
        .unwrap();
    let err = e
        .add_document("forged backdated record", Timestamp(1_000))
        .unwrap_err();
    assert!(err.to_string().contains("precedes"));
    assert_eq!(e.num_docs(), 1);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever Mala appends to a B+ tree hides *something* or nothing —
    /// but whatever she appends to a jump index (necessarily larger keys)
    /// hides *nothing*, ever.
    #[test]
    fn prop_jump_index_survives_any_monotone_adversary(
        mut committed in proptest::collection::vec(0u64..5_000, 5..80),
        adversarial in proptest::collection::vec(5_000u64..9_999, 0..40),
    ) {
        committed.sort_unstable();
        committed.dedup();
        let mut jump: BlockJumpIndex<u64> =
            BlockJumpIndex::new(JumpConfig::new(512, 4, 1 << 14));
        for &k in &committed {
            jump.insert(k).unwrap();
        }
        let mut evil = adversarial.clone();
        evil.sort_unstable();
        evil.dedup();
        for &k in &evil {
            jump.insert(k).unwrap();
        }
        for &k in &committed {
            prop_assert!(jump.lookup(k).unwrap());
            let pos = jump.find_geq(k).unwrap().unwrap();
            prop_assert_eq!(jump.entry_at(pos).unwrap(), k);
        }
        jump.audit().unwrap();
    }

    /// The engine's conjunctive results are immune to later insertions:
    /// adding documents never removes earlier matches.
    #[test]
    fn prop_conjunctive_results_are_durable(extra_docs in 1u64..30) {
        let mut e = SearchEngine::new(EngineConfig {
            assignment: MergeAssignment::uniform(8),
            jump: Some(JumpConfig::new(1024, 4, 1 << 32)),
            store_documents: false,
            ..Default::default()
        }).unwrap();
        let a = TermId(1);
        let b = TermId(2);
        e.add_document_terms(&[(a, 1), (b, 1)], Timestamp(0), None).unwrap();
        let before = e.conjunctive_terms(&[a, b]).unwrap().0;
        prop_assert_eq!(&before, &vec![DocId(0)]);
        for i in 0..extra_docs {
            let t = TermId(3 + (i % 5) as u32);
            e.add_document_terms(&[(t, 1)], Timestamp(i + 1), None).unwrap();
        }
        let after = e.conjunctive_terms(&[a, b]).unwrap().0;
        prop_assert_eq!(after, before);
    }
}
