//! The paper's motivating scenario end-to-end: a corporate email archive
//! where an investigator runs "all emails from X to Y" (§4's example of a
//! conjunctive query on two addresses) and time-restricted §5 queries —
//! over a synthetic Enron-shaped stream.

use trustworthy_search::corpus::email::{EmailConfig, EmailGenerator};
use trustworthy_search::prelude::*;

const EMAILS: u64 = 500;

fn archive() -> (SearchEngine, EmailGenerator) {
    let gen = EmailGenerator::new(EmailConfig {
        num_emails: EMAILS,
        ..Default::default()
    });
    let mut engine = SearchEngine::new(EngineConfig {
        assignment: MergeAssignment::uniform(64),
        jump: Some(JumpConfig::new(4096, 32, 1 << 32)),
        positional: true,
        ..Default::default()
    })
    .unwrap();
    for m in gen.emails(0..EMAILS) {
        engine.add_document(&m.text(), m.timestamp).unwrap();
    }
    (engine, gen)
}

/// Pick the busiest (sender, recipient) pair in the stream.
fn busiest_pair(gen: &EmailGenerator) -> (String, String) {
    let mut counts = std::collections::HashMap::new();
    for m in gen.emails(0..EMAILS) {
        *counts.entry((m.from.clone(), m.to.clone())).or_insert(0u32) += 1;
    }
    counts
        .into_iter()
        .max_by_key(|&(_, c)| c)
        .map(|(p, _)| p)
        .expect("non-empty stream")
}

#[test]
fn all_emails_from_x_to_y() {
    let (engine, gen) = archive();
    let (x, y) = busiest_pair(&gen);
    // Conjunctive [x y]: every email between the two, either direction.
    let both_ways = engine
        .execute(&Query::conjunctive(format!("{x} {y}")))
        .unwrap()
        .docs();
    let expect_both: Vec<u64> = gen
        .emails(0..EMAILS)
        .filter(|m| (m.from == x && m.to == y) || (m.from == y && m.to == x))
        .map(|m| m.id)
        .collect();
    let got: Vec<u64> = both_ways.iter().map(|d| d.0).collect();
    assert_eq!(got, expect_both);
    assert!(!got.is_empty());

    // Phrase "from x to y": direction-exact, thanks to positions.
    let directed = engine
        .execute(&Query::phrase(format!("from {x} to {y}")))
        .unwrap()
        .docs();
    let expect_directed: Vec<u64> = gen
        .emails(0..EMAILS)
        .filter(|m| m.from == x && m.to == y)
        .map(|m| m.id)
        .collect();
    let got: Vec<u64> = directed.iter().map(|d| d.0).collect();
    assert_eq!(got, expect_directed);
    // Direction matters: the phrase result is a subset of the conjunction.
    assert!(expect_directed.len() <= expect_both.len());
}

#[test]
fn investigation_with_time_window() {
    let (engine, gen) = archive();
    let (x, y) = busiest_pair(&gen);
    // Restrict to the middle third of the stream, as an investigator with
    // a target period would (§5).
    let from = gen.email(EMAILS / 3).timestamp;
    let to = gen.email(2 * EMAILS / 3).timestamp;
    let hits = engine
        .execute(&Query::conjunctive_in_range(format!("{x} {y}"), from, to))
        .unwrap()
        .docs();
    for d in &hits {
        let ts = engine.document_timestamp(*d).unwrap();
        assert!(ts >= from && ts <= to);
    }
    let unrestricted = engine
        .execute(&Query::conjunctive(format!("{x} {y}")))
        .unwrap()
        .docs();
    assert!(hits.len() <= unrestricted.len());
}

#[test]
fn archive_audits_clean_and_survives_recovery() {
    let (engine, gen) = archive();
    assert!(engine.audit().is_clean());
    let (x, y) = busiest_pair(&gen);
    let query = Query::conjunctive(format!("{x} {y}"));
    let before = engine.execute(&query).unwrap().docs();
    let config = engine.config().clone();
    let recovered = SearchEngine::recover(engine.into_parts(), config).unwrap();
    assert_eq!(recovered.execute(&query).unwrap().docs(), before);
    assert!(recovered.audit().is_clean());
}
