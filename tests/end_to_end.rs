//! End-to-end integration: synthetic corpus → engine → queries, checked
//! against brute-force reference results across merge strategies and
//! access paths.

use trustworthy_search::core::engine::{EngineConfig, SearchEngine};
use trustworthy_search::core::merge::MergeAssignment;
use trustworthy_search::core::sim::build_engine;
use trustworthy_search::corpus::{CorpusConfig, DocumentGenerator, QueryConfig, QueryGenerator};
use trustworthy_search::jump::JumpConfig;
use trustworthy_search::prelude::*;

const DOCS: u64 = 600;

fn corpus() -> DocumentGenerator {
    DocumentGenerator::new(CorpusConfig {
        num_docs: DOCS,
        vocab_size: 1_500,
        mean_distinct_terms: 30,
        ..Default::default()
    })
}

fn reference_conjunction(gen: &DocumentGenerator, terms: &[TermId]) -> Vec<DocId> {
    gen.docs(0..DOCS)
        .filter(|d| {
            terms
                .iter()
                .all(|t| d.terms.iter().any(|&(dt, _)| dt == *t))
        })
        .map(|d| d.id)
        .collect()
}

fn reference_disjunction(gen: &DocumentGenerator, terms: &[TermId]) -> Vec<DocId> {
    gen.docs(0..DOCS)
        .filter(|d| {
            terms
                .iter()
                .any(|t| d.terms.iter().any(|&(dt, _)| dt == *t))
        })
        .map(|d| d.id)
        .collect()
}

fn engines() -> Vec<(&'static str, SearchEngine)> {
    let gen = corpus();
    vec![
        (
            "unmerged",
            build_engine(
                &gen,
                DOCS,
                EngineConfig {
                    assignment: MergeAssignment::unmerged(1_500),
                    ..Default::default()
                },
            )
            .unwrap(),
        ),
        (
            "uniform-32",
            build_engine(
                &gen,
                DOCS,
                EngineConfig {
                    assignment: MergeAssignment::uniform(32),
                    ..Default::default()
                },
            )
            .unwrap(),
        ),
        (
            "uniform-32+jump-b4",
            build_engine(
                &gen,
                DOCS,
                EngineConfig {
                    assignment: MergeAssignment::uniform(32),
                    jump: Some(JumpConfig::new(2048, 4, 1 << 32)),
                    ..Default::default()
                },
            )
            .unwrap(),
        ),
        (
            "uniform-32+jump-b32",
            build_engine(
                &gen,
                DOCS,
                EngineConfig {
                    assignment: MergeAssignment::uniform(32),
                    jump: Some(JumpConfig::new(8192, 32, 1 << 32)),
                    ..Default::default()
                },
            )
            .unwrap(),
        ),
    ]
}

#[test]
fn conjunctive_queries_match_reference_across_configurations() {
    let gen = corpus();
    let qgen = QueryGenerator::new(QueryConfig {
        query_vocab: 400,
        ..Default::default()
    });
    let engines = engines();
    for qid in 0..40u64 {
        let q = qgen.query(qid);
        let expect = reference_conjunction(&gen, &q.terms);
        for (name, e) in &engines {
            let (got, _) = e.conjunctive_terms(&q.terms).unwrap();
            assert_eq!(got, expect, "config {name}, query {qid} ({:?})", q.terms);
        }
    }
}

#[test]
fn disjunctive_result_sets_match_reference_across_configurations() {
    let gen = corpus();
    let qgen = QueryGenerator::new(QueryConfig {
        query_vocab: 400,
        ..Default::default()
    });
    let engines = engines();
    for qid in 0..25u64 {
        let q = qgen.query(qid);
        let mut expect = reference_disjunction(&gen, &q.terms);
        expect.sort_unstable();
        for (name, e) in &engines {
            let mut got: Vec<DocId> = e
                .execute(&Query::disjunctive(&q.terms[..], usize::MAX))
                .unwrap()
                .hits
                .iter()
                .map(|h| h.doc)
                .collect();
            got.sort_unstable();
            assert_eq!(got, expect, "config {name}, query {qid}");
        }
    }
}

#[test]
fn rankings_are_identical_regardless_of_merging() {
    // Merging changes the physical layout, never the logical result: the
    // ranked lists must be identical across configurations.
    let qgen = QueryGenerator::new(QueryConfig {
        query_vocab: 400,
        ..Default::default()
    });
    let engines = engines();
    for qid in 0..25u64 {
        let q = qgen.query(qid);
        let baseline = engines[0]
            .1
            .execute(&Query::disjunctive(&q.terms[..], 20))
            .unwrap()
            .hits;
        for (name, e) in &engines[1..] {
            let hits = e
                .execute(&Query::disjunctive(&q.terms[..], 20))
                .unwrap()
                .hits;
            assert_eq!(hits.len(), baseline.len(), "config {name}");
            for (a, b) in hits.iter().zip(&baseline) {
                assert_eq!(a.doc, b.doc, "config {name}, query {qid}");
                assert!(
                    (a.score - b.score).abs() < 1e-9,
                    "config {name}, query {qid}"
                );
            }
        }
    }
}

#[test]
fn time_range_queries_match_reference() {
    let gen = corpus();
    let e = build_engine(
        &gen,
        DOCS,
        EngineConfig {
            assignment: MergeAssignment::uniform(16),
            ..Default::default()
        },
    )
    .unwrap();
    let ts = |d: u64| gen.doc(d).timestamp;
    let (from, to) = (ts(100), ts(399));
    let got = e.docs_in_time_range(from, to).unwrap();
    let expect: Vec<DocId> = gen
        .docs(0..DOCS)
        .filter(|d| d.timestamp >= from && d.timestamp <= to)
        .map(|d| d.id)
        .collect();
    assert_eq!(got, expect);
}

#[test]
fn audits_clean_after_large_ingest() {
    for (name, e) in engines() {
        let report = e.audit();
        assert!(report.is_clean(), "config {name}: {report:?}");
    }
}

#[test]
fn io_accounting_is_deterministic() {
    let gen = corpus();
    let cfg = || EngineConfig {
        assignment: MergeAssignment::uniform(32),
        cache_bytes: 64 * 8192,
        store_documents: false,
        ..Default::default()
    };
    let a = build_engine(&gen, DOCS, cfg()).unwrap();
    let b = build_engine(&gen, DOCS, cfg()).unwrap();
    assert_eq!(a.io_stats(), b.io_stats());
    assert!(a.io_stats().total_ios() > 0 || a.io_stats().hits > 0);
}
