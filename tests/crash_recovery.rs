//! Crash-consistency harness: kill the write path at every possible byte,
//! then prove recovery converges.
//!
//! The write path's contract is that the DOCMETA record is the *last* WORM
//! append of a document — the commit point.  These tests enforce the
//! contract's consequence exhaustively: for **every byte offset** on every
//! device (posting store, document device, positional sidecar), tear the
//! device at that byte mid-commit, "reboot" (disarm the fault, surface
//! device-committed bytes the file metadata missed), recover, and require
//! the recovered engine to be observably identical to a reference engine
//! that committed exactly the documents whose commit calls returned `Ok`.
//! Residue of the torn document must be quarantined and reported, never
//! silently dropped and never surfaced as a hit.
//!
//! A seeded matrix (same SplitMix64 stream as `tks_core::sched`) runs the
//! same convergence check under randomly shaped faults — fail-stop, torn
//! write, error-once-then-heal — so CI can sweep disjoint seed ranges via
//! `CRASH_SEED_BASE` without ever re-testing the same fault twice.
//! Interior tampering, which no single torn append can produce, must keep
//! failing recovery with a typed error.

use proptest::prelude::*;
use tks_core::{EngineConfig, MergeAssignment, Query, SearchEngine};
use tks_postings::types::Timestamp;
use tks_shard::{ShardRecovery, ShardedArchive, ShardedSearcher};
use tks_worm::FaultPolicy;

/// Small corpus over a small vocabulary so the byte sweep stays cheap
/// while still exercising multi-posting lists, shared terms, and phrase
/// position records.
const CORPUS: &[(&str, u64)] = &[
    ("alpha beta gamma", 100),
    ("beta delta", 101),
    ("gamma delta epsilon alpha", 102),
    ("alpha zeta beta", 103),
    ("beta epsilon zeta gamma alpha", 104),
];

/// Queries that together touch every read path: ranked disjunction,
/// conjunction, phrase (positional sidecar), and commit-time range.
fn queries() -> Vec<Query> {
    vec![
        Query::disjunctive("alpha gamma", 10),
        Query::disjunctive("beta", 10),
        Query::conjunctive("beta gamma"),
        Query::conjunctive("delta"),
        Query::phrase("beta gamma"),
        Query::phrase("delta epsilon"),
        Query::time_range(Timestamp(101), Timestamp(103)),
    ]
}

/// 64-byte blocks force records to straddle device blocks; positional so
/// the sidecar device is part of the fault surface.
fn config() -> EngineConfig {
    EngineConfig {
        block_size: 64,
        cache_bytes: 1 << 16,
        assignment: MergeAssignment::uniform(4),
        positional: true,
        ..Default::default()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Target {
    Store,
    Docs,
    Positions,
}

const TARGETS: [Target; 3] = [Target::Store, Target::Docs, Target::Positions];

/// Commit the corpus with `policy` armed on `target`, treating the first
/// commit error as a crash (fail-stop: the process is dead).  Returns how
/// many documents committed and the engine recovered from the raw devices
/// after the simulated reboot.
fn crash_and_recover(target: Target, policy: FaultPolicy) -> (u64, SearchEngine) {
    let mut e = SearchEngine::new(config()).expect("config is valid");
    match target {
        Target::Store => e.list_store_mut().fs_mut().arm_faults(policy),
        Target::Docs => e.doc_fs_mut().arm_faults(policy),
        Target::Positions => e
            .positions_fs_mut()
            .expect("positional config")
            .arm_faults(policy),
    }
    let mut committed = 0u64;
    for &(text, ts) in CORPUS {
        match e.add_document(text, Timestamp(ts)) {
            Ok(_) => committed += 1,
            Err(_) => break,
        }
    }
    // Reboot: the fault policy dies with the process; bytes the device
    // committed but the file metadata never recorded are surfaced.
    let mut parts = e.into_parts();
    parts.store_fs.disarm_faults();
    parts.doc_fs.disarm_faults();
    parts.store_fs.crash_recover().expect("store crash_recover");
    parts.doc_fs.crash_recover().expect("doc crash_recover");
    if let Some(fs) = parts.pos_fs.as_mut() {
        fs.disarm_faults();
        fs.crash_recover().expect("positions crash_recover");
    }
    let recovered = SearchEngine::recover(parts, config())
        .expect("torn-tail recovery must converge, not error");
    (committed, recovered)
}

/// A reference engine that committed exactly the first `n` documents,
/// with its responses to the standard query set.
fn reference(n: u64) -> (SearchEngine, Vec<Vec<(u64, f64)>>) {
    let mut e = SearchEngine::new(config()).expect("config is valid");
    for &(text, ts) in CORPUS.iter().take(n as usize) {
        e.add_document(text, Timestamp(ts)).expect("clean commit");
    }
    let responses = queries()
        .iter()
        .map(|q| {
            e.execute(q)
                .expect("reference query")
                .hits
                .iter()
                .map(|h| (h.doc.0, h.score))
                .collect()
        })
        .collect();
    (e, responses)
}

/// The recovered engine must be observably identical to the reference
/// stopped at the last whole document: same document count, same hits
/// and scores for every query shape, a clean audit, and truthful trust
/// metadata.
fn assert_converged(ctx: &str, committed: u64, recovered: &SearchEngine, refs: &[Vec<(u64, f64)>]) {
    assert_eq!(recovered.num_docs(), committed, "{ctx}: document count");
    for (q, expected) in queries().iter().zip(refs) {
        let resp = recovered
            .execute(q)
            .unwrap_or_else(|e| panic!("{ctx}: query {q:?} failed: {e}"));
        let got: Vec<(u64, f64)> = resp.hits.iter().map(|h| (h.doc.0, h.score)).collect();
        assert_eq!(&got, expected, "{ctx}: results for {q:?}");
        assert!(resp.trusted, "{ctx}: a torn tail is not tamper evidence");
        assert_eq!(
            resp.quarantined_bytes,
            recovered.recovery_report().total_quarantined_bytes(),
            "{ctx}: trust metadata must surface the recovery report"
        );
    }
    let audit = recovered.audit();
    assert!(
        audit.is_clean(),
        "{ctx}: quarantined residue must be accounted, audit found {audit:?}"
    );
}

/// Total bytes a clean run commits to each device — the sweep range.
fn clean_device_bytes() -> (u64, u64, u64) {
    let mut e = SearchEngine::new(config()).expect("config is valid");
    for &(text, ts) in CORPUS {
        e.add_document(text, Timestamp(ts)).expect("clean commit");
    }
    (
        e.list_store().fs().device().bytes_committed(),
        e.doc_fs().device().bytes_committed(),
        e.positions_fs()
            .expect("positional config")
            .device()
            .bytes_committed(),
    )
}

#[test]
fn every_byte_offset_tear_converges_to_last_whole_document() {
    let (store_total, doc_total, pos_total) = clean_device_bytes();
    // Cache references per prefix length: the sweep reuses them heavily.
    let refs: Vec<Vec<Vec<(u64, f64)>>> =
        (0..=CORPUS.len() as u64).map(|n| reference(n).1).collect();
    let mut tails_seen = 0u64;
    for (target, total) in [
        (Target::Store, store_total),
        (Target::Docs, doc_total),
        (Target::Positions, pos_total),
    ] {
        for offset in 0..=total {
            let ctx = format!("{target:?} torn at byte {offset}");
            let (committed, recovered) =
                crash_and_recover(target, FaultPolicy::torn_at_offset(offset));
            assert_converged(&ctx, committed, &recovered, &refs[committed as usize]);
            if !recovered.recovery_report().is_clean() {
                tails_seen += 1;
            }
        }
    }
    // Sanity: the sweep actually produced torn tails to quarantine, it
    // did not just hit clean shutdown points.
    assert!(
        tails_seen > 0,
        "the byte sweep never produced quarantinable residue"
    );
}

#[test]
fn every_append_ordinal_failure_converges() {
    // Fail-stop at every append call (no bytes land), on every device:
    // the between-records crash positions the byte sweep can only hit at
    // record boundaries.
    for target in TARGETS {
        for n in 0..64u64 {
            let ctx = format!("{target:?} append {n} failed");
            let (committed, recovered) = crash_and_recover(target, FaultPolicy::fail_nth_append(n));
            let (_, refs) = reference(committed);
            assert_converged(&ctx, committed, &recovered, &refs);
        }
    }
}

#[test]
fn seeded_fault_matrix_converges() {
    // CI sweeps disjoint seed ranges by exporting CRASH_SEED_BASE; the
    // default range keeps local runs deterministic and cheap.
    let base: u64 = std::env::var("CRASH_SEED_BASE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0);
    for seed in base..base + 48 {
        for target in TARGETS {
            let ctx = format!("{target:?} seed {seed}");
            let (committed, recovered) = crash_and_recover(target, FaultPolicy::seeded(seed, 48));
            let (_, refs) = reference(committed);
            assert_converged(&ctx, committed, &recovered, &refs);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random seed × random device: same convergence property, different
    /// exploration order than the fixed matrix.
    #[test]
    fn prop_random_faults_converge(seed in any::<u64>(), which in 0usize..3) {
        let target = TARGETS[which];
        let (committed, recovered) =
            crash_and_recover(target, FaultPolicy::seeded(seed, 48));
        let (_, refs) = reference(committed);
        assert_converged(&format!("{target:?} prop seed {seed}"), committed, &recovered, &refs);
    }
}

#[test]
fn interior_tampering_still_fails_with_typed_error() {
    // A torn tail is quarantined; interior anomalies are not.  Mala
    // appends misaligned garbage *followed by* a whole posting, so the
    // damage is no longer a pure tail — recovery must refuse with a
    // typed error (never a panic, never silent acceptance).
    let mut e = SearchEngine::new(config()).expect("config is valid");
    for &(text, ts) in CORPUS {
        e.add_document(text, Timestamp(ts)).expect("clean commit");
    }
    let f = e.list_store().fs().open("lists/0").expect("list file");
    e.list_store_mut()
        .fs_mut()
        .append(f, &[0xFF, 0xFF])
        .expect("raw append");
    let whole = tks_postings::encode_posting(tks_postings::Posting {
        doc: tks_postings::types::DocId(9),
        term_tag: 0,
        tf: 1,
    });
    let f = e.list_store().fs().open("lists/0").expect("list file");
    e.list_store_mut()
        .fs_mut()
        .append(f, &whole)
        .expect("raw append");
    let err = SearchEngine::recover(e.into_parts(), config())
        .expect_err("interior damage must fail recovery");
    // Typed taxonomy, not a panic: the error names the violated invariant.
    assert!(!err.to_string().is_empty());
}

// ---------------------------------------------------------------------
// Sharded family: per-shard fault isolation.  A torn commit on one
// shard's device must be quarantined on *that shard only* — the other
// shards recover clean, the merged response keeps `trusted == true`, and
// quarantine accounting names the damaged shard.
// ---------------------------------------------------------------------

const SHARDS: usize = 3;
const VICTIM: u32 = 1;

/// The sharded corpus: three rounds of the base corpus, committed
/// round-robin (`doc k → shard k mod 3`) with globally increasing
/// timestamps, so every shard sees a non-decreasing stream and holds
/// several documents.
fn sharded_docs() -> Vec<(String, Timestamp)> {
    let mut out = Vec::new();
    for round in 0..3usize {
        for (i, &(text, _)) in CORPUS.iter().enumerate() {
            let k = (round * CORPUS.len() + i) as u64;
            out.push((text.to_string(), Timestamp(200 + k)));
        }
    }
    out
}

/// Query shapes over the sharded corpus (timestamps live at 200+).
fn sharded_queries() -> Vec<Query> {
    vec![
        Query::disjunctive("alpha gamma", 10),
        Query::conjunctive("beta gamma"),
        Query::phrase("beta gamma"),
        Query::time_range(Timestamp(201), Timestamp(209)),
    ]
}

/// Byte range `[lo, hi]` the victim shard's posting store occupies for
/// its **last** commit in a clean run — the sweep range for the torn
/// tail family.
fn victim_last_commit_range() -> (u64, u64) {
    let mut engines: Vec<SearchEngine> = (0..SHARDS)
        .map(|_| SearchEngine::new(config()).expect("config is valid"))
        .collect();
    let mut before_last = 0u64;
    for (k, (text, ts)) in sharded_docs().iter().enumerate() {
        let s = k % SHARDS;
        if s == VICTIM as usize {
            before_last = engines[s].list_store().fs().device().bytes_committed();
        }
        engines[s].add_document(text, *ts).expect("clean commit");
    }
    let total = engines[VICTIM as usize]
        .list_store()
        .fs()
        .device()
        .bytes_committed();
    (before_last, total)
}

/// Commit the round-robin corpus into a 3-shard archive with `policy`
/// armed on the victim shard's posting store, treating the victim's
/// first commit error as that shard's device dying (fail-stop for the
/// shard; the others keep committing).  Reboots every shard and runs
/// per-shard recovery through [`ShardedArchive::recover`].
fn sharded_crash_and_recover(
    policy: FaultPolicy,
) -> (
    Vec<Vec<(String, Timestamp)>>,
    ShardedArchive,
    Vec<ShardRecovery>,
) {
    let mut engines: Vec<SearchEngine> = (0..SHARDS)
        .map(|_| SearchEngine::new(config()).expect("config is valid"))
        .collect();
    engines[VICTIM as usize]
        .list_store_mut()
        .fs_mut()
        .arm_faults(policy);
    let archive = ShardedArchive::from_engines(engines).expect("≥ 1 shard");
    let (mut writer, searcher) = archive.into_service();
    drop(searcher); // try_into_engines needs the writers to be sole owners
    let mut per_shard: Vec<Vec<(String, Timestamp)>> = vec![Vec::new(); SHARDS];
    let mut dead = false;
    for (k, (text, ts)) in sharded_docs().iter().enumerate() {
        let s = (k % SHARDS) as u32;
        if s == VICTIM && dead {
            continue;
        }
        match writer.commit_to(s, text, *ts) {
            Ok(_) => per_shard[s as usize].push((text.clone(), *ts)),
            Err(_) if s == VICTIM => dead = true,
            Err(e) => panic!("healthy shard {s} failed: {e}"),
        }
    }
    let Ok(engines) = writer.try_into_engines() else {
        panic!("no other live handles exist");
    };
    let mut parts = Vec::with_capacity(SHARDS);
    for engine in engines {
        let mut p = engine
            .expect("no shard is degraded before recovery")
            .into_parts();
        p.store_fs.disarm_faults();
        p.doc_fs.disarm_faults();
        p.store_fs.crash_recover().expect("store crash_recover");
        p.doc_fs.crash_recover().expect("doc crash_recover");
        if let Some(fs) = p.pos_fs.as_mut() {
            fs.disarm_faults();
            fs.crash_recover().expect("positions crash_recover");
        }
        parts.push(p);
    }
    let (archive, recoveries) =
        ShardedArchive::recover(parts, config()).expect("per-shard recovery");
    (per_shard, archive, recoveries)
}

/// A clean sharded archive holding exactly `per_shard` on each shard.
fn sharded_reference(per_shard: &[Vec<(String, Timestamp)>]) -> ShardedSearcher {
    let engines: Vec<SearchEngine> = per_shard
        .iter()
        .map(|docs| {
            let mut e = SearchEngine::new(config()).expect("config is valid");
            for (text, ts) in docs {
                e.add_document(text, *ts).expect("clean commit");
            }
            e
        })
        .collect();
    ShardedArchive::from_engines(engines)
        .expect("≥ 1 shard")
        .into_service()
        .1
}

#[test]
fn sharded_tear_on_one_shard_quarantines_only_that_shard() {
    let (lo, hi) = victim_last_commit_range();
    assert!(hi > lo, "the last commit must append posting-store bytes");
    let mut tails_seen = 0u64;
    for offset in lo..=hi {
        let ctx = format!("victim store torn at byte {offset}");
        let (per_shard, archive, recoveries) =
            sharded_crash_and_recover(FaultPolicy::torn_at_offset(offset));
        for r in &recoveries {
            assert!(
                r.error.is_none(),
                "{ctx}: a torn tail must never degrade a shard (shard {}: {:?})",
                r.shard,
                r.error
            );
            if r.shard != VICTIM {
                assert!(
                    r.is_clean(),
                    "{ctx}: quarantine leaked to healthy shard {}",
                    r.shard
                );
            }
        }
        let victim_quarantine = recoveries[VICTIM as usize].quarantined_bytes;
        if victim_quarantine > 0 {
            tails_seen += 1;
        }
        // The recovered archive must answer exactly like a clean archive
        // holding the same per-shard prefixes, and the torn commit on the
        // victim must never flip `trusted` — neither on the merged
        // response nor on any other shard's status.
        let reference = sharded_reference(&per_shard);
        let (_, searcher) = archive.into_service();
        for q in sharded_queries() {
            let want = reference.execute(q.clone()).expect("reference query");
            let got = searcher
                .execute(q.clone())
                .unwrap_or_else(|e| panic!("{ctx}: query {q:?} failed: {e}"));
            let pair = |r: &tks_shard::ShardedResponse| -> Vec<(u64, f64)> {
                r.hits.iter().map(|h| (h.doc.0, h.score)).collect()
            };
            assert_eq!(pair(&got), pair(&want), "{ctx}: results for {q:?}");
            assert!(got.trusted, "{ctx}: a torn tail is not tamper evidence");
            assert_eq!(got.quarantined_bytes, victim_quarantine, "{ctx}");
            for s in &got.shards {
                assert!(
                    s.consulted && s.trusted,
                    "{ctx}: shard {} lost trust over the victim's tear",
                    s.shard
                );
                let expect = if s.shard == VICTIM {
                    victim_quarantine
                } else {
                    0
                };
                assert_eq!(
                    s.quarantined_bytes, expect,
                    "{ctx}: quarantine misattributed on shard {}",
                    s.shard
                );
            }
        }
    }
    assert!(
        tails_seen > 0,
        "the sweep never produced quarantinable residue"
    );
}

#[test]
fn sharded_interior_damage_degrades_only_the_victim() {
    // Interior damage — which no single torn append can produce — must
    // degrade the victim shard while the rest of the archive recovers
    // clean and keeps serving with `trusted == true`.
    let mut engines: Vec<SearchEngine> = (0..SHARDS)
        .map(|_| SearchEngine::new(config()).expect("config is valid"))
        .collect();
    for (k, (text, ts)) in sharded_docs().iter().enumerate() {
        engines[k % SHARDS]
            .add_document(text, *ts)
            .expect("clean commit");
    }
    let victim = &mut engines[VICTIM as usize];
    let f = victim.list_store().fs().open("lists/0").expect("list file");
    victim
        .list_store_mut()
        .fs_mut()
        .append(f, &[0xFF, 0xFF])
        .expect("raw append");
    let whole = tks_postings::encode_posting(tks_postings::Posting {
        doc: tks_postings::types::DocId(9),
        term_tag: 0,
        tf: 1,
    });
    let f = victim.list_store().fs().open("lists/0").expect("list file");
    victim
        .list_store_mut()
        .fs_mut()
        .append(f, &whole)
        .expect("raw append");

    let parts = engines.into_iter().map(|e| e.into_parts()).collect();
    let (archive, recoveries) =
        ShardedArchive::recover(parts, config()).expect("archive-level recovery never fails");
    for r in &recoveries {
        if r.shard == VICTIM {
            assert!(r.error.is_some(), "interior damage must degrade the shard");
        } else {
            assert!(r.is_clean(), "shard {} must recover clean", r.shard);
        }
    }
    let (_, searcher) = archive.into_service();
    for q in sharded_queries() {
        let resp = searcher.execute(q.clone()).expect("healthy shards serve");
        assert!(resp.trusted, "healthy shards' verdict must survive");
        let degraded = resp.degraded();
        assert_eq!(degraded.len(), 1, "exactly the victim is reported");
        assert_eq!(degraded[0].shard, VICTIM);
        assert!(degraded[0].degraded.is_some(), "the reason is preserved");
    }
}

// ---------------------------------------------------------------------
// Replicated family: chain-verified failover.  The primary's append
// stream fans out to replica devices *post-commit only*, so a torn
// primary append never reaches a replica.  Tear the primary at every
// byte: recovery over primary + replicas must never degrade (a verified
// replica always exists), must converge to the surviving-document
// reference bit-for-bit (same hits, same scores, `trusted == true`,
// same chain head), and must promote a replica whenever it verifiably
// preserves more than the torn primary.
// ---------------------------------------------------------------------

const REPLICAS: usize = 2;

/// Commit the corpus with `policy` armed on the primary's `target`
/// device and `REPLICAS` inline replicas attached, treating the first
/// commit error as a crash.  Reboots the primary (the replicas' devices
/// never faulted) and recovers the shard through the failover path.
fn replicated_crash_and_recover(
    target: Target,
    policy: FaultPolicy,
) -> (u64, tks_replica::FailoverOutcome) {
    let mut e = SearchEngine::new(config()).expect("config is valid");
    let set = std::sync::Arc::new(tks_replica::ReplicaSet::new(
        tks_replica::fresh_images(&e, REPLICAS),
        tks_replica::ApplyMode::Inline,
    ));
    tks_replica::attach(&mut e, &set);
    match target {
        Target::Store => e.list_store_mut().fs_mut().arm_faults(policy),
        Target::Docs => e.doc_fs_mut().arm_faults(policy),
        Target::Positions => e
            .positions_fs_mut()
            .expect("positional config")
            .arm_faults(policy),
    }
    let mut committed = 0u64;
    for &(text, ts) in CORPUS {
        match e.add_document(text, Timestamp(ts)) {
            Ok(_) => committed += 1,
            Err(_) => break,
        }
    }
    tks_replica::detach(&mut e);
    let replica_parts: Vec<Result<tks_core::engine::EngineParts, String>> =
        tks_replica::ReplicaSet::reclaim(set)
            .expect("taps detached")
            .into_iter()
            .map(|(parts, fault)| {
                assert!(
                    fault.is_none(),
                    "a torn primary append must never reach a replica: {fault:?}"
                );
                Ok(parts)
            })
            .collect();
    let mut parts = e.into_parts();
    parts.store_fs.disarm_faults();
    parts.doc_fs.disarm_faults();
    parts.store_fs.crash_recover().expect("store crash_recover");
    parts.doc_fs.crash_recover().expect("doc crash_recover");
    if let Some(fs) = parts.pos_fs.as_mut() {
        fs.disarm_faults();
        fs.crash_recover().expect("positions crash_recover");
    }
    let outcome = tks_replica::recover_shard(Ok(parts), replica_parts, &config());
    (committed, outcome)
}

/// Convergence + trust for one replicated recovery: never degraded,
/// bit-identical answers to the surviving-document reference, and the
/// reference's exact chain head.
fn assert_replicated_converged(
    ctx: &str,
    committed: u64,
    outcome: &tks_replica::FailoverOutcome,
    reference_engine: &SearchEngine,
    refs: &[Vec<(u64, f64)>],
) {
    assert!(
        outcome.degraded_reason.is_none(),
        "{ctx}: with a verified replica the shard must never degrade ({:?})",
        outcome.degraded_reason
    );
    let engine = outcome
        .engine
        .as_deref()
        .unwrap_or_else(|| panic!("{ctx}: no engine despite no degraded reason"));
    assert_converged(ctx, committed, engine, refs);
    assert_eq!(
        engine.chain_head(),
        reference_engine.chain_head(),
        "{ctx}: the recovered chain head must match the clean reference's"
    );
    for v in &outcome.replicas {
        if v.verified {
            assert_eq!(
                v.watermark, committed,
                "{ctx}: a verified replica holds exactly the committed prefix"
            );
            assert_eq!(
                v.chain_head,
                Some(reference_engine.chain_head()),
                "{ctx}: replica {} chain head",
                v.replica
            );
        }
    }
}

#[test]
fn replica_failover_every_byte_tear_converges() {
    let (store_total, doc_total, pos_total) = clean_device_bytes();
    let refs: Vec<(SearchEngine, Vec<Vec<(u64, f64)>>)> =
        (0..=CORPUS.len() as u64).map(reference).collect();
    let mut promotions = 0u64;
    for (target, total) in [
        (Target::Store, store_total),
        (Target::Docs, doc_total),
        (Target::Positions, pos_total),
    ] {
        for offset in 0..=total {
            let ctx = format!("replicated {target:?} torn at byte {offset}");
            let (committed, outcome) =
                replicated_crash_and_recover(target, FaultPolicy::torn_at_offset(offset));
            let (ref_engine, ref_responses) = &refs[committed as usize];
            assert_replicated_converged(&ctx, committed, &outcome, ref_engine, ref_responses);
            if let Some(promoted) = outcome.promoted_from {
                promotions += 1;
                // Promotion only ever trades up: the promoted replica
                // quarantined no more than the torn primary.
                let v = &outcome.replicas[promoted];
                assert!(
                    v.quarantined_bytes <= outcome.primary_quarantined,
                    "{ctx}: promotion must not increase quarantine"
                );
            }
        }
    }
    assert!(
        promotions > 0,
        "the byte sweep never exercised replica promotion"
    );
}

#[test]
fn replica_failover_seeded_fault_matrix_converges() {
    for seed in 0..16u64 {
        for target in TARGETS {
            let ctx = format!("replicated {target:?} seed {seed}");
            let (committed, outcome) =
                replicated_crash_and_recover(target, FaultPolicy::seeded(seed, 48));
            let (ref_engine, refs) = reference(committed);
            assert_replicated_converged(&ctx, committed, &outcome, &ref_engine, &refs);
        }
    }
}

#[test]
fn replica_failover_total_primary_loss_promotes_longest_verified() {
    // A clean replicated run, then the primary device is lost outright:
    // recovery must promote replica 0 (lowest index among the equally
    // long verified replicas) and serve the full corpus, trusted, with
    // the surviving replica as a read standby.
    let mut e = SearchEngine::new(config()).expect("config is valid");
    let set = std::sync::Arc::new(tks_replica::ReplicaSet::new(
        tks_replica::fresh_images(&e, REPLICAS),
        tks_replica::ApplyMode::Inline,
    ));
    tks_replica::attach(&mut e, &set);
    for &(text, ts) in CORPUS {
        e.add_document(text, Timestamp(ts)).expect("clean commit");
    }
    tks_replica::detach(&mut e);
    let replica_parts: Vec<Result<tks_core::engine::EngineParts, String>> =
        tks_replica::ReplicaSet::reclaim(set)
            .expect("taps detached")
            .into_iter()
            .map(|(parts, fault)| {
                assert!(fault.is_none(), "{fault:?}");
                Ok(parts)
            })
            .collect();
    let outcome = tks_replica::recover_shard(
        Err("primary device lost".to_string()),
        replica_parts,
        &config(),
    );
    assert_eq!(outcome.promoted_from, Some(0));
    assert_eq!(
        outcome.primary_error.as_deref(),
        Some("primary device lost")
    );
    let n = CORPUS.len() as u64;
    let (ref_engine, refs) = reference(n);
    assert_replicated_converged("total primary loss", n, &outcome, &ref_engine, &refs);
    assert_eq!(
        outcome.standbys.len(),
        REPLICAS - 1,
        "the other verified replica serves reads"
    );
}

#[test]
fn recovered_engine_refuses_commits_that_touch_quarantined_residue() {
    // WORM cannot truncate, so crash residue permanently occupies its
    // bytes.  A recovered engine must refuse commits that would land on
    // residue — a quarantined list tail (readers address postings by
    // ordinal) or the orphan text occupying the next document's file —
    // with a typed error naming the quarantine, never by corrupting.
    let (store_total, _, _) = clean_device_bytes();
    // Tear near the end of the store stream so recovery has residue to
    // quarantine (the last document's postings and/or its orphan text).
    let mut found_refusal = false;
    for offset in (0..store_total).rev().take(32) {
        let (committed, mut recovered) =
            crash_and_recover(Target::Store, FaultPolicy::torn_at_offset(offset));
        if recovered.recovery_report().is_clean() {
            continue;
        }
        let next_ts = Timestamp(200);
        match recovered.add_document("alpha beta gamma delta epsilon zeta", next_ts) {
            Err(e) => {
                assert!(
                    e.to_string().contains("quarantined"),
                    "expected a quarantine refusal, got: {e}"
                );
                // The failed commit must not advance the count.
                assert_eq!(recovered.num_docs(), committed);
                found_refusal = true;
                break;
            }
            // Residue that the new commit never touches is no obstacle.
            Ok(_) => continue,
        }
    }
    assert!(
        found_refusal,
        "no tear produced residue that a follow-up commit touched"
    );
}
