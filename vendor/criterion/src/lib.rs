//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's `benches/` use (`black_box`,
//! `Criterion`, benchmark groups, `BenchmarkId`, the `criterion_group!` /
//! `criterion_main!` macros) with a simple wall-clock runner: each
//! benchmark closure is timed over `sample_size` samples and the mean,
//! min, and max per-iteration times are printed. No statistics, no
//! HTML reports — enough to compile the benches and get usable numbers.

use std::fmt::Display;
use std::hint;
use std::time::Instant;

pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_benchmark(&id.0, self.sample_size, &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.criterion.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.0);
        run_benchmark(&full, self.criterion.sample_size, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.0);
        run_benchmark(&full, self.criterion.sample_size, &mut |b: &mut Bencher| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

pub struct Bencher {
    /// (iterations, total elapsed seconds) per sample.
    samples: Vec<(u64, f64)>,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm up once, then scale the iteration count so each sample
        // takes roughly a millisecond — keeps fast benches meaningful
        // without making slow ones crawl.
        let warm = Instant::now();
        black_box(f());
        let once = warm.elapsed().as_secs_f64().max(1e-9);
        let iters = ((1e-3 / once).round() as u64).clamp(1, 10_000);

        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.samples.push((iters, start.elapsed().as_secs_f64()));
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, f: &mut F) {
    let mut bencher = Bencher {
        samples: Vec::new(),
    };
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    if bencher.samples.is_empty() {
        println!("{name:<50} no samples recorded");
        return;
    }
    let per_iter: Vec<f64> = bencher
        .samples
        .iter()
        .map(|(iters, secs)| secs / (*iters as f64))
        .collect();
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "{name:<50} mean {:>12} min {:>12} max {:>12}",
        fmt_time(mean),
        fmt_time(min),
        fmt_time(max)
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
