//! Offline stand-in for `serde_json`: renders the vendored [`serde::Value`]
//! data model as JSON text and parses it back. Covers the subset this
//! workspace uses (`to_string`, `to_string_pretty`, `from_str`).

use serde::{Deserialize, Error, Serialize, Value};

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    T::deserialize(&value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                let formatted = format!("{x}");
                out.push_str(&formatted);
                // Keep floats distinguishable from integers, like serde_json.
                if !formatted.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::custom("unexpected end of JSON"))
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek()? == byte {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::custom("bad literal"))
                }
            }
            b't' => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::custom("bad literal"))
                }
            }
            b'f' => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::custom("bad literal"))
                }
            }
            b'"' => self.parse_string().map(Value::Str),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::custom("expected `,` or `]`")),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut entries = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.expect(b':')?;
                    entries.push((key, self.parse_value()?));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::custom("expected `,` or `}`")),
                    }
                }
            }
            _ => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::custom("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("bad \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u escape"))?,
                            );
                        }
                        _ => return Err(Error::custom("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::custom("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::custom("invalid number"));
        }
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::custom("invalid number"))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .ok()
                .and_then(|n| i64::try_from(n).ok())
                .map(|n| Value::Int(-n))
                .ok_or_else(|| Error::custom("invalid number"))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| Error::custom("invalid number"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_value_shapes() {
        let v = Value::Map(vec![
            ("a".into(), Value::UInt(7)),
            ("b".into(), Value::Seq(vec![Value::Bool(true), Value::Null])),
            ("c".into(), Value::Str("x\"y\n".into())),
            ("d".into(), Value::Float(1.5)),
            ("e".into(), Value::Int(-3)),
        ]);
        let text = {
            let mut s = String::new();
            write_value(&mut s, &v, Some(2), 0);
            s
        };
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        assert_eq!(p.parse_value().unwrap(), v);
    }
}
