//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace uses:
//! `proptest!` / `prop_oneof!` / `prop_assert!` / `prop_assert_eq!`,
//! `Strategy` + `prop_map`, `Just`, `any`, range strategies,
//! tuple strategies, and `collection::{vec, btree_set}`.
//!
//! Differences from real proptest, by design:
//! * **No shrinking.** A failing case panics with its case index and the
//!   per-test RNG seed, which is enough to replay deterministically
//!   (seeds derive only from the test name and case index).
//! * **No persistence.** `.proptest-regressions` files are neither read
//!   nor written; regressions worth keeping are encoded as explicit
//!   deterministic `#[test]`s instead.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

pub mod test_runner {
    /// Why a test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        Fail(String),
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail<S: Into<String>>(msg: S) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject<S: Into<String>>(msg: S) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic per-case RNG (splitmix64 stream).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from the test name and case index, so every run of the
        /// suite explores the same inputs and failures replay exactly.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng {
                state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

use test_runner::TestRng;

// ---------------------------------------------------------------------------
// Strategy
// ---------------------------------------------------------------------------

pub mod strategy {
    use super::test_runner::TestRng;
    use std::rc::Rc;

    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
        }
    }

    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct BoxedStrategy<T>(pub(crate) Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Weighted choice among boxed strategies; backs `prop_oneof!`.
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs at least one positive weight");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (weight, arm) in &self.arms {
                if pick < *weight as u64 {
                    return arm.generate(rng);
                }
                pick -= *weight as u64;
            }
            unreachable!("weights sum to total")
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub use strategy::{BoxedStrategy, Just, Strategy, Union};

// ---------------------------------------------------------------------------
// Primitive strategies
// ---------------------------------------------------------------------------

/// Types with a full-domain default strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let offset = (rng.next_u64() as u128) % span;
                ((self.start as u128).wrapping_add(offset)) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as u128)
                    .wrapping_sub(start as u128)
                    .wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                let offset = (rng.next_u64() as u128) % span;
                ((start as u128).wrapping_add(offset)) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);

// ---------------------------------------------------------------------------
// Collection strategies
// ---------------------------------------------------------------------------

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// Element-count specification for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        pub min: usize,
        /// Exclusive upper bound.
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            let span = (self.max - self.min) as u64;
            if span == 0 {
                self.min
            } else {
                self.min + rng.below(span) as usize
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            // Duplicates collapse, so the result may be smaller than the
            // drawn target — same caveat as real proptest.
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn btree_set<S: Strategy>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }
}

// `prop_oneof!` arms call `.boxed()` through this helper so plain range
// expressions (`0u8..20`) work without importing `Strategy`.
pub fn boxed_arm<S: Strategy + 'static>(strategy: S) -> BoxedStrategy<S::Value> {
    let rc: Rc<dyn Fn(&mut TestRng) -> S::Value> =
        Rc::new(move |rng: &mut TestRng| strategy.generate(rng));
    BoxedStrategy(rc)
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::boxed_arm($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::boxed_arm($strategy))),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {} at {}:{}", stringify!($cond), file!(), line!()),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: {} at {}:{}: {}",
                    stringify!($cond),
                    file!(),
                    line!(),
                    format!($($fmt)+)
                ),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}` at {}:{}\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), file!(), line!(), l, r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}` at {}:{}: {}\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), file!(), line!(),
                    format!($($fmt)+), l, r
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (@impl ($config:expr); $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                #[allow(unused_imports)]
                use $crate::strategy::Strategy as _;
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rejected: u32 = 0;
                let mut case: u32 = 0;
                let mut run: u32 = 0;
                while run < config.cases {
                    let mut rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    case += 1;
                    $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    match outcome {
                        ::std::result::Result::Ok(()) => run += 1,
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {
                            rejected += 1;
                            assert!(
                                rejected < config.cases.saturating_mul(4).max(256),
                                "too many rejected cases in {}",
                                stringify!($name)
                            );
                        }
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(msg),
                        ) => {
                            panic!(
                                "proptest case {} of `{}` failed \
                                 (replay: seed derives from test name + case index)\n{}",
                                case - 1,
                                stringify!($name),
                                msg
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @impl ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        );
    };
}

pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{any, Arbitrary};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_vecs(xs in crate::collection::vec(0u64..100, 1..10), b in prop_oneof![Just(2u32), Just(4)]) {
            prop_assert!(!xs.is_empty() && xs.len() < 10);
            prop_assert!(xs.iter().all(|&x| x < 100));
            prop_assert!(b == 2 || b == 4);
        }

        #[test]
        fn early_return_ok_is_supported(n in 0u8..10) {
            if n > 200 {
                return Ok(());
            }
            prop_assert!(n < 10);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = TestRng::for_case("x", 3);
        let mut b = TestRng::for_case("x", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
