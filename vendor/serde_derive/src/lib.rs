//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal `serde` data model (see `vendor/serde`) and this
//! proc-macro crate derives its `Serialize` / `Deserialize` traits for
//! the item shapes the workspace actually uses:
//!
//! * structs with named fields (honouring `#[serde(default)]`),
//! * tuple structs (newtype and general),
//! * enums with unit, tuple and struct variants (externally tagged,
//!   matching real serde's JSON representation).
//!
//! Generic items are intentionally unsupported — none of the workspace's
//! serialized types are generic, and failing loudly beats silently
//! producing wrong impls.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated impl parses")
}

struct Field {
    name: String,
    /// `#[serde(default)]`: substitute `Default::default()` when missing.
    default: bool,
}

enum Shape {
    Named(Vec<Field>),
    Tuple(usize),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Tokens of one `#[...]` attribute; returns true if it is `#[serde(default)]`.
fn attr_is_serde_default(group: &TokenStream) -> bool {
    let mut toks = group.clone().into_iter();
    match (toks.next(), toks.next()) {
        (Some(TokenTree::Ident(i)), Some(TokenTree::Group(g))) => {
            i.to_string() == "serde" && g.stream().to_string().contains("default")
        }
        _ => false,
    }
}

/// Skip attributes at `toks[*i]`, returning whether any was `#[serde(default)]`.
fn skip_attrs(toks: &[TokenTree], i: &mut usize) -> bool {
    let mut default = false;
    while *i + 1 < toks.len() {
        match (&toks[*i], &toks[*i + 1]) {
            (TokenTree::Punct(p), TokenTree::Group(g))
                if p.as_char() == '#' && g.delimiter() == Delimiter::Bracket =>
            {
                if attr_is_serde_default(&g.stream()) {
                    default = true;
                }
                *i += 2;
            }
            _ => break,
        }
    }
    default
}

fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if let Some(TokenTree::Ident(id)) = toks.get(*i) {
        if id.to_string() == "pub" {
            *i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Skip a type at `toks[*i]` up to a top-level comma (or the end).
fn skip_type(toks: &[TokenTree], i: &mut usize) {
    let mut angle = 0i32;
    while let Some(t) = toks.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => return,
                _ => {}
            }
        }
        *i += 1;
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < toks.len() {
        let default = skip_attrs(&toks, &mut i);
        skip_vis(&toks, &mut i);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected field name, found {other:?}"),
        };
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected ':' after field `{name}`, found {other:?}"),
        }
        skip_type(&toks, &mut i);
        i += 1; // consume the comma, if any
        fields.push(Field { name, default });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.clone().into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut i = 0;
    let mut count = 0;
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        skip_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        skip_type(&toks, &mut i);
        i += 1; // comma
        count += 1;
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("expected variant name, found {other:?}"),
        };
        i += 1;
        let kind = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantKind::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantKind::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantKind::Unit,
        };
        // Consume a trailing discriminant (`= expr`) — not used by any
        // serialized type, but cheap to tolerate — then the comma.
        while let Some(t) = toks.get(i) {
            if let TokenTree::Punct(p) = t {
                if p.as_char() == ',' {
                    i += 1;
                    break;
                }
            }
            i += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&toks, &mut i);
    skip_vis(&toks, &mut i);
    let keyword = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected struct/enum, found {other:?}"),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, found {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            panic!("derive(Serialize/Deserialize) stub does not support generic type `{name}`");
        }
    }
    let shape = match keyword.as_str() {
        "struct" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Named(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::Tuple(count_tuple_fields(g.stream()))
            }
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("expected enum body for `{name}`, found {other:?}"),
        },
        other => panic!("cannot derive for `{other} {name}`"),
    };
    Item { name, shape }
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{n}\"), ::serde::Serialize::serialize(&self.{n}))",
                        n = f.name
                    )
                })
                .collect();
            format!("::serde::Value::Map(::std::vec![{}])", entries.join(", "))
        }
        Shape::Tuple(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Shape::Tuple(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", entries.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| match &v.kind {
                    VariantKind::Unit => format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from(\"{v}\")),",
                        v = v.name
                    ),
                    VariantKind::Tuple(1) => format!(
                        "{name}::{v}(__f0) => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{v}\"), ::serde::Serialize::serialize(__f0))]),",
                        v = v.name
                    ),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let sers: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Serialize::serialize(__f{i})"))
                            .collect();
                        format!(
                            "{name}::{v}({binds}) => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{v}\"), ::serde::Value::Seq(::std::vec![{sers}]))]),",
                            v = v.name,
                            binds = binds.join(", "),
                            sers = sers.join(", ")
                        )
                    }
                    VariantKind::Named(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{n}\"), ::serde::Serialize::serialize({n}))",
                                    n = f.name
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Map(::std::vec![(::std::string::String::from(\"{v}\"), ::serde::Value::Map(::std::vec![{entries}]))]),",
                            v = v.name,
                            binds = binds.join(", "),
                            entries = entries.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn gen_named_field_inits(fields: &[Field], map_var: &str) -> String {
    fields
        .iter()
        .map(|f| {
            if f.default {
                format!(
                    "{n}: match ::serde::map_get({m}, \"{n}\") {{ \
                         ::std::option::Option::Some(__x) => ::serde::Deserialize::deserialize(__x)?, \
                         ::std::option::Option::None => ::std::default::Default::default() }},",
                    n = f.name,
                    m = map_var
                )
            } else {
                format!(
                    "{n}: ::serde::Deserialize::deserialize(\
                         ::serde::map_get({m}, \"{n}\").unwrap_or(&::serde::Value::Null))?,",
                    n = f.name,
                    m = map_var
                )
            }
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => format!(
            "let __m = __v.as_map().ok_or_else(|| ::serde::Error::custom(\"expected map for {name}\"))?;\n\
             ::std::result::Result::Ok({name} {{ {inits} }})",
            inits = gen_named_field_inits(fields, "__m")
        ),
        Shape::Tuple(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__v)?))")
        }
        Shape::Tuple(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::deserialize(__s.get({i}).unwrap_or(&::serde::Value::Null))?"
                    )
                })
                .collect();
            format!(
                "let __s = __v.as_seq().ok_or_else(|| ::serde::Error::custom(\"expected sequence for {name}\"))?;\n\
                 ::std::result::Result::Ok({name}({inits}))",
                inits = inits.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.kind, VariantKind::Unit))
                .map(|v| {
                    format!(
                        "\"{v}\" => return ::std::result::Result::Ok({name}::{v}),",
                        v = v.name
                    )
                })
                .collect();
            let tagged_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| match &v.kind {
                    VariantKind::Unit => None,
                    VariantKind::Tuple(1) => Some(format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}(::serde::Deserialize::deserialize(__inner)?)),",
                        v = v.name
                    )),
                    VariantKind::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| format!(
                                "::serde::Deserialize::deserialize(__s.get({i}).unwrap_or(&::serde::Value::Null))?"
                            ))
                            .collect();
                        Some(format!(
                            "\"{v}\" => {{ let __s = __inner.as_seq().ok_or_else(|| ::serde::Error::custom(\"expected sequence for {name}::{v}\"))?; \
                             ::std::result::Result::Ok({name}::{v}({inits})) }},",
                            v = v.name,
                            inits = inits.join(", ")
                        ))
                    }
                    VariantKind::Named(fields) => Some(format!(
                        "\"{v}\" => {{ let __m2 = __inner.as_map().ok_or_else(|| ::serde::Error::custom(\"expected map for {name}::{v}\"))?; \
                         ::std::result::Result::Ok({name}::{v} {{ {inits} }}) }},",
                        v = v.name,
                        inits = gen_named_field_inits(fields, "__m2")
                    )),
                })
                .collect();
            format!(
                "if let ::serde::Value::Str(__s) = __v {{\n\
                     match __s.as_str() {{\n\
                         {unit_arms}\n\
                         __other => return ::std::result::Result::Err(::serde::Error::custom(\
                             ::std::format!(\"unknown {name} variant `{{__other}}`\"))),\n\
                     }}\n\
                 }}\n\
                 let __m = __v.as_map().ok_or_else(|| ::serde::Error::custom(\"expected map for {name}\"))?;\n\
                 let (__tag, __inner) = __m.first().ok_or_else(|| ::serde::Error::custom(\"empty map for {name}\"))?;\n\
                 match __tag.as_str() {{\n\
                     {tagged_arms}\n\
                     __other => ::std::result::Result::Err(::serde::Error::custom(\
                         ::std::format!(\"unknown {name} variant `{{__other}}`\"))),\n\
                 }}",
                unit_arms = unit_arms.join("\n"),
                tagged_arms = tagged_arms.join("\n")
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
