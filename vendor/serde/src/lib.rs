//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so this crate provides a
//! minimal self-describing data model ([`Value`]) plus [`Serialize`] /
//! [`Deserialize`] traits that the vendored `serde_derive` proc-macro and
//! `serde_json` target. It intentionally covers only what this workspace
//! uses; it is not a general serde replacement.

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::hash::Hash;

/// The self-describing intermediate representation all (de)serialization
/// flows through. Maps preserve insertion order so JSON output is stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    UInt(u64),
    Int(i64),
    Float(f64),
    Str(String),
    Seq(Vec<Value>),
    Map(Vec<(String, Value)>),
}

impl Value {
    pub fn as_map(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }
}

/// Look up a key in a [`Value::Map`] entry list.
pub fn map_get<'a>(map: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

pub trait Serialize {
    fn serialize(&self) -> Value;
}

pub trait Deserialize: Sized {
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::UInt(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t)))),
                    Value::Int(n) if *n >= 0 => <$t>::try_from(*n as u64)
                        .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t)))),
                    other => Err(Error::custom(format!(
                        "expected {} found {other:?}",
                        stringify!($t)
                    ))),
                }
            }
        }
    )*};
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Int(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t)))),
                    Value::UInt(n) => <$t>::try_from(i64::try_from(*n).map_err(|_| {
                        Error::custom(concat!("out of range for ", stringify!($t)))
                    })?)
                    .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t)))),
                    other => Err(Error::custom(format!(
                        "expected {} found {other:?}",
                        stringify!($t)
                    ))),
                }
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);
impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                match value {
                    Value::Float(x) => Ok(*x as $t),
                    Value::UInt(n) => Ok(*n as $t),
                    Value::Int(n) => Ok(*n as $t),
                    other => Err(Error::custom(format!(
                        "expected {} found {other:?}",
                        stringify!($t)
                    ))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool found {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(Error::custom(format!("expected char found {other:?}"))),
        }
    }
}

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(x) => x.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => Ok(Some(T::deserialize(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_seq()
            .ok_or_else(|| Error::custom("expected sequence"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Value {
        Value::Seq(vec![self.0.serialize(), self.1.serialize()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_seq()
            .ok_or_else(|| Error::custom("expected 2-tuple"))?;
        if s.len() != 2 {
            return Err(Error::custom("expected 2-tuple"));
        }
        Ok((A::deserialize(&s[0])?, B::deserialize(&s[1])?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self) -> Value {
        Value::Seq(vec![
            self.0.serialize(),
            self.1.serialize(),
            self.2.serialize(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_seq()
            .ok_or_else(|| Error::custom("expected 3-tuple"))?;
        if s.len() != 3 {
            return Err(Error::custom("expected 3-tuple"));
        }
        Ok((
            A::deserialize(&s[0])?,
            B::deserialize(&s[1])?,
            C::deserialize(&s[2])?,
        ))
    }
}

/// Map keys must render as JSON strings; this converts them back and forth.
pub trait MapKey: Sized {
    fn to_key(&self) -> String;
    fn from_key(key: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, Error> {
        Ok(key.to_string())
    }
}

macro_rules! impl_numeric_map_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, Error> {
                key.parse()
                    .map_err(|_| Error::custom(concat!("bad ", stringify!($t), " map key")))
            }
        }
    )*};
}

impl_numeric_map_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey + Eq + Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize(&self) -> Value {
        // Sort for deterministic output.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.serialize()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<K: MapKey + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_map()
            .ok_or_else(|| Error::custom("expected map"))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::deserialize(v)?)))
            .collect()
    }
}

impl<K: MapKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.serialize()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_map()
            .ok_or_else(|| Error::custom("expected map"))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::deserialize(v)?)))
            .collect()
    }
}
