//! Offline stand-in for `rand`.
//!
//! Implements the subset this workspace uses: `rngs::SmallRng` and the
//! `Rng`/`RngCore`/`SeedableRng` traits, `gen()` for common primitives,
//! and `gen_range` over half-open and inclusive ranges.
//!
//! The implementation is **bit-faithful to `rand 0.8` + `rand_xoshiro`**
//! for the paths the workspace exercises: `SmallRng` is xoshiro256++
//! seeded through splitmix64 (as upstream's `seed_from_u64`), `next_u32`
//! truncates `next_u64`, `gen::<f64>()` uses the 53-bit multiply, float
//! ranges use the exponent-splice [1,2) trick, and integer ranges use
//! Lemire's widening-multiply rejection with upstream's zone computation.
//! This keeps the seed repository's statistically calibrated tests (which
//! assume upstream's exact sample streams) valid.

use std::ops::{Range, RangeInclusive};

pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        // Truncation, as rand_xoshiro does for 64-bit generators.
        self.next_u64() as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
}

/// Types producible by [`Rng::gen`] (upstream's `Standard` distribution).
pub trait StandardSample: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Upstream samples a u32 and uses its top bit via `< 0x8000_0000`
        // shifted; one high bit of a fresh draw is equivalent in
        // distribution — and no workspace test depends on bool streams.
        rng.next_u32() & 0x8000_0000 != 0
    }
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random bits → uniform in [0, 1), matching upstream Standard.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

// Lemire widening-multiply rejection sampling, exactly as rand 0.8's
// `UniformInt::sample_single` / `sample_single_inclusive`:
//   * small int types (≤ 16 bits) widen to u32 and use the modulo zone,
//   * wide types use the leading-zeros shift zone.
macro_rules! impl_int_range {
    // $t: public type; $large: upstream's $u_large; small: whether the
    // modulo zone applies (types narrower than the large type).
    ($($t:ty => $large:ty, $small:expr);* $(;)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let range = (self.end.wrapping_sub(self.start)) as $large;
                let hi = sample_zoned::<$large, R>(rng, range, $small)
                    .expect("non-zero range");
                self.start.wrapping_add(hi as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let range = (end.wrapping_sub(start) as $large).wrapping_add(1);
                match sample_zoned::<$large, R>(rng, range, $small) {
                    Some(hi) => start.wrapping_add(hi as $t),
                    // Full-domain inclusive range: any draw is valid.
                    None => <$large as WideMul>::draw(rng) as $t,
                }
            }
        }
    )*};
}

/// Shared zone-rejection loop over an unsigned `$large` domain.
/// Returns `None` when `range == 0` (full-domain inclusive ranges).
fn sample_zoned<L: WideMul, R: RngCore + ?Sized>(rng: &mut R, range: L, small: bool) -> Option<L> {
    if range.is_zero() {
        return None;
    }
    let zone = if small {
        // (MAX - range + 1) % range subtracted from MAX.
        range.modulo_zone()
    } else {
        range.shift_zone()
    };
    loop {
        let v = L::draw(rng);
        let (hi, lo) = v.wmul(range);
        if lo <= zone {
            return Some(hi);
        }
    }
}

/// Widening multiply + the two upstream zone computations, per width.
pub trait WideMul: Copy + PartialOrd {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    fn wmul(self, other: Self) -> (Self, Self);
    fn is_zero(self) -> bool;
    fn modulo_zone(self) -> Self;
    fn shift_zone(self) -> Self;
}

impl WideMul for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
    fn wmul(self, other: Self) -> (Self, Self) {
        let p = self as u64 * other as u64;
        ((p >> 32) as u32, p as u32)
    }
    fn is_zero(self) -> bool {
        self == 0
    }
    fn modulo_zone(self) -> Self {
        let ints_to_reject = (u32::MAX - self + 1) % self;
        u32::MAX - ints_to_reject
    }
    fn shift_zone(self) -> Self {
        (self << self.leading_zeros()).wrapping_sub(1)
    }
}

impl WideMul for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
    fn wmul(self, other: Self) -> (Self, Self) {
        let p = self as u128 * other as u128;
        ((p >> 64) as u64, p as u64)
    }
    fn is_zero(self) -> bool {
        self == 0
    }
    fn modulo_zone(self) -> Self {
        let ints_to_reject = (u64::MAX - self + 1) % self;
        u64::MAX - ints_to_reject
    }
    fn shift_zone(self) -> Self {
        (self << self.leading_zeros()).wrapping_sub(1)
    }
}

impl_int_range! {
    u8 => u32, true;
    i8 => u32, true;
    u16 => u32, true;
    i16 => u32, true;
    u32 => u32, false;
    i32 => u32, false;
    u64 => u64, false;
    i64 => u64, false;
    usize => u64, false;
    isize => u64, false;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        // Upstream UniformFloat: splice 52 random bits into the mantissa
        // of a float in [1, 2), subtract 1 → [0, 1) with even spacing.
        let scale = self.end - self.start;
        let value1_2 = f64::from_bits((1023u64 << 52) | (rng.next_u64() >> 12));
        (value1_2 - 1.0) * scale + self.start
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let scale = self.end - self.start;
        let value1_2 = f32::from_bits((127u32 << 23) | (rng.next_u32() >> 9));
        (value1_2 - 1.0) * scale + self.start
    }
}

pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, the algorithm behind upstream `SmallRng` on 64-bit
    /// platforms.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 state expansion, as rand_xoshiro's seed_from_u64.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::{rngs::SmallRng, Rng, RngCore, SeedableRng};

    #[test]
    fn xoshiro_reference_vector() {
        // First outputs of xoshiro256++ seeded with splitmix64(0), which
        // any faithful implementation must reproduce.
        let mut rng = SmallRng::seed_from_u64(0);
        let first: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let mut again = SmallRng::seed_from_u64(0);
        let repeat: Vec<u64> = (0..4).map(|_| again.next_u64()).collect();
        assert_eq!(first, repeat);
        assert_ne!(first[0], first[1]);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(42);
        for _ in 0..2000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&y));
            let n = rng.gen_range(3u64..17);
            assert!((3..17).contains(&n));
            let m = rng.gen_range(2..=5);
            assert!((2..=5).contains(&m));
            let b = rng.gen_range(0u8..20);
            assert!(b < 20);
            let full = rng.gen_range(0u64..=u64::MAX);
            let _ = full;
        }
    }
}
