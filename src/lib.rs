//! # trustworthy-search
//!
//! A production-quality Rust reproduction of **Mitra, Hsu & Winslett,
//! "Trustworthy Keyword Search for Regulatory-Compliant Records
//! Retention", VLDB 2006** — a keyword-search engine over WORM
//! (write-once-read-many) storage whose *index* is as tamper-resistant as
//! the records themselves.
//!
//! Simply storing records on WORM is not enough: if the index an
//! investigator searches through can be manipulated, a record can be
//! hidden without touching its bytes.  This crate family provides:
//!
//! * [`worm`] — the WORM storage model: append-only blocks/files,
//!   retention enforcement, tamper-attempt logging, and the storage-cache
//!   simulator used by the paper's experiments;
//! * [`postings`] — document/term identifiers and WORM-backed posting
//!   lists with merged-list term tags;
//! * [`jump`] — **jump indexes**: fossilized `O(log N)`
//!   `Insert`/`Lookup`/`FindGeq` structures over monotone document IDs
//!   whose lookup paths can never be subverted by later writes;
//! * [`btree`] — the untrustworthy baseline: an append-only B+ tree plus
//!   the paper's Figure 6 hiding attack, demonstrating *why* jump indexes
//!   exist;
//! * [`ght`] — the Generalized Hash Tree exact-match baseline;
//! * [`corpus`] — synthetic corpus & query-log generators calibrated to
//!   the paper's IBM intranet workload;
//! * [`core`] — the assembled engine: merged posting lists with real-time
//!   index update, ranked disjunctive search (BM25/cosine), conjunctive
//!   zigzag joins over jump indexes, trustworthy commit-time ranges,
//!   epoch-based statistics learning, ranking-attack countermeasures, and
//!   the simulation drivers behind every figure of the paper;
//! * [`shard`] — the sharded multi-archive engine: hash-partitioned WORM
//!   shards behind one writer/searcher pair, scatter-gather query
//!   execution with conservative trust merging, and per-shard fault
//!   isolation (a dead shard degrades, the archive keeps answering);
//! * [`replica`] — chain-verified per-shard replication: deterministic
//!   primary/backup append streams fan each shard's WORM writes to
//!   backup devices, commit points carry the sealed chain links a
//!   replica verifies before advancing, and recovery promotes the
//!   replica with the longest verified chain prefix when the primary is
//!   lost (surviving verified replicas serve reads round-robin).
//!
//! ## Quickstart
//!
//! ```
//! use trustworthy_search::prelude::*;
//!
//! // An engine with 64 merged posting lists and jump indexes (B = 32),
//! // via the validating configuration builder.
//! let config = EngineConfig::builder()
//!     .assignment(MergeAssignment::uniform(64))
//!     .jump(JumpConfig::new(8192, 32, 1 << 32))
//!     .build()
//!     .unwrap();
//! let mut engine = SearchEngine::new(config).unwrap();
//!
//! // Committing a record indexes it *before* the call returns — there is
//! // no window in which an insider can suppress the index entry.
//! let doc = engine
//!     .add_document("quarterly earnings restatement draft", Timestamp(1_700_000_000))
//!     .unwrap();
//!
//! // Every read is one Query through one entry point; the response
//! // carries the hits plus per-query I/O cost and trust metadata.
//! let ranked = engine.execute(&Query::disjunctive("earnings restatement", 10)).unwrap();
//! assert_eq!(ranked.hits[0].doc, doc);
//! assert!(ranked.trusted);
//!
//! let exact = engine.execute(&Query::conjunctive("quarterly earnings")).unwrap();
//! assert_eq!(exact.docs(), vec![doc]);
//!
//! // Audits surface any tampering detectable from the WORM bytes.
//! assert!(engine.audit().is_clean());
//! ```
//!
//! ## Concurrent deployments
//!
//! Split the engine into an exclusive [`IndexWriter`](core::service::IndexWriter)
//! and cheaply cloneable [`Searcher`](core::service::Searcher) handles to
//! serve queries from many threads while documents are being committed:
//!
//! ```
//! use trustworthy_search::prelude::*;
//!
//! let (mut writer, searcher) = service(SearchEngine::new(EngineConfig::default()).unwrap());
//! writer.commit("board meeting minutes", Timestamp(100)).unwrap();
//!
//! let handle = searcher.clone(); // Send + Sync: share freely across threads
//! let resp = handle.execute(Query::disjunctive("board minutes", 10)).unwrap();
//! assert_eq!(resp.hits.len(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Facade crate: re-exports only; outside the production no-panic surface
// gated by clippy + `cargo xtask audit`.
#![allow(clippy::unwrap_used, clippy::expect_used)]

pub use tks_btree as btree;
pub use tks_core as core;
pub use tks_corpus as corpus;
pub use tks_ght as ght;
pub use tks_jump as jump;
pub use tks_postings as postings;
pub use tks_replica as replica;
pub use tks_shard as shard;
pub use tks_worm as worm;

/// The most commonly used types, re-exported for `use
/// trustworthy_search::prelude::*`.
pub mod prelude {
    pub use tks_core::engine::{
        AuditReport, ConfigError, EngineConfig, RecoveryReport, SearchEngine, SearchHit,
    };
    pub use tks_core::epoch::{EpochConfig, EpochManager};
    pub use tks_core::merge::MergeAssignment;
    pub use tks_core::query::{Query, QueryResponse, TermSelector, TimeRange};
    pub use tks_core::ranking::RankingModel;
    pub use tks_core::service::{service, IndexWriter, Searcher};
    pub use tks_jump::JumpConfig;
    pub use tks_postings::{DocId, ListId, TermId, Timestamp};
    pub use tks_shard::{ShardRouter, ShardedArchive, ShardedSearcher, ShardedWriter};
    pub use tks_worm::{AtomicIoStats, FaultPolicy, IoStats, WormDevice, WormFs};
}
