//! # `tks-ght` — Generalized Hash Tree baseline (fossilized exact-match index)
//!
//! The paper's predecessor work (Zhu & Hsu, "Fossilized Index: The Linchpin
//! of Trustworthy Non-Alterable Electronic Records", SIGMOD 2005 — the
//! paper's reference \[29\]) introduced the **Generalized Hash Tree (GHT)**:
//! a hash-based fossilized index supporting exact-match lookups whose
//! lookup paths, like the jump index's, never depend on later insertions.
//!
//! The VLDB 2006 paper discusses GHTs twice:
//!
//! * §1/§2.3 — GHTs support "exact-match lookups of records based on
//!   attribute values" and so fit structured data, not keyword search;
//! * §4 — "An alternative strategy for supporting fast joins of posting
//!   lists is to build a GHT for each posting list.  For every entry in
//!   the smaller posting list, we consult the GHT to find matching entries
//!   in the longer posting list.  However, GHTs only support exact-match
//!   lookups and have poor locality due to the use of hashing.  A
//!   GHT-based join would be much slower than a zigzag join on sorted
//!   posting lists, especially for roughly equal sized lists."
//!
//! This crate implements a GHT faithful to that role: a tree of hash
//! buckets where a full bucket at level `d` *spills* to one of its
//! children chosen by a level-specific hash of the key.  Insertion only
//! ever appends to a bucket or allocates a child (WORM-legal), and the
//! probe path of a key is a pure function of the key and the static tree
//! shape — later insertions can relocate nothing, so committed entries
//! cannot be hidden.  The GHT-based posting-list join is provided for the
//! paper's comparison, instrumented with block-read counting so harnesses
//! can show it loses to the zigzag join.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Reference/teaching structure, outside the production no-panic surface
// gated by clippy + `cargo xtask audit`.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Identifier of a GHT bucket (one bucket per disk block).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BucketId(pub u32);

/// Geometry of a [`GeneralizedHashTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GhtConfig {
    /// Keys per bucket before spilling to children (block capacity).
    pub bucket_capacity: usize,
    /// Children per bucket (fan-out of the hash tree).
    pub fanout: usize,
}

impl GhtConfig {
    /// Geometry for a given block size (8-byte keys) and fan-out.
    pub fn for_block_size(block_size: usize, fanout: usize) -> Self {
        assert!(fanout >= 2);
        Self {
            bucket_capacity: (block_size / 8).max(1),
            fanout,
        }
    }

    /// Tiny buckets for tests and examples.
    pub fn tiny(bucket_capacity: usize, fanout: usize) -> Self {
        assert!(bucket_capacity >= 1 && fanout >= 2);
        Self {
            bucket_capacity,
            fanout,
        }
    }
}

#[derive(Debug, Clone)]
struct Bucket {
    keys: Vec<u64>,
    /// Lazily allocated children, `u32::MAX` = absent.
    children: Vec<u32>,
}

const ABSENT: u32 = u32::MAX;

/// A fossilized hash tree supporting exact-match lookups.
///
/// # Example
///
/// ```
/// use tks_ght::{GeneralizedHashTree, GhtConfig};
///
/// let mut ght = GeneralizedHashTree::new(GhtConfig::tiny(2, 4));
/// for k in [3u64, 9, 31, 100, 7] {
///     ght.insert(k);
/// }
/// assert!(ght.contains(31, &mut |_| {}));
/// assert!(!ght.contains(32, &mut |_| {}));
/// ```
#[derive(Debug, Clone)]
pub struct GeneralizedHashTree {
    cfg: GhtConfig,
    buckets: Vec<Bucket>,
    len: u64,
}

impl GeneralizedHashTree {
    /// Create an empty tree.
    pub fn new(cfg: GhtConfig) -> Self {
        Self {
            cfg,
            buckets: vec![Bucket {
                keys: Vec::new(),
                children: vec![ABSENT; cfg.fanout],
            }],
            len: 0,
        }
    }

    /// Number of inserted keys.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of buckets (≈ disk blocks).
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }

    /// Level-dependent child selection: which child of a level-`depth`
    /// bucket key `k` hashes to.  Depending on depth makes sibling
    /// subtrees re-shuffle keys, the "generalized" part of the GHT.
    fn child_slot(&self, k: u64, depth: u32) -> usize {
        let mut h = DefaultHasher::new();
        (k, depth).hash(&mut h);
        (h.finish() % self.cfg.fanout as u64) as usize
    }

    /// Insert `k`.  Only appends to buckets and allocates child buckets —
    /// both WORM-legal.  Duplicates are stored again (posting lists never
    /// insert duplicates; tolerating them keeps the structure total).
    pub fn insert(&mut self, k: u64) {
        let mut b = 0u32;
        let mut depth = 0u32;
        loop {
            if self.buckets[b as usize].keys.len() < self.cfg.bucket_capacity {
                self.buckets[b as usize].keys.push(k);
                self.len += 1;
                return;
            }
            let slot = self.child_slot(k, depth);
            let child = self.buckets[b as usize].children[slot];
            let next = if child == ABSENT {
                let id = self.buckets.len() as u32;
                self.buckets.push(Bucket {
                    keys: Vec::new(),
                    children: vec![ABSENT; self.cfg.fanout],
                });
                self.buckets[b as usize].children[slot] = id;
                id
            } else {
                child
            };
            b = next;
            depth += 1;
        }
    }

    /// Exact-match lookup; `on_visit` receives every bucket (block) read.
    /// The probe path depends only on `k` and bucket fill at insert time,
    /// never on later keys — the fossilized property.
    pub fn contains(&self, k: u64, on_visit: &mut dyn FnMut(BucketId)) -> bool {
        let mut b = 0u32;
        let mut depth = 0u32;
        loop {
            on_visit(BucketId(b));
            let bucket = &self.buckets[b as usize];
            if bucket.keys.contains(&k) {
                return true;
            }
            // A non-full bucket would have accepted k here, so absence in
            // a non-full bucket proves absence in the subtree.
            if bucket.keys.len() < self.cfg.bucket_capacity {
                return false;
            }
            let slot = self.child_slot(k, depth);
            match bucket.children[slot] {
                ABSENT => return false,
                child => b = child,
            }
            depth += 1;
        }
    }

    /// Depth of the probe path for `k` (diagnostics; shows the poor
    /// locality the paper attributes to hashing).
    pub fn probe_depth(&self, k: u64) -> usize {
        let mut n = 0;
        self.contains(k, &mut |_| n += 1);
        n
    }
}

/// GHT-based posting-list intersection (the strategy the paper dismisses
/// in §4): build nothing, probe the `longer` list's GHT once per entry of
/// `shorter`.  Returns the matches and the number of bucket reads, so
/// harnesses can compare against the zigzag join's block reads.
pub fn ght_join(shorter: &[u64], longer_ght: &GeneralizedHashTree) -> (Vec<u64>, u64) {
    let mut reads = 0u64;
    let mut out = Vec::new();
    for &k in shorter {
        if longer_ght.contains(k, &mut |_| reads += 1) {
            out.push(k);
        }
    }
    (out, reads)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_contains() {
        let mut g = GeneralizedHashTree::new(GhtConfig::tiny(2, 3));
        let keys: Vec<u64> = (0..500).map(|i| i * 13 + 1).collect();
        for &k in &keys {
            g.insert(k);
        }
        for &k in &keys {
            assert!(g.contains(k, &mut |_| {}), "lost {k}");
        }
        for miss in [0u64, 2, 6500, 9999] {
            assert!(!g.contains(miss, &mut |_| {}), "phantom {miss}");
        }
        assert_eq!(g.len(), 500);
    }

    #[test]
    fn fossilized_probe_path_is_stable_under_later_inserts() {
        let mut g = GeneralizedHashTree::new(GhtConfig::tiny(2, 3));
        for k in 0..100u64 {
            g.insert(k);
        }
        let mut path_before = Vec::new();
        assert!(g.contains(42, &mut |b| path_before.push(b)));
        for k in 100..2000u64 {
            g.insert(k);
        }
        let mut path_after = Vec::new();
        assert!(g.contains(42, &mut |b| path_after.push(b)));
        assert_eq!(path_before, path_after, "probe paths must be immutable");
    }

    #[test]
    fn join_finds_exact_intersection() {
        let long: Vec<u64> = (0..1000).map(|i| i * 2).collect(); // evens
        let short: Vec<u64> = (0..100).map(|i| i * 30 + 4).collect();
        let mut g = GeneralizedHashTree::new(GhtConfig::tiny(8, 4));
        for &k in &long {
            g.insert(k);
        }
        let (matches, reads) = ght_join(&short, &g);
        let expect: Vec<u64> = short
            .iter()
            .copied()
            .filter(|k| long.binary_search(k).is_ok())
            .collect();
        assert_eq!(matches, expect);
        assert!(
            reads >= short.len() as u64,
            "every probe reads at least one bucket"
        );
    }

    #[test]
    fn depth_grows_slowly() {
        let mut g = GeneralizedHashTree::new(GhtConfig::for_block_size(512, 8));
        for k in 0..50_000u64 {
            g.insert(k);
        }
        // 64 keys per bucket, fanout 8: depth stays shallow.
        assert!(g.probe_depth(49_999) <= 8);
    }

    #[test]
    fn empty_tree_contains_nothing() {
        let g = GeneralizedHashTree::new(GhtConfig::tiny(2, 2));
        assert!(!g.contains(1, &mut |_| {}));
        assert!(g.is_empty());
        assert_eq!(g.num_buckets(), 1);
    }
}
