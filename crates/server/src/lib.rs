//! # `tks-server` — the archive's network front end
//!
//! The paper's compliance archive only matters to an organization if
//! investigators and ingest pipelines can reach it across a process
//! boundary.  This crate puts the sharded engine
//! ([`ShardedSearcher`](tks_shard::ShardedSearcher)) behind a TCP
//! server with an explicitly versioned wire contract and the failure
//! semantics a shared service needs:
//!
//! * [`wire`] — a dependency-free length-prefixed frame protocol
//!   (4-byte length, 1-byte protocol version, JSON payload) carrying a
//!   **versioned envelope**: [`WireRequest`](wire::WireRequest) /
//!   [`WireResponse`](wire::WireResponse) with a typed
//!   [`WireError`](wire::WireError) taxonomy.  Wire types are distinct
//!   from the engine's internal `Query`/`QueryResponse`, so the network
//!   contract can evolve without freezing engine internals; derived
//!   deserialization ignores unknown fields, so old servers tolerate
//!   newer clients (and vice versa);
//! * [`server`] — a thread-pool connection handler with **per-query
//!   deadlines** (a late shard turns into a typed
//!   [`DeadlineExceeded`](wire::WireErrorCode::DeadlineExceeded)
//!   response, never a hung connection), a **bounded in-flight queue**
//!   that sheds load with an explicit
//!   [`Overloaded`](wire::WireErrorCode::Overloaded) error instead of
//!   stalling every caller, and **graceful shutdown** that drains
//!   in-flight queries before the process exits;
//! * every connection holds a
//!   [`QuerySession`](tks_shard::QuerySession), so repeated queries on
//!   one connection are repeatable reads against a pinned per-shard
//!   watermark vector (an explicit `Refresh` advances it).
//!
//! Malformed input — truncated frames, oversized length prefixes,
//! garbage JSON, mid-frame disconnects — is rejected with typed errors
//! and can never panic the server; `cargo xtask audit` enforces the
//! no-panic discipline on this crate and `wire-versioning` keeps all
//! serialization inside the envelope module.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod error;
pub mod server;
pub mod wire;

pub use error::ServerError;
pub use server::{ArchiveServer, ServerConfig, ServerHandle};
