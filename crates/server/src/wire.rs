//! The versioned wire envelope and frame codec.
//!
//! Everything that crosses the TCP boundary lives in this module — the
//! `wire-versioning` audit rule denies (de)serialization anywhere else
//! in the server and client crates, so the network contract has exactly
//! one home.  The engine's internal `Query`/`QueryResponse` types are
//! **not** wire types: the envelope mirrors them with distinct
//! `Wire`-prefixed structs so the protocol can stay stable (or evolve
//! deliberately, behind [`PROTOCOL_VERSION`]) while engine internals
//! keep moving.
//!
//! ## Frame format (protocol version 1)
//!
//! ```text
//! +----------------+---------+---------------------------+
//! | length: u32 LE | version | JSON payload              |
//! | (of the rest)  | 1 byte  | (length - 1 bytes, UTF-8) |
//! +----------------+---------+---------------------------+
//! ```
//!
//! * the length prefix is validated against the receiver's
//!   `max_frame_bytes` **before any allocation**, so a hostile peer
//!   cannot make the server reserve gigabytes with five bytes of input;
//! * the version byte travels outside the JSON so an incompatible peer
//!   is detected without parsing its payload;
//! * the payload is one JSON-encoded [`WireRequest`] or
//!   [`WireResponse`].  Deserialization ignores unknown map keys, so a
//!   v1 peer tolerates fields added by later minor revisions
//!   (forward compatibility); unknown enum variants fail with a typed
//!   [`FrameError::Malformed`] and never kill the process.
//!
//! Errors travel as data: a [`WireError`] with a machine-checkable
//! [`WireErrorCode`] (`Overloaded`, `DeadlineExceeded`, `Degraded`, …)
//! mapped from the engine's typed error taxonomy.

use std::io::{Read, Write};
use std::time::Duration;

use tks_core::{Query, TermSelector, TimeRange};
use tks_postings::{TermId, Timestamp};
use tks_shard::{ShardError, ShardStatus, ShardedResponse};
use tks_worm::{ChainHead, Sha256};

/// The wire protocol version this build speaks.
pub const PROTOCOL_VERSION: u8 = 1;

/// Default ceiling on a single frame's payload (version byte + JSON).
pub const DEFAULT_MAX_FRAME_BYTES: usize = 1 << 20;

// ---------------------------------------------------------------------------
// Envelope types
// ---------------------------------------------------------------------------

/// How a wire query names its terms (mirror of the engine's
/// `TermSelector`).
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum WireTerms {
    /// Free text, tokenised server-side.
    Text(String),
    /// Pre-resolved term ids (harness / synthetic-corpus path).
    Ids(Vec<u32>),
}

/// One query shape, as it travels on the wire (mirror of the engine's
/// `Query`).  Commit-time bounds are plain `u64` seconds.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum WireQuery {
    /// Ranked OR-query returning the best `top_k` documents.
    Disjunctive {
        /// The query terms.
        terms: WireTerms,
        /// Result-list cutoff.
        top_k: u64,
    },
    /// AND-query, optionally restricted to a commit-time range.  Both
    /// bounds absent means no restriction; a single absent bound is
    /// open-ended on that side.
    Conjunctive {
        /// The query terms.
        terms: WireTerms,
        /// Earliest commit timestamp included.
        from: Option<u64>,
        /// Latest commit timestamp included.
        to: Option<u64>,
    },
    /// Exact phrase query.
    Phrase {
        /// The phrase, as raw text.
        text: String,
    },
    /// All documents committed inside `[from, to]`.
    TimeRange {
        /// Earliest commit timestamp included.
        from: u64,
        /// Latest commit timestamp included.
        to: u64,
    },
}

impl WireTerms {
    fn to_selector(&self) -> TermSelector {
        match self {
            WireTerms::Text(s) => TermSelector::Text(s.clone()),
            WireTerms::Ids(ids) => TermSelector::Ids(ids.iter().map(|&i| TermId(i)).collect()),
        }
    }
}

impl WireQuery {
    /// Lower the wire shape onto the engine's internal query model.
    pub fn to_query(&self) -> Query {
        match self {
            WireQuery::Disjunctive { terms, top_k } => Query::Disjunctive {
                terms: terms.to_selector(),
                top_k: usize::try_from(*top_k).unwrap_or(usize::MAX),
            },
            WireQuery::Conjunctive { terms, from, to } => Query::Conjunctive {
                terms: terms.to_selector(),
                range: match (from, to) {
                    (None, None) => None,
                    (f, t) => Some(TimeRange::new(
                        Timestamp(f.unwrap_or(0)),
                        Timestamp(t.unwrap_or(u64::MAX)),
                    )),
                },
            },
            WireQuery::Phrase { text } => Query::Phrase { text: text.clone() },
            WireQuery::TimeRange { from, to } => {
                Query::TimeRange(TimeRange::new(Timestamp(*from), Timestamp(*to)))
            }
        }
    }
}

/// A client-to-server message.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum WireRequest {
    /// Liveness probe; answered with [`WireResponse::Pong`].
    Ping,
    /// Archive status: shard count, watermarks, degraded shards.
    Status,
    /// Execute one query against the connection's pinned session.
    Query {
        /// The query to execute.
        query: WireQuery,
        /// Per-query deadline in milliseconds; the server's default
        /// applies when absent.
        deadline_ms: Option<u64>,
    },
    /// Re-pin the connection's session at the current commit frontier.
    Refresh,
}

/// A server-to-client message.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum WireResponse {
    /// Answer to [`WireRequest::Ping`].
    Pong,
    /// Answer to [`WireRequest::Status`].
    Status(WireStatus),
    /// Successful query execution.
    Query(WireQueryResponse),
    /// Answer to [`WireRequest::Refresh`]: the new watermark vector.
    Refreshed {
        /// Per-shard watermarks the session is now pinned at.
        watermarks: Vec<u64>,
    },
    /// Any failure, as a typed error value.
    Error(WireError),
}

/// Archive status snapshot.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct WireStatus {
    /// The wire protocol version the server speaks.
    pub protocol_version: u8,
    /// Number of shards (healthy or degraded).
    pub shards: u32,
    /// Documents visible to this connection's pinned session.
    pub visible_docs: u64,
    /// The session's per-shard watermark vector.
    pub watermarks: Vec<u64>,
    /// Shards the server cannot consult, with reasons.
    pub degraded: Vec<WireDegraded>,
}

/// One degraded shard in a [`WireStatus`].
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct WireDegraded {
    /// The degraded shard's id.
    pub shard: u32,
    /// Why recovery refused it.
    pub reason: String,
}

/// One ranked hit.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WireHit {
    /// Global document id (shard id in the high bits).
    pub doc: u64,
    /// Similarity score (higher is better; 0 for boolean queries).
    pub score: f64,
}

/// Per-shard breakdown of one query execution.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct WireShardStatus {
    /// The shard id.
    pub shard: u32,
    /// Whether this execution consulted the shard.
    pub consulted: bool,
    /// The shard's snapshot watermark (0 if not consulted).
    pub visible_docs: u64,
    /// The shard's own trust verdict (false if not consulted).
    pub trusted: bool,
    /// Torn-commit residue quarantined on this shard, in bytes.
    pub quarantined_bytes: u64,
    /// The shard's commit-chain head at its snapshot watermark, as
    /// lowercase hex (64 chars; empty from servers predating the
    /// field).  Compare against a head held out-of-band to verify this
    /// shard's slice of the response came from an untampered prefix.
    #[serde(default)]
    pub chain_head: String,
    /// Why the shard was not consulted, when degraded.
    pub degraded: Option<String>,
}

impl WireShardStatus {
    /// Parse the shard's chain head out of its hex encoding.
    pub fn parsed_chain_head(&self) -> Result<ChainHead, WireError> {
        ChainHead::from_hex(&self.chain_head).map_err(|e| {
            WireError::new(
                WireErrorCode::DigestMismatch,
                format!("shard {} chain head unparseable: {e}", self.shard),
            )
            .with_shard(self.shard)
        })
    }
}

/// A merged query response, as it travels on the wire (mirror of the
/// engine's `ShardedResponse`, with I/O counters flattened).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WireQueryResponse {
    /// Matching documents under global ids.
    pub hits: Vec<WireHit>,
    /// Total distinct index blocks read across shards.
    pub blocks_read: u64,
    /// Total index blocks skipped by block-max early termination across
    /// shards (never read, so not in `blocks_read`).  `#[serde(default)]`
    /// keeps responses from servers predating the field decodable.
    #[serde(default)]
    pub blocks_skipped: u64,
    /// Random read I/Os attributable to this query.
    pub read_ios: u64,
    /// Cache hits attributable to this query.
    pub cache_hits: u64,
    /// Cache misses attributable to this query.
    pub cache_misses: u64,
    /// Summed snapshot watermarks of the consulted shards.
    pub visible_docs: u64,
    /// AND of the consulted shards' trust verdicts.
    pub trusted: bool,
    /// Total quarantined torn-commit residue across consulted shards.
    pub quarantined_bytes: u64,
    /// Per-shard breakdown, indexed by shard id.
    pub shards: Vec<WireShardStatus>,
    /// SHA-256 digest (lowercase hex) binding the snapshot this
    /// response was computed over: the summed watermark plus every
    /// shard's `(id, consulted, visible_docs, chain_head)` tuple.
    /// Clients recompute it with
    /// [`verify_digest`](WireQueryResponse::verify_digest); comparing
    /// the bound shard heads against heads held out-of-band then proves
    /// the response came from the untampered archive prefix.  Empty
    /// from servers predating the field.
    #[serde(default)]
    pub response_digest: String,
}

/// Domain-separation tag for the response digest.
const RESPONSE_DIGEST_TAG: &[u8] = b"tks-response-digest-v1";

/// The digest a [`WireQueryResponse`] with these trust fields carries.
fn response_digest(visible_docs: u64, shards: &[WireShardStatus]) -> String {
    let mut h = Sha256::new();
    h.update(RESPONSE_DIGEST_TAG);
    h.update(&visible_docs.to_le_bytes());
    for s in shards {
        h.update(&s.shard.to_le_bytes());
        h.update(&[s.consulted as u8]);
        h.update(&s.visible_docs.to_le_bytes());
        h.update(&(s.chain_head.len() as u64).to_le_bytes());
        h.update(s.chain_head.as_bytes());
    }
    ChainHead(h.finalize()).to_hex()
}

impl WireQueryResponse {
    /// Recompute the digest over this response's trust fields.
    pub fn compute_digest(&self) -> String {
        response_digest(self.visible_docs, &self.shards)
    }

    /// Verify the carried digest binds this response's watermark and
    /// per-shard chain heads.  A mismatch means the trust fields were
    /// altered in flight (or the digest was forged for different ones).
    pub fn verify_digest(&self) -> Result<(), WireError> {
        let expected = self.compute_digest();
        if self.response_digest != expected {
            return Err(WireError::new(
                WireErrorCode::DigestMismatch,
                format!(
                    "response digest {} does not match recomputed {expected}",
                    if self.response_digest.is_empty() {
                        "(absent)"
                    } else {
                        &self.response_digest
                    }
                ),
            ));
        }
        Ok(())
    }

    /// Verify the digest *and* compare one shard's bound chain head
    /// against a head obtained out-of-band (printed at archival time,
    /// escrowed with the investigator, …).  Success proves the shard's
    /// slice of this response was computed over the prefix that head
    /// commits to.
    pub fn verify_shard_head(&self, shard: u32, expected: &ChainHead) -> Result<(), WireError> {
        self.verify_digest()?;
        let status = self
            .shards
            .iter()
            .find(|s| s.shard == shard)
            .ok_or_else(|| {
                WireError::new(
                    WireErrorCode::DigestMismatch,
                    format!("response names no shard {shard}"),
                )
                .with_shard(shard)
            })?;
        let head = status.parsed_chain_head()?;
        if head != *expected {
            return Err(WireError::new(
                WireErrorCode::DigestMismatch,
                format!("shard {shard} chain head {head} does not match expected {expected}"),
            )
            .with_shard(shard));
        }
        Ok(())
    }
}

impl From<&ShardedResponse> for WireQueryResponse {
    fn from(r: &ShardedResponse) -> WireQueryResponse {
        let shards: Vec<WireShardStatus> = r.shards.iter().map(WireShardStatus::from).collect();
        let response_digest = response_digest(r.visible_docs, &shards);
        WireQueryResponse {
            hits: r
                .hits
                .iter()
                .map(|h| WireHit {
                    doc: h.doc.0,
                    score: h.score,
                })
                .collect(),
            blocks_read: r.blocks_read,
            blocks_skipped: r.blocks_skipped,
            read_ios: r.io.read_ios,
            cache_hits: r.io.hits,
            cache_misses: r.io.misses,
            visible_docs: r.visible_docs,
            trusted: r.trusted,
            quarantined_bytes: r.quarantined_bytes,
            shards,
            response_digest,
        }
    }
}

impl From<&ShardStatus> for WireShardStatus {
    fn from(s: &ShardStatus) -> WireShardStatus {
        WireShardStatus {
            shard: s.shard,
            consulted: s.consulted,
            visible_docs: s.visible_docs,
            trusted: s.trusted,
            quarantined_bytes: s.quarantined_bytes,
            chain_head: s.chain_head.to_hex(),
            degraded: s.degraded.clone(),
        }
    }
}

// ---------------------------------------------------------------------------
// The typed wire error taxonomy
// ---------------------------------------------------------------------------

/// Machine-checkable failure classes.  Clients branch on the code, not
/// the message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum WireErrorCode {
    /// The bounded in-flight queue is full; retry with backoff.
    Overloaded,
    /// The query did not complete inside its deadline.
    DeadlineExceeded,
    /// A required shard is degraded.
    Degraded,
    /// Every shard of the archive is degraded.
    NoHealthyShards,
    /// A per-shard engine operation failed.
    Engine,
    /// The request payload was not a valid envelope.
    Malformed,
    /// The frame's length prefix exceeded the receiver's limit.
    FrameTooLarge,
    /// The frame's protocol version byte is not supported.
    UnsupportedVersion,
    /// The server is draining and accepts no new queries.
    ShuttingDown,
    /// A response's trust digest or chain head failed client-side
    /// verification (raised locally by the verifying client, never sent
    /// by a server).
    DigestMismatch,
    /// An internal invariant failed (a bug, not bad input).
    Internal,
}

/// A typed error value, transportable on the wire.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct WireError {
    /// The failure class.
    pub code: WireErrorCode,
    /// Human-readable detail.
    pub message: String,
    /// The shard at fault, when the failure is shard-scoped.
    pub shard: Option<u32>,
}

impl WireError {
    /// A new error with no shard attribution.
    pub fn new(code: WireErrorCode, message: impl Into<String>) -> WireError {
        WireError {
            code,
            message: message.into(),
            shard: None,
        }
    }

    /// Attribute the error to one shard.
    pub fn with_shard(mut self, shard: u32) -> WireError {
        self.shard = Some(shard);
        self
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}: {}", self.code, self.message)?;
        if let Some(shard) = self.shard {
            write!(f, " (shard {shard})")?;
        }
        Ok(())
    }
}

impl std::error::Error for WireError {}

impl From<&ShardError> for WireError {
    fn from(e: &ShardError) -> WireError {
        match e {
            ShardError::Degraded { shard, .. } => {
                WireError::new(WireErrorCode::Degraded, e.to_string()).with_shard(*shard)
            }
            ShardError::Engine { shard, .. } => {
                WireError::new(WireErrorCode::Engine, e.to_string()).with_shard(*shard)
            }
            ShardError::NoHealthyShards => {
                WireError::new(WireErrorCode::NoHealthyShards, e.to_string())
            }
            ShardError::Config(_) | ShardError::UnknownShard { .. } | ShardError::Internal(_) => {
                WireError::new(WireErrorCode::Internal, e.to_string())
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Frame codec
// ---------------------------------------------------------------------------

/// Transport-level failures of the frame codec.
///
/// The first three variants describe *where* the stream ended so the
/// server can tell a clean goodbye ([`Closed`](Self::Closed)) from an
/// idle poll tick ([`IdleTimeout`](Self::IdleTimeout)) from a peer that
/// vanished mid-frame ([`Truncated`](Self::Truncated)).
#[derive(Debug)]
pub enum FrameError {
    /// Clean EOF at a frame boundary: the peer closed the connection.
    Closed,
    /// The read timed out before any byte of a new frame arrived (only
    /// on sockets with a read timeout; used as a shutdown poll tick).
    IdleTimeout,
    /// The peer disconnected or stalled in the middle of a frame.
    Truncated,
    /// The length prefix exceeds the receiver's frame limit.  Raised
    /// **before** any allocation: the declared length never reserves
    /// memory.
    TooLarge {
        /// The declared payload length.
        len: u64,
        /// The receiver's limit.
        max: usize,
    },
    /// The frame carried an unsupported protocol version byte.  The
    /// frame was consumed, so the stream remains usable.
    UnsupportedVersion(u8),
    /// The payload was not a valid envelope (bad UTF-8, bad JSON, or an
    /// unknown shape).  The frame was consumed, so the stream remains
    /// usable.
    Malformed(String),
    /// Any other I/O failure.
    Io(std::io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed at a frame boundary"),
            FrameError::IdleTimeout => write!(f, "read timed out waiting for a frame"),
            FrameError::Truncated => write!(f, "connection ended mid-frame"),
            FrameError::TooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
            FrameError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported protocol version {v} (this build speaks {PROTOCOL_VERSION})"
                )
            }
            FrameError::Malformed(msg) => write!(f, "malformed frame payload: {msg}"),
            FrameError::Io(e) => write!(f, "frame I/O: {e}"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

fn is_timeout(kind: std::io::ErrorKind) -> bool {
    matches!(
        kind,
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Read one frame's payload (version byte stripped, length validated
/// against `max` before allocating).
fn read_payload(r: &mut impl Read, max: usize) -> Result<Vec<u8>, FrameError> {
    // The first header byte is read separately so a clean EOF or an
    // idle-poll timeout at a frame boundary is distinguishable from a
    // peer that vanished mid-frame.
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Err(FrameError::Closed),
            Ok(_) => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) if is_timeout(e.kind()) => return Err(FrameError::IdleTimeout),
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let mut rest = [0u8; 3];
    read_exact_mid_frame(r, &mut rest)?;
    let [f0] = first;
    let [r0, r1, r2] = rest;
    let len = u32::from_le_bytes([f0, r0, r1, r2]) as u64;
    if len > max as u64 {
        // Reject by the declared length alone; never allocate for it.
        return Err(FrameError::TooLarge { len, max });
    }
    if len < 2 {
        return Err(FrameError::Malformed(format!(
            "frame too short ({len} bytes; need version byte + payload)"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    read_exact_mid_frame(r, &mut payload)?;
    Ok(payload)
}

/// `read_exact` with mid-frame error classification: EOF and timeouts
/// both mean the peer abandoned a frame in progress.
fn read_exact_mid_frame(r: &mut impl Read, buf: &mut [u8]) -> Result<(), FrameError> {
    match r.read_exact(buf) {
        Ok(()) => Ok(()),
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof || is_timeout(e.kind()) => {
            Err(FrameError::Truncated)
        }
        Err(e) => Err(FrameError::Io(e)),
    }
}

fn decode_payload<T: serde::Deserialize>(payload: &[u8]) -> Result<T, FrameError> {
    let Some((&version, json)) = payload.split_first() else {
        return Err(FrameError::Malformed("empty frame payload".to_string()));
    };
    if version != PROTOCOL_VERSION {
        return Err(FrameError::UnsupportedVersion(version));
    }
    let text = std::str::from_utf8(json)
        .map_err(|e| FrameError::Malformed(format!("payload is not UTF-8: {e}")))?;
    serde_json::from_str(text).map_err(|e| FrameError::Malformed(e.to_string()))
}

fn encode_frame<T: serde::Serialize>(msg: &T) -> Result<Vec<u8>, FrameError> {
    let json = serde_json::to_string(msg).map_err(|e| FrameError::Malformed(e.to_string()))?;
    let len = json
        .len()
        .checked_add(1)
        .filter(|l| *l <= u32::MAX as usize)
        .ok_or(FrameError::TooLarge {
            len: json.len() as u64,
            max: u32::MAX as usize,
        })?;
    let mut frame = Vec::with_capacity(4 + len);
    frame.extend_from_slice(&(len as u32).to_le_bytes());
    frame.push(PROTOCOL_VERSION);
    frame.extend_from_slice(json.as_bytes());
    Ok(frame)
}

fn write_frame<T: serde::Serialize>(w: &mut impl Write, msg: &T) -> Result<(), FrameError> {
    let frame = encode_frame(msg)?;
    w.write_all(&frame).map_err(FrameError::Io)?;
    w.flush().map_err(FrameError::Io)
}

/// Write one [`WireRequest`] as a v1 frame.
pub fn write_request(w: &mut impl Write, req: &WireRequest) -> Result<(), FrameError> {
    write_frame(w, req)
}

/// Write one [`WireResponse`] as a v1 frame.
pub fn write_response(w: &mut impl Write, resp: &WireResponse) -> Result<(), FrameError> {
    write_frame(w, resp)
}

/// Read one [`WireRequest`] frame, enforcing `max_frame_bytes`.
pub fn read_request(r: &mut impl Read, max_frame_bytes: usize) -> Result<WireRequest, FrameError> {
    decode_payload(&read_payload(r, max_frame_bytes)?)
}

/// Read one [`WireResponse`] frame, enforcing `max_frame_bytes`.
pub fn read_response(
    r: &mut impl Read,
    max_frame_bytes: usize,
) -> Result<WireResponse, FrameError> {
    decode_payload(&read_payload(r, max_frame_bytes)?)
}

/// The suggested poll interval for servers multiplexing reads with a
/// shutdown flag (exposed so tests and the CLI agree with the server).
pub const IDLE_POLL: Duration = Duration::from_millis(100);

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn frame_of(req: &WireRequest) -> Vec<u8> {
        let mut out = Vec::new();
        write_request(&mut out, req).expect("encode");
        out
    }

    /// The canonical v1 query request, byte for byte.  If this test
    /// breaks, the wire protocol changed: bump [`PROTOCOL_VERSION`] and
    /// document the migration — do not update the pinned bytes casually.
    #[test]
    fn v1_query_request_bytes_are_pinned() {
        let req = WireRequest::Query {
            query: WireQuery::Disjunctive {
                terms: WireTerms::Text("alpha beta".to_string()),
                top_k: 10,
            },
            deadline_ms: Some(250),
        };
        let json = r#"{"Query":{"query":{"Disjunctive":{"terms":{"Text":"alpha beta"},"top_k":10}},"deadline_ms":250}}"#;
        let mut expect = Vec::new();
        expect.extend_from_slice(&(1 + json.len() as u32).to_le_bytes());
        expect.push(1u8); // PROTOCOL_VERSION
        expect.extend_from_slice(json.as_bytes());
        assert_eq!(frame_of(&req), expect, "v1 frame bytes moved");

        // And the same bytes decode back to the same request.
        let mut cur = Cursor::new(expect);
        let back = read_request(&mut cur, DEFAULT_MAX_FRAME_BYTES).expect("decode");
        assert_eq!(back, req);
    }

    #[test]
    fn v1_error_response_bytes_are_pinned() {
        let resp = WireResponse::Error(
            WireError::new(WireErrorCode::DeadlineExceeded, "too slow").with_shard(3),
        );
        let json = r#"{"Error":{"code":"DeadlineExceeded","message":"too slow","shard":3}}"#;
        let mut expect = Vec::new();
        expect.extend_from_slice(&(1 + json.len() as u32).to_le_bytes());
        expect.push(1u8);
        expect.extend_from_slice(json.as_bytes());
        let mut got = Vec::new();
        write_response(&mut got, &resp).expect("encode");
        assert_eq!(got, expect, "v1 frame bytes moved");
        let mut cur = Cursor::new(expect);
        let back = read_response(&mut cur, DEFAULT_MAX_FRAME_BYTES).expect("decode");
        assert_eq!(back, resp);
    }

    #[test]
    fn every_request_shape_round_trips() {
        let reqs = vec![
            WireRequest::Ping,
            WireRequest::Status,
            WireRequest::Refresh,
            WireRequest::Query {
                query: WireQuery::Conjunctive {
                    terms: WireTerms::Ids(vec![1, 7]),
                    from: Some(100),
                    to: None,
                },
                deadline_ms: None,
            },
            WireRequest::Query {
                query: WireQuery::Phrase {
                    text: "exact words".to_string(),
                },
                deadline_ms: Some(5),
            },
            WireRequest::Query {
                query: WireQuery::TimeRange { from: 3, to: 9 },
                deadline_ms: None,
            },
        ];
        for req in reqs {
            let bytes = frame_of(&req);
            let mut cur = Cursor::new(bytes);
            let back = read_request(&mut cur, DEFAULT_MAX_FRAME_BYTES).expect("decode");
            assert_eq!(back, req);
        }
    }

    #[test]
    fn every_response_shape_round_trips() {
        let resps = vec![
            WireResponse::Pong,
            WireResponse::Refreshed {
                watermarks: vec![4, 0, 9],
            },
            WireResponse::Status(WireStatus {
                protocol_version: PROTOCOL_VERSION,
                shards: 3,
                visible_docs: 13,
                watermarks: vec![4, 0, 9],
                degraded: vec![WireDegraded {
                    shard: 1,
                    reason: "torn tail".to_string(),
                }],
            }),
            WireResponse::Query(WireQueryResponse {
                hits: vec![WireHit {
                    doc: (1u64 << 48) | 5,
                    score: 0.5,
                }],
                blocks_read: 7,
                blocks_skipped: 3,
                read_ios: 2,
                cache_hits: 5,
                cache_misses: 2,
                visible_docs: 13,
                trusted: true,
                quarantined_bytes: 0,
                shards: vec![WireShardStatus {
                    shard: 0,
                    consulted: true,
                    visible_docs: 13,
                    trusted: true,
                    quarantined_bytes: 0,
                    chain_head: ChainHead::genesis().to_hex(),
                    degraded: None,
                }],
                response_digest: "ab".repeat(32),
            }),
            WireResponse::Error(WireError::new(WireErrorCode::Overloaded, "queue full")),
        ];
        for resp in resps {
            let mut bytes = Vec::new();
            write_response(&mut bytes, &resp).expect("encode");
            let mut cur = Cursor::new(bytes);
            let back = read_response(&mut cur, DEFAULT_MAX_FRAME_BYTES).expect("decode");
            assert_eq!(back, resp);
        }
    }

    /// A response whose trust fields are intact verifies; altering any
    /// bound field — watermark, a shard head, a shard's visibility —
    /// breaks the digest.
    #[test]
    fn response_digest_binds_watermark_and_shard_heads() {
        let mut resp = WireQueryResponse {
            hits: vec![],
            blocks_read: 0,
            blocks_skipped: 0,
            read_ios: 0,
            cache_hits: 0,
            cache_misses: 0,
            visible_docs: 13,
            trusted: true,
            quarantined_bytes: 0,
            shards: vec![
                WireShardStatus {
                    shard: 0,
                    consulted: true,
                    visible_docs: 7,
                    trusted: true,
                    quarantined_bytes: 0,
                    chain_head: "11".repeat(32),
                    degraded: None,
                },
                WireShardStatus {
                    shard: 1,
                    consulted: false,
                    visible_docs: 6,
                    trusted: true,
                    quarantined_bytes: 0,
                    chain_head: ChainHead::genesis().to_hex(),
                    degraded: Some("draining".to_string()),
                },
            ],
            response_digest: String::new(),
        };
        resp.response_digest = resp.compute_digest();
        resp.verify_digest().expect("intact response verifies");

        let mut tampered = resp.clone();
        tampered.visible_docs = 14;
        assert!(tampered.verify_digest().is_err(), "watermark is bound");

        let mut tampered = resp.clone();
        tampered.shards[0].chain_head = "22".repeat(32);
        assert!(tampered.verify_digest().is_err(), "shard head is bound");

        let mut tampered = resp.clone();
        tampered.shards[0].visible_docs = 8;
        assert!(
            tampered.verify_digest().is_err(),
            "shard visibility is bound"
        );

        let mut tampered = resp.clone();
        tampered.shards[1].consulted = true;
        assert!(
            tampered.verify_digest().is_err(),
            "consultation flag is bound"
        );

        let mut absent = resp.clone();
        absent.response_digest = String::new();
        let err = absent.verify_digest().expect_err("absent digest rejected");
        assert_eq!(err.code, WireErrorCode::DigestMismatch);
    }

    /// End-to-end head check: a verifier holding a shard's chain head
    /// out-of-band accepts a matching response and rejects a forged one.
    #[test]
    fn out_of_band_head_comparison_accepts_and_rejects() {
        let head = ChainHead::genesis();
        let mut resp = WireQueryResponse {
            hits: vec![],
            blocks_read: 0,
            blocks_skipped: 0,
            read_ios: 0,
            cache_hits: 0,
            cache_misses: 0,
            visible_docs: 3,
            trusted: true,
            quarantined_bytes: 0,
            shards: vec![WireShardStatus {
                shard: 0,
                consulted: true,
                visible_docs: 3,
                trusted: true,
                quarantined_bytes: 0,
                chain_head: head.to_hex(),
                degraded: None,
            }],
            response_digest: String::new(),
        };
        resp.response_digest = resp.compute_digest();

        resp.verify_shard_head(0, &head).expect("matching head");

        let other = ChainHead(tks_worm::sha256(b"someone else's archive"));
        let err = resp
            .verify_shard_head(0, &other)
            .expect_err("foreign head rejected");
        assert_eq!(err.code, WireErrorCode::DigestMismatch);

        let err = resp
            .verify_shard_head(9, &head)
            .expect_err("unknown shard rejected");
        assert_eq!(err.code, WireErrorCode::DigestMismatch);
        assert_eq!(err.shard, Some(9));
    }

    /// Responses from servers predating the digest fields decode with
    /// empty defaults instead of failing the whole frame.
    #[test]
    fn pre_digest_responses_decode_with_empty_trust_fields() {
        let json = r#"{"Query":{"hits":[],"blocks_read":0,"read_ios":0,"cache_hits":0,"cache_misses":0,"visible_docs":2,"trusted":true,"quarantined_bytes":0,"shards":[{"shard":0,"consulted":true,"visible_docs":2,"trusted":true,"quarantined_bytes":0,"degraded":null}]}}"#;
        let mut frame = Vec::new();
        frame.extend_from_slice(&(1 + json.len() as u32).to_le_bytes());
        frame.push(PROTOCOL_VERSION);
        frame.extend_from_slice(json.as_bytes());
        let mut cur = Cursor::new(frame);
        let resp = read_response(&mut cur, DEFAULT_MAX_FRAME_BYTES).expect("decode");
        match resp {
            WireResponse::Query(q) => {
                assert!(q.response_digest.is_empty());
                assert!(q.shards[0].chain_head.is_empty());
                assert!(q.verify_digest().is_err(), "absent digest never verifies");
            }
            other => panic!("expected Query, got {other:?}"),
        }
    }

    /// Unknown map keys must be ignored: a v1 peer tolerates fields
    /// added by later revisions.
    #[test]
    fn unknown_fields_are_tolerated() {
        let json = r#"{"Query":{"query":{"Phrase":{"text":"hi","hl":true}},"deadline_ms":9,"priority":"high"}}"#;
        let mut frame = Vec::new();
        frame.extend_from_slice(&(1 + json.len() as u32).to_le_bytes());
        frame.push(PROTOCOL_VERSION);
        frame.extend_from_slice(json.as_bytes());
        let mut cur = Cursor::new(frame);
        let req = read_request(&mut cur, DEFAULT_MAX_FRAME_BYTES).expect("decode");
        assert_eq!(
            req,
            WireRequest::Query {
                query: WireQuery::Phrase {
                    text: "hi".to_string()
                },
                deadline_ms: Some(9),
            }
        );
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut frame = Vec::new();
        frame.extend_from_slice(&u32::MAX.to_le_bytes());
        frame.extend_from_slice(b"whatever");
        let mut cur = Cursor::new(frame);
        match read_request(&mut cur, 1024) {
            Err(FrameError::TooLarge { len, max }) => {
                assert_eq!(len, u64::from(u32::MAX));
                assert_eq!(max, 1024);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn wrong_version_byte_is_typed_and_consumes_the_frame() {
        let json = r#""Ping""#;
        let mut frame = Vec::new();
        frame.extend_from_slice(&(1 + json.len() as u32).to_le_bytes());
        frame.push(9); // a future protocol version
        frame.extend_from_slice(json.as_bytes());
        // A valid v1 Ping follows in the same stream.
        write_request(&mut frame, &WireRequest::Ping).expect("encode");
        let mut cur = Cursor::new(frame);
        match read_request(&mut cur, DEFAULT_MAX_FRAME_BYTES) {
            Err(FrameError::UnsupportedVersion(9)) => {}
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
        // The stream is still in sync: the next frame parses.
        let next = read_request(&mut cur, DEFAULT_MAX_FRAME_BYTES).expect("decode");
        assert_eq!(next, WireRequest::Ping);
    }

    #[test]
    fn garbage_json_is_malformed_not_fatal() {
        let payload = b"not json at all {";
        let mut frame = Vec::new();
        frame.extend_from_slice(&(1 + payload.len() as u32).to_le_bytes());
        frame.push(PROTOCOL_VERSION);
        frame.extend_from_slice(payload);
        let mut cur = Cursor::new(frame);
        assert!(matches!(
            read_request(&mut cur, DEFAULT_MAX_FRAME_BYTES),
            Err(FrameError::Malformed(_))
        ));
    }

    #[test]
    fn truncated_frame_reports_truncated() {
        let full = frame_of(&WireRequest::Status);
        let cut = full.len() / 2;
        let mut cur = Cursor::new(full.into_iter().take(cut).collect::<Vec<u8>>());
        assert!(matches!(
            read_request(&mut cur, DEFAULT_MAX_FRAME_BYTES),
            Err(FrameError::Truncated)
        ));
    }

    #[test]
    fn eof_at_frame_boundary_is_closed() {
        let mut cur = Cursor::new(Vec::new());
        assert!(matches!(
            read_request(&mut cur, DEFAULT_MAX_FRAME_BYTES),
            Err(FrameError::Closed)
        ));
    }

    #[test]
    fn shard_errors_map_to_typed_codes() {
        let cases: Vec<(ShardError, WireErrorCode, Option<u32>)> = vec![
            (
                ShardError::Degraded {
                    shard: 2,
                    reason: "torn tail".to_string(),
                },
                WireErrorCode::Degraded,
                Some(2),
            ),
            (
                ShardError::NoHealthyShards,
                WireErrorCode::NoHealthyShards,
                None,
            ),
            (
                ShardError::Config("bad".to_string()),
                WireErrorCode::Internal,
                None,
            ),
        ];
        for (src, code, shard) in cases {
            let we = WireError::from(&src);
            assert_eq!(we.code, code);
            assert_eq!(we.shard, shard);
            assert!(!we.message.is_empty());
        }
    }

    #[test]
    fn wire_query_lowers_onto_the_engine_model() {
        let q = WireQuery::Conjunctive {
            terms: WireTerms::Text("alpha".to_string()),
            from: Some(5),
            to: None,
        }
        .to_query();
        match q {
            Query::Conjunctive { range: Some(r), .. } => {
                assert_eq!(r.from, Timestamp(5));
                assert_eq!(r.to, Timestamp(u64::MAX));
            }
            other => panic!("unexpected lowering: {other:?}"),
        }
        let both_open = WireQuery::Conjunctive {
            terms: WireTerms::Text("alpha".to_string()),
            from: None,
            to: None,
        }
        .to_query();
        assert!(matches!(both_open, Query::Conjunctive { range: None, .. }));
    }
}
