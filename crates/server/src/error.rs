//! The server's own error taxonomy (distinct from the wire-transported
//! [`WireError`](crate::wire::WireError): these are failures of the
//! server *process*, not of one request).

/// Failures starting or stopping the archive server.
#[derive(Debug)]
pub enum ServerError {
    /// The listen socket could not be bound.
    Bind {
        /// The address that was requested.
        addr: String,
        /// The underlying I/O failure.
        source: std::io::Error,
    },
    /// Any other I/O failure while wiring up the server (thread spawn,
    /// local-address lookup, …).
    Io(std::io::Error),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Bind { addr, source } => write!(f, "cannot bind {addr}: {source}"),
            ServerError::Io(e) => write!(f, "server I/O: {e}"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Bind { source, .. } => Some(source),
            ServerError::Io(e) => Some(e),
        }
    }
}
