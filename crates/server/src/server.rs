//! The TCP front end: bounded thread-pool execution with per-query
//! deadlines, explicit load shedding, and graceful drain.
//!
//! ## Concurrency model
//!
//! * one **acceptor** thread takes connections off the listener;
//! * one thread per connection reads frames, owns the connection's
//!   [`QuerySession`], and writes responses (so responses never
//!   interleave);
//! * a fixed pool of **executor** threads runs the actual queries.  The
//!   pool's in-flight counter (queued + executing) is bounded by
//!   [`ServerConfig::queue_depth`]; when the bound is hit, new queries
//!   are refused immediately with a typed
//!   [`Overloaded`](WireErrorCode::Overloaded) error instead of
//!   queueing without limit and stalling every caller.
//!
//! ## Deadlines
//!
//! Every query carries a deadline (the request's `deadline_ms` or the
//! server default).  The connection thread waits for the executor only
//! up to that deadline (plus a small grace for the reply hop) and then
//! answers with [`DeadlineExceeded`](WireErrorCode::DeadlineExceeded) —
//! a slow shard turns into a typed error, never a hung connection.  An
//! executor that picks a job up *after* its deadline already passed
//! sheds it without touching the engine.
//!
//! ## Shutdown
//!
//! [`ServerHandle::shutdown`] stops accepting, lets every in-flight
//! request finish and deliver its response, then joins the connection
//! threads and drains the executor pool.  Queries arriving during the
//! drain get a typed [`ShuttingDown`](WireErrorCode::ShuttingDown)
//! error.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::{Arc, Mutex, MutexGuard};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use tks_core::Query;
use tks_shard::{QuerySession, ShardedResponse, ShardedSearcher};

use crate::error::ServerError;
use crate::wire::{
    self, FrameError, WireDegraded, WireError, WireErrorCode, WireQuery, WireQueryResponse,
    WireRequest, WireResponse, WireStatus, PROTOCOL_VERSION,
};

/// Extra wait beyond the query deadline for the executor's reply hop,
/// so a result that beat the deadline by a hair is not discarded.
const DEADLINE_GRACE_MS: u64 = 50;

/// Hard ceiling on any single query's deadline (guards `Instant`
/// arithmetic and runaway waits).
const MAX_DEADLINE_MS: u64 = 3_600_000;

/// Tuning for one [`ArchiveServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Executor threads running queries (≥ 1).
    pub workers: usize,
    /// Bound on in-flight queries, queued + executing (≥ 1).  Beyond
    /// it, queries are shed with [`WireErrorCode::Overloaded`].
    pub queue_depth: usize,
    /// Bound on concurrent connections; beyond it, new connections are
    /// refused with [`WireErrorCode::Overloaded`] and closed.
    pub max_connections: usize,
    /// Frame-size ceiling for incoming requests.
    pub max_frame_bytes: usize,
    /// Deadline applied to queries that do not carry their own.
    pub default_deadline_ms: u64,
    /// Test/bench hook: sleep this long in the executor before running
    /// each query, simulating a slow shard.  Zero in production.
    pub inject_delay_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_depth: 16,
            max_connections: 64,
            max_frame_bytes: wire::DEFAULT_MAX_FRAME_BYTES,
            default_deadline_ms: 30_000,
            inject_delay_ms: 0,
        }
    }
}

/// Recover from lock poisoning: a panicking holder (only possible in
/// test builds) must not wedge the server.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

// ---------------------------------------------------------------------------
// Executor pool
// ---------------------------------------------------------------------------

struct Job {
    query: Query,
    pinned: ShardedSearcher,
    deadline: Instant,
    reply: mpsc::Sender<Result<ShardedResponse, WireError>>,
}

struct ExecPool {
    tx: Mutex<Option<mpsc::Sender<Job>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    in_flight: Arc<AtomicUsize>,
    depth: usize,
}

impl ExecPool {
    fn start(workers: usize, depth: usize, delay: Duration) -> Result<ExecPool, ServerError> {
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let in_flight = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for i in 0..workers.max(1) {
            let rx = Arc::clone(&rx);
            let in_flight = Arc::clone(&in_flight);
            let h = thread::Builder::new()
                .name(format!("tks-exec-{i}"))
                .spawn(move || worker_loop(&rx, &in_flight, delay))
                .map_err(ServerError::Io)?;
            handles.push(h);
        }
        Ok(ExecPool {
            tx: Mutex::new(Some(tx)),
            workers: Mutex::new(handles),
            in_flight,
            depth: depth.max(1),
        })
    }

    /// Admit a job if the in-flight bound allows; otherwise shed it.
    fn try_submit(&self, job: Job) -> Result<(), WireError> {
        let admitted = self
            .in_flight
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < self.depth).then_some(n + 1)
            });
        if admitted.is_err() {
            return Err(WireError::new(
                WireErrorCode::Overloaded,
                format!("in-flight query queue is full ({} queries)", self.depth),
            ));
        }
        let sent = match &*lock(&self.tx) {
            Some(tx) => tx.send(job).is_ok(),
            None => false,
        };
        if !sent {
            self.in_flight.fetch_sub(1, Ordering::SeqCst);
            return Err(WireError::new(
                WireErrorCode::ShuttingDown,
                "server is draining",
            ));
        }
        Ok(())
    }

    /// Close the queue, let the workers drain what is already queued,
    /// and join them.
    fn shutdown(&self) {
        *lock(&self.tx) = None;
        for h in lock(&self.workers).drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(rx: &Mutex<mpsc::Receiver<Job>>, in_flight: &AtomicUsize, delay: Duration) {
    loop {
        // Hold the lock only while dequeueing, not while executing.
        let job = {
            let guard = lock(rx);
            guard.recv()
        };
        let Ok(job) = job else {
            break; // queue closed and drained: shutdown
        };
        let result = if Instant::now() >= job.deadline {
            // Expired while queued: shed without touching the engine.
            Err(WireError::new(
                WireErrorCode::DeadlineExceeded,
                "deadline expired while the query was queued",
            ))
        } else {
            if !delay.is_zero() {
                thread::sleep(delay);
            }
            job.pinned
                .execute(job.query)
                .map_err(|e| WireError::from(&e))
        };
        // The connection may have given up (deadline) — a dead reply
        // channel is fine.
        let _ = job.reply.send(result);
        in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

struct Shared {
    searcher: ShardedSearcher,
    config: ServerConfig,
    shutdown: AtomicBool,
    active_conns: AtomicUsize,
    conns: Mutex<Vec<JoinHandle<()>>>,
    pool: ExecPool,
}

/// The archive's TCP front end.
pub struct ArchiveServer;

impl ArchiveServer {
    /// Bind `addr` (use port 0 for an ephemeral port) and start serving
    /// `searcher`.  Returns immediately; the server runs on background
    /// threads until the handle is shut down or dropped.
    pub fn bind(
        addr: &str,
        searcher: ShardedSearcher,
        config: ServerConfig,
    ) -> Result<ServerHandle, ServerError> {
        let listener = TcpListener::bind(addr).map_err(|e| ServerError::Bind {
            addr: addr.to_string(),
            source: e,
        })?;
        let local = listener.local_addr().map_err(ServerError::Io)?;
        let pool = ExecPool::start(
            config.workers,
            config.queue_depth,
            Duration::from_millis(config.inject_delay_ms),
        )?;
        let shared = Arc::new(Shared {
            searcher,
            config,
            shutdown: AtomicBool::new(false),
            active_conns: AtomicUsize::new(0),
            conns: Mutex::new(Vec::new()),
            pool,
        });
        let accept_shared = Arc::clone(&shared);
        let accept = thread::Builder::new()
            .name("tks-accept".to_string())
            .spawn(move || accept_loop(&listener, &accept_shared))
            .map_err(ServerError::Io)?;
        Ok(ServerHandle {
            addr: local,
            shared,
            accept: Some(accept),
        })
    }
}

/// A running server.  Dropping the handle shuts the server down
/// gracefully (draining in-flight queries first).
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain in-flight queries (their responses are
    /// still delivered), join every server thread.
    pub fn shutdown(mut self) {
        self.drain();
    }

    fn drain(&mut self) {
        if self.shared.shutdown.swap(true, Ordering::SeqCst) {
            return; // already drained
        }
        // Wake the acceptor with a no-op connection so it observes the
        // flag even if no real client ever connects again.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        // Connection threads finish their current request (delivering
        // the response) and exit at the next idle poll tick.
        for h in lock(&self.shared.conns).drain(..) {
            let _ = h.join();
        }
        self.shared.pool.shutdown();
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.drain();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = stream else { continue };
        let active = shared.active_conns.fetch_add(1, Ordering::SeqCst);
        if active >= shared.config.max_connections {
            shared.active_conns.fetch_sub(1, Ordering::SeqCst);
            let _ = wire::write_response(
                &mut stream,
                &WireResponse::Error(WireError::new(
                    WireErrorCode::Overloaded,
                    format!(
                        "connection limit reached ({} connections)",
                        shared.config.max_connections
                    ),
                )),
            );
            continue;
        }
        let conn_shared = Arc::clone(shared);
        let spawned = thread::Builder::new()
            .name("tks-conn".to_string())
            .spawn(move || {
                let _guard = ConnGuard(Arc::clone(&conn_shared));
                handle_conn(stream, &conn_shared);
            });
        match spawned {
            Ok(h) => lock(&shared.conns).push(h),
            Err(_) => {
                shared.active_conns.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
}

/// Decrements the connection count however the connection thread exits.
struct ConnGuard(Arc<Shared>);

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.0.active_conns.fetch_sub(1, Ordering::SeqCst);
    }
}

fn handle_conn(mut stream: TcpStream, shared: &Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    // A short read timeout turns the blocking read loop into a poll
    // loop, so the connection notices a shutdown even while idle.
    let _ = stream.set_read_timeout(Some(wire::IDLE_POLL));
    let mut session = QuerySession::open(&shared.searcher);
    loop {
        match wire::read_request(&mut stream, shared.config.max_frame_bytes) {
            Ok(req) => {
                if handle_request(&mut stream, shared, &mut session, req).is_err() {
                    break; // peer stopped reading
                }
            }
            Err(FrameError::IdleTimeout) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
            // Clean goodbye, mid-frame disconnect, or transport failure:
            // nothing sensible to say on this socket any more.
            Err(FrameError::Closed) | Err(FrameError::Truncated) | Err(FrameError::Io(_)) => break,
            Err(FrameError::TooLarge { len, max }) => {
                // The oversized body was never read, so the stream can
                // no longer be re-synchronised: answer and close.
                let _ = wire::write_response(
                    &mut stream,
                    &WireResponse::Error(WireError::new(
                        WireErrorCode::FrameTooLarge,
                        format!("frame of {len} bytes exceeds the {max}-byte limit"),
                    )),
                );
                break;
            }
            Err(FrameError::UnsupportedVersion(v)) => {
                // The frame was consumed; the stream is still in sync.
                let r = wire::write_response(
                    &mut stream,
                    &WireResponse::Error(WireError::new(
                        WireErrorCode::UnsupportedVersion,
                        format!(
                            "protocol version {v} is not supported (server speaks {PROTOCOL_VERSION})"
                        ),
                    )),
                );
                if r.is_err() {
                    break;
                }
            }
            Err(FrameError::Malformed(msg)) => {
                // Likewise consumed: report and keep serving.
                let r = wire::write_response(
                    &mut stream,
                    &WireResponse::Error(WireError::new(WireErrorCode::Malformed, msg)),
                );
                if r.is_err() {
                    break;
                }
            }
        }
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

fn handle_request(
    stream: &mut TcpStream,
    shared: &Arc<Shared>,
    session: &mut QuerySession,
    req: WireRequest,
) -> Result<(), FrameError> {
    let resp = match req {
        WireRequest::Ping => WireResponse::Pong,
        WireRequest::Status => status_of(shared, session),
        WireRequest::Refresh => WireResponse::Refreshed {
            watermarks: session.refresh().to_vec(),
        },
        WireRequest::Query { query, deadline_ms } => {
            run_query(shared, session, &query, deadline_ms)
        }
    };
    wire::write_response(stream, &resp)
}

fn status_of(shared: &Arc<Shared>, session: &QuerySession) -> WireResponse {
    WireResponse::Status(WireStatus {
        protocol_version: PROTOCOL_VERSION,
        shards: shared.searcher.shards(),
        visible_docs: session.visible_docs(),
        watermarks: session.watermarks().to_vec(),
        degraded: shared
            .searcher
            .degraded()
            .iter()
            .map(|d| WireDegraded {
                shard: d.shard,
                reason: d.reason.clone(),
            })
            .collect(),
    })
}

fn run_query(
    shared: &Arc<Shared>,
    session: &QuerySession,
    query: &WireQuery,
    deadline_ms: Option<u64>,
) -> WireResponse {
    if shared.shutdown.load(Ordering::SeqCst) {
        return WireResponse::Error(WireError::new(
            WireErrorCode::ShuttingDown,
            "server is draining",
        ));
    }
    let budget_ms = deadline_ms
        .unwrap_or(shared.config.default_deadline_ms)
        .clamp(1, MAX_DEADLINE_MS);
    let budget = Duration::from_millis(budget_ms);
    let now = Instant::now();
    let deadline = now.checked_add(budget).unwrap_or(now);
    let (reply_tx, reply_rx) = mpsc::channel();
    let job = Job {
        query: query.to_query(),
        pinned: session.searcher().clone(),
        deadline,
        reply: reply_tx,
    };
    if let Err(e) = shared.pool.try_submit(job) {
        return WireResponse::Error(e);
    }
    match reply_rx.recv_timeout(budget + Duration::from_millis(DEADLINE_GRACE_MS)) {
        Ok(Ok(resp)) => WireResponse::Query(WireQueryResponse::from(&resp)),
        Ok(Err(we)) => WireResponse::Error(we),
        Err(RecvTimeoutError::Timeout) => WireResponse::Error(WireError::new(
            WireErrorCode::DeadlineExceeded,
            format!("query exceeded its {budget_ms}ms deadline"),
        )),
        Err(RecvTimeoutError::Disconnected) => WireResponse::Error(WireError::new(
            WireErrorCode::Internal,
            "query executor vanished before replying",
        )),
    }
}
