//! End-to-end tests: a real server on an ephemeral port, exercised
//! through `tks_client` — query correctness against a direct in-process
//! execution, session pin/refresh semantics, deadlines, load shedding,
//! and graceful drain.

use std::time::{Duration, Instant};

use tks_client::{Client, ClientError};
use tks_core::{EngineConfig, Query};
use tks_postings::Timestamp;
use tks_server::server::{ArchiveServer, ServerConfig, ServerHandle};
use tks_server::wire::{WireErrorCode, WireQuery, WireTerms};
use tks_shard::{ShardedArchive, ShardedSearcher, ShardedWriter};

const CORPUS: &[(&str, u64)] = &[
    ("alpha beta gamma", 100),
    ("beta delta", 101),
    ("gamma delta epsilon alpha", 102),
    ("alpha zeta beta", 103),
    ("beta epsilon zeta gamma alpha", 104),
    ("delta zeta", 105),
    ("epsilon alpha beta", 106),
    ("gamma zeta delta", 107),
];

fn archive(shards: u32) -> (ShardedWriter, ShardedSearcher) {
    let config = EngineConfig {
        positional: true,
        ..EngineConfig::default()
    };
    let (mut writer, searcher) = ShardedArchive::create(config, shards)
        .expect("create archive")
        .into_service();
    for &(text, ts) in CORPUS {
        writer.commit(text, Timestamp(ts)).expect("commit");
    }
    (writer, searcher)
}

fn serve(searcher: ShardedSearcher, config: ServerConfig) -> ServerHandle {
    ArchiveServer::bind("127.0.0.1:0", searcher, config).expect("bind server")
}

fn disjunctive(text: &str) -> WireQuery {
    WireQuery::Disjunctive {
        terms: WireTerms::Text(text.to_string()),
        top_k: 100,
    }
}

#[test]
fn networked_queries_match_direct_execution() {
    let (_writer, searcher) = archive(3);
    let handle = serve(searcher.clone(), ServerConfig::default());
    let mut client = Client::connect(handle.addr()).expect("connect");
    client.ping().expect("ping");

    for (wire_q, engine_q) in [
        (disjunctive("alpha"), Query::disjunctive("alpha", 100)),
        (
            WireQuery::Conjunctive {
                terms: WireTerms::Text("beta gamma".to_string()),
                from: None,
                to: None,
            },
            Query::conjunctive("beta gamma"),
        ),
        (
            WireQuery::Phrase {
                text: "delta epsilon".to_string(),
            },
            Query::phrase("delta epsilon"),
        ),
        (
            WireQuery::TimeRange { from: 101, to: 105 },
            Query::time_range(Timestamp(101), Timestamp(105)),
        ),
    ] {
        let over_wire = client.query(wire_q).expect("networked query");
        let direct = searcher.execute(engine_q).expect("direct query");
        let wire_docs: Vec<u64> = over_wire.hits.iter().map(|h| h.doc).collect();
        let direct_docs: Vec<u64> = direct.hits.iter().map(|h| h.doc.0).collect();
        assert_eq!(wire_docs, direct_docs);
        assert_eq!(over_wire.trusted, direct.trusted);
        assert_eq!(over_wire.visible_docs, direct.visible_docs);
        assert_eq!(over_wire.shards.len(), 3);
    }
    handle.shutdown();
}

/// The response digest verifies end-to-end over a real socket, binds
/// the same chain heads a direct in-process execution reports, and a
/// head held "out-of-band" (here: read straight off the engines)
/// authenticates the networked response — while a foreign head is
/// rejected.
#[test]
fn networked_responses_verify_against_out_of_band_chain_heads() {
    let (_writer, searcher) = archive(3);
    let handle = serve(searcher.clone(), ServerConfig::default());
    let mut client = Client::connect(handle.addr()).expect("connect");

    let over_wire = client
        .query_verified(disjunctive("alpha"))
        .expect("verified networked query");
    let direct = searcher
        .execute(Query::disjunctive("alpha", 100))
        .expect("direct query");

    for status in &direct.shards {
        let wire_status = &over_wire.shards[status.shard as usize];
        assert_eq!(
            wire_status.parsed_chain_head().expect("parseable head"),
            status.chain_head,
            "shard {} head must survive the wire",
            status.shard
        );
        over_wire
            .verify_shard_head(status.shard, &status.chain_head)
            .expect("out-of-band head must authenticate the response");
    }

    let forged = tks_worm::ChainHead(tks_worm::sha256(b"a different archive's history"));
    let err = over_wire
        .verify_shard_head(0, &forged)
        .expect_err("foreign head must be rejected");
    assert_eq!(err.code, WireErrorCode::DigestMismatch);

    handle.shutdown();
}

#[test]
fn connection_session_is_pinned_until_refresh() {
    let (mut writer, searcher) = archive(2);
    let handle = serve(searcher, ServerConfig::default());
    let mut client = Client::connect(handle.addr()).expect("connect");

    let before = client.query(disjunctive("alpha")).expect("query");
    assert_eq!(before.visible_docs, CORPUS.len() as u64);

    writer
        .commit("alpha omega fresh", Timestamp(200))
        .expect("commit");

    // Same connection, same pinned session: the new commit is invisible.
    let pinned = client.query(disjunctive("alpha")).expect("query");
    assert_eq!(pinned.visible_docs, CORPUS.len() as u64);
    assert_eq!(pinned.hits.len(), before.hits.len());

    // Refresh advances the session to the new frontier.
    let marks = client.refresh().expect("refresh");
    assert_eq!(marks.iter().sum::<u64>(), CORPUS.len() as u64 + 1);
    let fresh = client.query(disjunctive("alpha")).expect("query");
    assert_eq!(fresh.hits.len(), before.hits.len() + 1);

    // A *new* connection pins the fresh frontier immediately.
    let mut second = Client::connect(handle.addr()).expect("connect");
    let status = second.status().expect("status");
    assert_eq!(status.visible_docs, CORPUS.len() as u64 + 1);
    assert_eq!(status.shards, 2);
    assert!(status.degraded.is_empty());
    handle.shutdown();
}

#[test]
fn slow_query_returns_typed_deadline_error_not_a_hung_connection() {
    let (_writer, searcher) = archive(2);
    let handle = serve(
        searcher,
        ServerConfig {
            inject_delay_ms: 500,
            ..ServerConfig::default()
        },
    );
    let mut client = Client::connect(handle.addr()).expect("connect");
    let started = Instant::now();
    let err = client
        .query_with_deadline(disjunctive("alpha"), 40)
        .expect_err("must miss the deadline");
    let elapsed = started.elapsed();
    match &err {
        ClientError::Server(we) => assert_eq!(we.code, WireErrorCode::DeadlineExceeded),
        other => panic!("expected a typed DeadlineExceeded, got {other:?}"),
    }
    assert!(
        elapsed < Duration::from_millis(400),
        "deadline reply must not wait for the slow query ({elapsed:?})"
    );
    // The connection survives: the next query (generous deadline) works.
    let ok = client
        .query_with_deadline(disjunctive("alpha"), 5_000)
        .expect("post-deadline query");
    assert!(!ok.hits.is_empty());
    handle.shutdown();
}

#[test]
fn saturated_queue_sheds_load_with_typed_overloaded() {
    let (_writer, searcher) = archive(2);
    let handle = serve(
        searcher,
        ServerConfig {
            workers: 1,
            queue_depth: 1,
            inject_delay_ms: 300,
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr();

    // Fill the single in-flight slot from a background connection.
    let filler = std::thread::spawn(move || {
        let mut c = Client::connect(addr).expect("connect filler");
        c.query_with_deadline(disjunctive("alpha"), 5_000)
            .expect("filler query")
    });
    std::thread::sleep(Duration::from_millis(100));

    // The queue is full: this query must be shed immediately.
    let mut client = Client::connect(addr).expect("connect");
    let started = Instant::now();
    let err = client
        .query_with_deadline(disjunctive("alpha"), 5_000)
        .expect_err("must be shed");
    match &err {
        ClientError::Server(we) => assert_eq!(we.code, WireErrorCode::Overloaded),
        other => panic!("expected a typed Overloaded, got {other:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_millis(200),
        "shedding must be immediate, not queued"
    );

    // The filler's query still completes correctly.
    let filled = filler.join().expect("filler thread");
    assert!(!filled.hits.is_empty());
    handle.shutdown();
}

#[test]
fn graceful_shutdown_drains_in_flight_queries() {
    let (_writer, searcher) = archive(2);
    let handle = serve(
        searcher,
        ServerConfig {
            inject_delay_ms: 300,
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr();

    // A slow query is in flight when shutdown begins.
    let in_flight = std::thread::spawn(move || {
        let mut c = Client::connect(addr).expect("connect");
        c.query_with_deadline(disjunctive("alpha"), 5_000)
    });
    std::thread::sleep(Duration::from_millis(100));
    handle.shutdown();

    // The in-flight query was drained, not dropped: its full response
    // arrived.
    let resp = in_flight
        .join()
        .expect("query thread")
        .expect("drained query must succeed");
    assert!(!resp.hits.is_empty());

    // The server is really gone afterwards.
    assert!(
        Client::connect(addr).is_err() || {
            let mut c = Client::connect(addr).expect("connect");
            c.ping().is_err()
        }
    );
}

#[test]
fn queries_during_drain_get_shutting_down() {
    let (_writer, searcher) = archive(2);
    let handle = serve(
        searcher,
        ServerConfig {
            inject_delay_ms: 400,
            ..ServerConfig::default()
        },
    );
    let addr = handle.addr();

    // Open the connection *before* shutdown so the read loop is live.
    let mut client = Client::connect(addr).expect("connect");
    client.ping().expect("ping");

    // Hold the drain open with a slow in-flight query on another
    // connection, then race a fresh query on the first one.
    let blocker = std::thread::spawn(move || {
        let mut c = Client::connect(addr).expect("connect blocker");
        c.query_with_deadline(disjunctive("alpha"), 5_000)
    });
    std::thread::sleep(Duration::from_millis(100));
    let shutdown = std::thread::spawn(move || handle.shutdown());
    std::thread::sleep(Duration::from_millis(100));

    // Either the request is refused as ShuttingDown, or — if the drain
    // already closed this connection — the transport reports it.
    match client.query_with_deadline(disjunctive("alpha"), 1_000) {
        Err(ClientError::Server(we)) => assert_eq!(we.code, WireErrorCode::ShuttingDown),
        Err(ClientError::Frame(_)) | Err(ClientError::Io(_)) => {}
        Ok(_) => panic!("a query issued mid-drain must not succeed"),
        Err(other) => panic!("unexpected error: {other:?}"),
    }
    let _ = blocker.join().expect("blocker thread");
    shutdown.join().expect("shutdown thread");
}
