//! Malformed-input robustness: hostile or broken peers — truncated
//! frames, oversized length prefixes, garbage JSON, wrong version
//! bytes, mid-frame disconnects — must get typed errors (or a silent
//! close), and the server must keep serving well-formed clients.
//! A panic anywhere in the connection path would fail these tests:
//! the server thread would die and the follow-up probe would hang or
//! error.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use tks_client::Client;
use tks_core::EngineConfig;
use tks_postings::Timestamp;
use tks_server::server::{ArchiveServer, ServerConfig, ServerHandle};
use tks_server::wire::{self, WireErrorCode, WireQuery, WireResponse, WireTerms, PROTOCOL_VERSION};
use tks_shard::ShardedArchive;

fn serve() -> ServerHandle {
    let (mut writer, searcher) = ShardedArchive::create(EngineConfig::default(), 2)
        .expect("create archive")
        .into_service();
    writer
        .commit("alpha beta gamma", Timestamp(100))
        .expect("commit");
    ArchiveServer::bind("127.0.0.1:0", searcher, ServerConfig::default()).expect("bind")
}

fn raw_conn(handle: &ServerHandle) -> TcpStream {
    let s = TcpStream::connect(handle.addr()).expect("connect");
    s.set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    s
}

/// After an abuse scenario, the server must still answer a well-formed
/// client perfectly.
fn assert_still_serving(handle: &ServerHandle) {
    let mut client = Client::connect(handle.addr()).expect("connect probe");
    let resp = client
        .query(WireQuery::Disjunctive {
            terms: WireTerms::Text("alpha".to_string()),
            top_k: 10,
        })
        .expect("probe query");
    assert_eq!(resp.hits.len(), 1);
}

fn read_error(stream: &mut TcpStream) -> WireResponse {
    wire::read_response(stream, wire::DEFAULT_MAX_FRAME_BYTES).expect("read response")
}

#[test]
fn oversized_length_prefix_is_rejected_without_allocation() {
    let handle = serve();
    let mut s = raw_conn(&handle);
    // Declare a 4 GiB frame; send five bytes.  If the server allocated
    // by the prefix this test would OOM the suite; instead it must
    // answer FrameTooLarge and close.
    s.write_all(&u32::MAX.to_le_bytes()).expect("write header");
    s.write_all(&[PROTOCOL_VERSION]).expect("write byte");
    match read_error(&mut s) {
        WireResponse::Error(e) => assert_eq!(e.code, WireErrorCode::FrameTooLarge),
        other => panic!("expected FrameTooLarge, got {other:?}"),
    }
    // The connection is closed afterwards (the stream cannot be
    // re-synchronised past an unread oversized body).
    let mut rest = Vec::new();
    let n = s.read_to_end(&mut rest).unwrap_or(0);
    assert_eq!(n, 0, "server must close after FrameTooLarge");
    assert_still_serving(&handle);
    handle.shutdown();
}

#[test]
fn garbage_json_gets_typed_malformed_and_connection_survives() {
    let handle = serve();
    let mut s = raw_conn(&handle);
    let garbage = b"{\"Query\": this is not json";
    let len = (garbage.len() + 1) as u32;
    s.write_all(&len.to_le_bytes()).expect("write header");
    s.write_all(&[PROTOCOL_VERSION]).expect("write version");
    s.write_all(garbage).expect("write garbage");
    match read_error(&mut s) {
        WireResponse::Error(e) => assert_eq!(e.code, WireErrorCode::Malformed),
        other => panic!("expected Malformed, got {other:?}"),
    }
    // The frame was consumed cleanly: the same connection still works.
    wire::write_request(&mut s, &wire::WireRequest::Ping).expect("write ping");
    match read_error(&mut s) {
        WireResponse::Pong => {}
        other => panic!("expected Pong on the same connection, got {other:?}"),
    }
    assert_still_serving(&handle);
    handle.shutdown();
}

#[test]
fn unknown_envelope_shape_is_malformed_not_fatal() {
    let handle = serve();
    let mut s = raw_conn(&handle);
    // Valid JSON, invalid envelope: an unknown request variant.
    let payload = br#"{"DropAllRecords":{}}"#;
    let len = (payload.len() + 1) as u32;
    s.write_all(&len.to_le_bytes()).expect("write header");
    s.write_all(&[PROTOCOL_VERSION]).expect("write version");
    s.write_all(payload).expect("write payload");
    match read_error(&mut s) {
        WireResponse::Error(e) => assert_eq!(e.code, WireErrorCode::Malformed),
        other => panic!("expected Malformed, got {other:?}"),
    }
    assert_still_serving(&handle);
    handle.shutdown();
}

#[test]
fn wrong_version_byte_gets_typed_error_and_connection_survives() {
    let handle = serve();
    let mut s = raw_conn(&handle);
    let payload = br#""Ping""#;
    let len = (payload.len() + 1) as u32;
    s.write_all(&len.to_le_bytes()).expect("write header");
    s.write_all(&[42u8]).expect("write version");
    s.write_all(payload).expect("write payload");
    match read_error(&mut s) {
        WireResponse::Error(e) => assert_eq!(e.code, WireErrorCode::UnsupportedVersion),
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
    // Stream still in sync: a v1 Ping on the same connection works.
    wire::write_request(&mut s, &wire::WireRequest::Ping).expect("write ping");
    match read_error(&mut s) {
        WireResponse::Pong => {}
        other => panic!("expected Pong, got {other:?}"),
    }
    handle.shutdown();
}

#[test]
fn mid_frame_disconnect_never_panics_the_server() {
    let handle = serve();
    // Scenario 1: header promises 100 bytes, peer sends 10 and leaves.
    {
        let mut s = raw_conn(&handle);
        s.write_all(&100u32.to_le_bytes()).expect("write header");
        s.write_all(&[PROTOCOL_VERSION]).expect("write version");
        s.write_all(b"truncated").expect("write partial");
        drop(s);
    }
    // Scenario 2: disconnect inside the 4-byte header itself.
    {
        let mut s = raw_conn(&handle);
        s.write_all(&[7u8, 0]).expect("write half header");
        drop(s);
    }
    // Scenario 3: zero-byte connect-and-slam.
    {
        let s = raw_conn(&handle);
        drop(s);
    }
    // Give the connection threads a beat to trip over the disconnects.
    std::thread::sleep(Duration::from_millis(150));
    assert_still_serving(&handle);
    handle.shutdown();
}

#[test]
fn undersized_frames_are_malformed() {
    let handle = serve();
    let mut s = raw_conn(&handle);
    // A 1-byte frame can hold a version byte but no payload.
    s.write_all(&1u32.to_le_bytes()).expect("write header");
    s.write_all(&[PROTOCOL_VERSION]).expect("write version");
    match read_error(&mut s) {
        WireResponse::Error(e) => assert_eq!(e.code, WireErrorCode::Malformed),
        other => panic!("expected Malformed, got {other:?}"),
    }
    assert_still_serving(&handle);
    handle.shutdown();
}
