//! Property tests for the WORM file layer: an append-only file must
//! behave exactly like an ever-growing byte vector, for any sequence of
//! appends and reads, at any block size — and committed bytes must be
//! bit-stable across later operations.

use proptest::prelude::*;
use tks_worm::{WormDevice, WormFs};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn file_matches_reference_vector(
        block_size in 1usize..64,
        chunks in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..40), 0..25),
        read_probes in proptest::collection::vec((0u64..500, 0usize..60), 0..20),
    ) {
        let mut fs = WormFs::new(WormDevice::new(block_size));
        let f = fs.create("f", u64::MAX).unwrap();
        let mut model: Vec<u8> = Vec::new();
        for chunk in &chunks {
            let off = fs.append(f, chunk).unwrap();
            prop_assert_eq!(off, model.len() as u64);
            model.extend_from_slice(chunk);
            prop_assert_eq!(fs.len(f), model.len() as u64);
            // The whole committed prefix is always intact.
            prop_assert_eq!(fs.read(f, 0, model.len()).unwrap(), model.clone());
        }
        for &(off, len) in &read_probes {
            let in_range = off + len as u64 <= model.len() as u64;
            match fs.read(f, off, len) {
                Ok(bytes) => {
                    prop_assert!(in_range);
                    prop_assert_eq!(bytes, model[off as usize..off as usize + len].to_vec());
                }
                Err(_) => prop_assert!(!in_range),
            }
        }
        // Block accounting matches the model.
        let expect_blocks = model.len().div_ceil(block_size);
        prop_assert_eq!(fs.blocks(f).len(), expect_blocks);
    }

    #[test]
    fn interleaved_files_do_not_interfere(
        ops in proptest::collection::vec((0usize..3, proptest::collection::vec(any::<u8>(), 1..16)), 1..40),
    ) {
        let mut fs = WormFs::new(WormDevice::new(8));
        let handles = [
            fs.create("a", u64::MAX).unwrap(),
            fs.create("b", u64::MAX).unwrap(),
            fs.create("c", u64::MAX).unwrap(),
        ];
        let mut models: [Vec<u8>; 3] = Default::default();
        for (which, bytes) in &ops {
            fs.append(handles[*which], bytes).unwrap();
            models[*which].extend_from_slice(bytes);
        }
        for i in 0..3 {
            prop_assert_eq!(
                fs.read(handles[i], 0, models[i].len()).unwrap(),
                models[i].clone()
            );
        }
    }

    #[test]
    fn overwrites_never_change_committed_bytes(
        data in proptest::collection::vec(any::<u8>(), 1..64),
        attempts in proptest::collection::vec((0usize..64, any::<u8>()), 1..20),
    ) {
        let mut dev = WormDevice::new(64);
        let b = dev.alloc_block();
        dev.append(b, &data).unwrap();
        for &(off, byte) in &attempts {
            let _ = dev.try_overwrite(b, off % data.len(), &[byte]);
        }
        prop_assert_eq!(dev.read_all(b).unwrap(), &data[..]);
        prop_assert_eq!(dev.tamper_log().len(), attempts.len());
    }
}
