//! Append-only file layer over the WORM block device.
//!
//! Commercial WORM boxes expose "a file-system-like (or object) interface …
//! with file modification and premature deletion operations disallowed"
//! (paper §2.2).  [`WormFs`] provides that interface, extended — per the
//! paper's proposal — with the ability to *append* to committed files, which
//! is what posting lists require.
//!
//! Each file is a chain of device blocks.  Appends fill the tail block and
//! allocate a new one when it is exactly full, so a file of length `L` with
//! block size `S` occupies `ceil(L / S)` blocks (the tail possibly partial).
//! Files carry a retention period; deletion before expiry is refused and
//! logged as a tamper attempt.

use crate::device::{BlockId, TamperAttempt, TamperKind, WormDevice, WormError};
use crate::persist::PersistError;
use crate::tap::AppendTap;
use std::collections::HashMap;
use std::sync::Arc;

/// Handle to an open append-only file (an index into the fs file table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FileHandle(pub u32);

/// A file-table entry in serializable form (see
/// [`persist`](crate::persist)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExportedFile {
    /// File name.
    pub name: String,
    /// Backing blocks, in order.
    pub blocks: Vec<BlockId>,
    /// Committed length in bytes.
    pub len: u64,
    /// Logical time after which deletion is legal.
    pub retention_expires_at: u64,
    /// Whether the file was (legally) deleted.
    pub deleted: bool,
}

#[derive(Debug, Clone)]
struct FileMeta {
    name: String,
    blocks: Vec<BlockId>,
    len: u64,
    /// Logical time after which the file may be deleted; `u64::MAX` means
    /// "retain forever".
    retention_expires_at: u64,
    deleted: bool,
}

/// An append-only, retention-enforcing file system over a [`WormDevice`].
///
/// # Example
///
/// ```
/// use tks_worm::{WormDevice, WormFs};
///
/// let mut fs = WormFs::new(WormDevice::new(8));
/// let f = fs.create("postings/term-42", u64::MAX).unwrap();
/// fs.append(f, b"0123456789").unwrap(); // spans two 8-byte blocks
/// assert_eq!(fs.len(f), 10);
/// assert_eq!(fs.read(f, 6, 4).unwrap(), b"6789");
/// ```
#[derive(Debug)]
pub struct WormFs {
    device: WormDevice,
    files: Vec<FileMeta>,
    by_name: HashMap<String, FileHandle>,
    /// Runtime-only replication observer; never persisted (see
    /// [`tap`](crate::tap)).
    tap: TapSlot,
}

/// Holder for the optional [`AppendTap`], so `WormFs` keeps deriving
/// `Debug` without requiring it of tap implementations.
#[derive(Default)]
struct TapSlot(Option<Arc<dyn AppendTap>>);

impl std::fmt::Debug for TapSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.is_some() {
            "TapSlot(attached)"
        } else {
            "TapSlot(none)"
        })
    }
}

impl WormFs {
    /// Wrap a device in a fresh, empty file system.
    pub fn new(device: WormDevice) -> Self {
        Self {
            device,
            files: Vec::new(),
            by_name: HashMap::new(),
            tap: TapSlot(None),
        }
    }

    /// Attach a replication tap, replacing any previous one.
    ///
    /// The tap is notified after every subsequent successful mutation
    /// (see [`AppendTap`]); it observes, never vetoes.  Taps are
    /// runtime-only state: they survive neither
    /// [`export_file_table`](Self::export_file_table)/[`import`](Self::import)
    /// nor the image persistence built on them.
    pub fn set_tap(&mut self, tap: Arc<dyn AppendTap>) {
        self.tap = TapSlot(Some(tap));
    }

    /// Detach the replication tap, returning it if one was attached.
    pub fn clear_tap(&mut self) -> Option<Arc<dyn AppendTap>> {
        self.tap.0.take()
    }

    /// Whether a replication tap is currently attached.
    pub fn has_tap(&self) -> bool {
        self.tap.0.is_some()
    }

    /// The underlying device (read-only access, e.g. for audits).
    pub fn device(&self) -> &WormDevice {
        &self.device
    }

    /// Mutable access to the underlying device.
    ///
    /// Exposed because the threat model explicitly grants the adversary raw
    /// device access (she can bypass the file-system layer entirely); tests
    /// and attack harnesses use this.
    pub fn device_mut(&mut self) -> &mut WormDevice {
        &mut self.device
    }

    /// Create an empty file retained until logical time
    /// `retention_expires_at` (use `u64::MAX` for indefinite retention).
    pub fn create(&mut self, name: &str, retention_expires_at: u64) -> crate::Result<FileHandle> {
        if self.by_name.contains_key(name) {
            return Err(WormError::FileExists(name.to_string()));
        }
        // Bounds: the persisted image stores the file count as a checked
        // u32 (`persist::u32_of`), so an in-memory table that outgrew u32
        // could never round-trip; creating the 2^32-th file would fail at
        // save time with a typed PersistError rather than truncate here.
        let handle = FileHandle(self.files.len() as u32);
        self.files.push(FileMeta {
            name: name.to_string(),
            blocks: Vec::new(),
            len: 0,
            retention_expires_at,
            deleted: false,
        });
        self.by_name.insert(name.to_string(), handle);
        if let Some(tap) = self.tap.0.as_ref() {
            tap.on_create(name, retention_expires_at);
        }
        Ok(handle)
    }

    /// Look up a file by name.
    pub fn open(&self, name: &str) -> crate::Result<FileHandle> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| WormError::NoSuchFile(name.to_string()))
    }

    /// Committed length of the file in bytes.
    pub fn len(&self, f: FileHandle) -> u64 {
        self.files[f.0 as usize].len
    }

    /// Whether the file is empty.
    pub fn is_empty(&self, f: FileHandle) -> bool {
        self.len(f) == 0
    }

    /// The device blocks backing the file, in order.
    pub fn blocks(&self, f: FileHandle) -> &[BlockId] {
        &self.files[f.0 as usize].blocks
    }

    /// The block currently accepting appends, if any bytes were written.
    pub fn tail_block(&self, f: FileHandle) -> Option<BlockId> {
        self.files[f.0 as usize].blocks.last().copied()
    }

    /// Append bytes to the end of the file, allocating blocks as needed.
    ///
    /// Returns the file offset at which the bytes begin.  Per the WORM
    /// append extension, this is legal on committed files; it can never
    /// disturb previously committed bytes.
    pub fn append(&mut self, f: FileHandle, bytes: &[u8]) -> crate::Result<u64> {
        let start = self.files[f.0 as usize].len;
        let block_size = self.device.block_size();
        let mut bytes = bytes;
        let whole = bytes;
        while !bytes.is_empty() {
            let meta = &self.files[f.0 as usize];
            let tail = match meta.blocks.last() {
                Some(&b) if self.device.remaining(b)? > 0 => b,
                _ => {
                    let b = self.device.alloc_block();
                    self.files[f.0 as usize].blocks.push(b);
                    b
                }
            };
            let room = self.device.remaining(tail)?;
            debug_assert!(room > 0 && room <= block_size);
            let take = room.min(bytes.len());
            self.device.append(tail, &bytes[..take])?;
            self.files[f.0 as usize].len += take as u64;
            bytes = &bytes[take..];
        }
        // Post-commit notification: a fault above returned early, so the
        // tap only ever observes fully durable appends.
        if let (Some(tap), Some(meta)) = (self.tap.0.as_ref(), self.files.get(f.0 as usize)) {
            if !whole.is_empty() {
                tap.on_append(&meta.name, start, whole);
            }
        }
        Ok(start)
    }

    /// Apply one replicated append at its expected offset — the
    /// replay-apply half of the replication protocol (see
    /// [`tap`](crate::tap) and `tks-replica`).
    ///
    /// Verifies the file's committed length equals `at` before writing:
    /// a mismatch means this device missed, duplicated, or reordered
    /// part of the replicated append stream, and blindly appending
    /// would silently diverge from the primary.  Refused replays return
    /// the typed [`WormError::ReplayMismatch`] so the caller can
    /// quarantine the device instead.
    pub fn replay(&mut self, file: &str, at: u64, bytes: &[u8]) -> crate::Result<u64> {
        let f = self.open(file)?;
        let actual = self.len(f);
        if actual != at {
            return Err(WormError::ReplayMismatch {
                name: file.to_string(),
                expected: at,
                actual,
            });
        }
        self.append(f, bytes)
    }

    /// Read `len` bytes at `offset`, crossing block boundaries as needed.
    pub fn read(&self, f: FileHandle, offset: u64, len: usize) -> crate::Result<Vec<u8>> {
        let meta = &self.files[f.0 as usize];
        // Checked: an adversarial offset near `u64::MAX` must not wrap
        // past the EOF guard and reach the block indexing below.
        let end = match offset.checked_add(len as u64) {
            Some(end) if end <= meta.len => end,
            overflowed_or_past_eof => {
                return Err(WormError::ReadPastEof {
                    name: meta.name.clone(),
                    end: overflowed_or_past_eof.unwrap_or(u64::MAX),
                    len: meta.len,
                });
            }
        };
        let block_size = self.device.block_size() as u64;
        let mut out = Vec::with_capacity(len);
        let mut pos = offset;
        while pos < end {
            let bi = (pos / block_size) as usize;
            let in_block = (pos % block_size) as usize;
            let take = ((end - pos) as usize).min(block_size as usize - in_block);
            out.extend_from_slice(self.device.read(meta.blocks[bi], in_block, take)?);
            pos += take as u64;
        }
        Ok(out)
    }

    /// Read exactly `buf.len()` bytes at `offset` into a caller-provided
    /// buffer, crossing block boundaries as needed.
    ///
    /// Same EOF contract as [`read`](Self::read), but without allocating a
    /// `Vec` per call — hot read paths reuse one buffer across many reads.
    pub fn read_exact_at(&self, f: FileHandle, offset: u64, buf: &mut [u8]) -> crate::Result<()> {
        let meta = &self.files[f.0 as usize];
        // Same checked-overflow guard as `read`.
        let end = match offset.checked_add(buf.len() as u64) {
            Some(end) if end <= meta.len => end,
            overflowed_or_past_eof => {
                return Err(WormError::ReadPastEof {
                    name: meta.name.clone(),
                    end: overflowed_or_past_eof.unwrap_or(u64::MAX),
                    len: meta.len,
                });
            }
        };
        let block_size = self.device.block_size() as u64;
        let mut pos = offset;
        let mut filled = 0usize;
        while pos < end {
            let bi = (pos / block_size) as usize;
            let in_block = (pos % block_size) as usize;
            let take = ((end - pos) as usize).min(block_size as usize - in_block);
            let src = self.device.read(meta.blocks[bi], in_block, take)?;
            if let Some(dst) = buf.get_mut(filled..filled + take) {
                dst.copy_from_slice(src);
            }
            filled += take;
            pos += take as u64;
        }
        Ok(())
    }

    /// Borrow the committed bytes of the file's `block_no`-th block (0-based
    /// file-relative index) in a single call.
    ///
    /// The returned slice holds every committed byte of that block: a full
    /// `block_size` bytes for interior blocks, possibly fewer for the tail.
    /// This is the batch unit of the block-granular read path — one call,
    /// one logical block, no per-record allocation.
    pub fn read_block(&self, f: FileHandle, block_no: u64) -> crate::Result<&[u8]> {
        let meta = &self.files[f.0 as usize];
        let block_size = self.device.block_size() as u64;
        let start = block_no.saturating_mul(block_size);
        if start >= meta.len {
            return Err(WormError::ReadPastEof {
                name: meta.name.clone(),
                end: start.saturating_add(1),
                len: meta.len,
            });
        }
        let len = (meta.len - start).min(block_size) as usize;
        match meta.blocks.get(block_no as usize) {
            Some(&b) => self.device.read(b, 0, len),
            None => Err(WormError::ReadPastEof {
                name: meta.name.clone(),
                end: start.saturating_add(len as u64),
                len: meta.len,
            }),
        }
    }

    /// Number of device blocks the file's committed bytes occupy
    /// (`ceil(len / block_size)`).
    pub fn num_blocks(&self, f: FileHandle) -> u64 {
        self.len(f).div_ceil(self.device.block_size() as u64)
    }

    /// Attempt to delete the file at logical time `now`.
    ///
    /// Deletion succeeds only once the retention period has expired;
    /// premature attempts are refused and recorded in the device tamper log
    /// (this mirrors the appliance behaviour the paper assumes).
    pub fn delete(&mut self, f: FileHandle, now: u64) -> crate::Result<()> {
        let meta = &self.files[f.0 as usize];
        if now < meta.retention_expires_at {
            let name = meta.name.clone();
            let expires_at = meta.retention_expires_at;
            self.device.report_tamper(TamperAttempt {
                kind: TamperKind::EarlyDelete,
                block: None,
                file: Some(name.clone()),
                detail: format!("early delete of '{name}' at t={now} (expires t={expires_at})"),
            });
            return Err(WormError::RetentionNotExpired {
                name,
                expires_at,
                now,
            });
        }
        let name = self.files[f.0 as usize].name.clone();
        self.files[f.0 as usize].deleted = true;
        self.by_name.remove(&name);
        if let Some(tap) = self.tap.0.as_ref() {
            tap.on_delete(&name, now);
        }
        Ok(())
    }

    /// Whether the file has been (legally) deleted.
    pub fn is_deleted(&self, f: FileHandle) -> bool {
        self.files[f.0 as usize].deleted
    }

    /// Iterate over the names of all live files.
    pub fn file_names(&self) -> impl Iterator<Item = &str> {
        self.by_name.keys().map(|s| s.as_str())
    }

    /// Export the file table for serialization (see
    /// [`persist`](crate::persist)).
    pub fn export_file_table(&self) -> Vec<ExportedFile> {
        self.files
            .iter()
            .map(|f| ExportedFile {
                name: f.name.clone(),
                blocks: f.blocks.clone(),
                len: f.len,
                retention_expires_at: f.retention_expires_at,
                deleted: f.deleted,
            })
            .collect()
    }

    /// Rebuild a file system from a device and an exported file table,
    /// validating that every file's length is exactly the bytes committed
    /// in its blocks.  Returns a [`PersistError`] describing the first
    /// inconsistency.
    pub fn import(device: WormDevice, table: Vec<ExportedFile>) -> Result<Self, PersistError> {
        let block_size = device.block_size() as u64;
        let mut files = Vec::with_capacity(table.len());
        let mut by_name = HashMap::new();
        for (i, f) in table.into_iter().enumerate() {
            let committed: u64 = f
                .blocks
                .iter()
                .map(|&b| device.committed_len(b).map(|l| l as u64))
                .sum::<Result<u64, _>>()
                .map_err(|e| PersistError(format!("file '{}': {e}", f.name)))?;
            if committed != f.len {
                return Err(PersistError(format!(
                    "file '{}': length {} but {} bytes committed in its blocks",
                    f.name, f.len, committed
                )));
            }
            if f.len.div_ceil(block_size) != f.blocks.len() as u64 {
                return Err(PersistError(format!(
                    "file '{}': {} bytes cannot occupy {} blocks of {}",
                    f.name,
                    f.len,
                    f.blocks.len(),
                    block_size
                )));
            }
            // Bounds: `i` indexes the decoded file table, whose count the
            // image carries as a u32 (checked at save by `u32_of`), so it
            // always fits.
            if !f.deleted
                && by_name
                    .insert(f.name.clone(), FileHandle(i as u32))
                    .is_some()
            {
                return Err(PersistError(format!(
                    "duplicate live file name '{}'",
                    f.name
                )));
            }
            files.push(FileMeta {
                name: f.name,
                blocks: f.blocks,
                len: f.len,
                retention_expires_at: f.retention_expires_at,
                deleted: f.deleted,
            });
        }
        Ok(Self {
            device,
            files,
            by_name,
            tap: TapSlot(None),
        })
    }

    /// Number of live (non-deleted) files.
    pub fn num_files(&self) -> usize {
        self.by_name.len()
    }

    /// Arm a fault-injection policy on the underlying device (see
    /// [`WormDevice::arm_faults`]).
    pub fn arm_faults(&mut self, policy: crate::fault::FaultPolicy) {
        self.device.arm_faults(policy);
    }

    /// Disarm fault injection on the underlying device, returning the
    /// policy so the caller can inspect whether it fired.
    pub fn disarm_faults(&mut self) -> Option<crate::fault::FaultPolicy> {
        self.device.disarm_faults()
    }

    /// Remount after a (simulated) crash: trust only the device.
    ///
    /// A torn append commits a prefix of its bytes on the device while
    /// the in-flight file length was never advanced past the completed
    /// chunks — exactly what a restarted process sees when its in-memory
    /// state is gone.  This method re-derives every live file's length
    /// from the bytes actually committed in its blocks, and drops a
    /// trailing block that was allocated but never received a byte (an
    /// append that died between allocation and the first write).
    ///
    /// Returns the total number of torn-tail bytes surfaced (bytes on the
    /// device beyond the lengths the file table recorded).  Higher layers
    /// decide what part of that tail is a quarantinable torn record and
    /// what is evidence of tampering.
    pub fn crash_recover(&mut self) -> crate::Result<u64> {
        let mut surfaced = 0u64;
        for meta in &mut self.files {
            if let Some(&tail) = meta.blocks.last() {
                if self.device.committed_len(tail)? == 0 {
                    meta.blocks.pop();
                }
            }
            let committed: u64 = meta
                .blocks
                .iter()
                .map(|&b| self.device.committed_len(b).map(|l| l as u64))
                .sum::<crate::Result<u64>>()?;
            // Appends only ever grow a file, and the length is advanced
            // chunk-by-chunk behind the device commits, so the recorded
            // length can lag the device but never lead it.
            surfaced += committed.saturating_sub(meta.len);
            meta.len = committed;
        }
        Ok(surfaced)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs(block: usize) -> WormFs {
        WormFs::new(WormDevice::new(block))
    }

    #[test]
    fn create_open_roundtrip() {
        let mut fs = fs(16);
        let f = fs.create("a", u64::MAX).unwrap();
        assert_eq!(fs.open("a").unwrap(), f);
        assert!(matches!(fs.open("b"), Err(WormError::NoSuchFile(_))));
        assert!(matches!(fs.create("a", 0), Err(WormError::FileExists(_))));
    }

    #[test]
    fn append_spans_blocks() {
        let mut fs = fs(4);
        let f = fs.create("a", u64::MAX).unwrap();
        assert_eq!(fs.append(f, b"0123456789").unwrap(), 0);
        assert_eq!(fs.len(f), 10);
        assert_eq!(fs.blocks(f).len(), 3); // 4 + 4 + 2
        assert_eq!(fs.read(f, 0, 10).unwrap(), b"0123456789");
        // Reads crossing block boundaries:
        assert_eq!(fs.read(f, 3, 4).unwrap(), b"3456");
        // Further appends return increasing offsets:
        assert_eq!(fs.append(f, b"ab").unwrap(), 10);
        assert_eq!(fs.read(f, 8, 4).unwrap(), b"89ab");
    }

    #[test]
    fn append_fills_partial_tail_first() {
        let mut fs = fs(8);
        let f = fs.create("a", u64::MAX).unwrap();
        fs.append(f, b"abc").unwrap();
        fs.append(f, b"de").unwrap();
        assert_eq!(fs.blocks(f).len(), 1, "partial tail must be reused");
        fs.append(f, b"fghij").unwrap();
        assert_eq!(fs.blocks(f).len(), 2);
        assert_eq!(fs.read(f, 0, 10).unwrap(), b"abcdefghij");
    }

    #[test]
    fn read_past_eof_rejected() {
        let mut fs = fs(8);
        let f = fs.create("a", u64::MAX).unwrap();
        fs.append(f, b"abc").unwrap();
        assert!(matches!(
            fs.read(f, 2, 2),
            Err(WormError::ReadPastEof { .. })
        ));
        assert!(fs.read(f, 3, 0).unwrap().is_empty());
    }

    #[test]
    fn early_delete_refused_and_logged() {
        let mut fs = fs(8);
        let f = fs.create("email-2001-11", 1000).unwrap();
        let err = fs.delete(f, 999).unwrap_err();
        assert!(matches!(err, WormError::RetentionNotExpired { .. }));
        assert!(!fs.is_deleted(f));
        assert_eq!(fs.device().tamper_log().len(), 1);
        assert_eq!(fs.device().tamper_log()[0].kind, TamperKind::EarlyDelete);
        // After expiry the delete is legal and not logged.
        fs.delete(f, 1000).unwrap();
        assert!(fs.is_deleted(f));
        assert_eq!(fs.device().tamper_log().len(), 1);
        assert!(matches!(
            fs.open("email-2001-11"),
            Err(WormError::NoSuchFile(_))
        ));
    }

    #[test]
    fn tail_block_tracks_growth() {
        let mut fs = fs(4);
        let f = fs.create("a", u64::MAX).unwrap();
        assert_eq!(fs.tail_block(f), None);
        fs.append(f, b"abcd").unwrap();
        let t1 = fs.tail_block(f).unwrap();
        fs.append(f, b"e").unwrap();
        let t2 = fs.tail_block(f).unwrap();
        assert_ne!(t1, t2, "full tail forces a new block");
    }

    #[test]
    fn read_exact_at_matches_read() {
        let mut fs = fs(4);
        let f = fs.create("a", u64::MAX).unwrap();
        fs.append(f, b"0123456789").unwrap();
        let mut buf = [0u8; 4];
        fs.read_exact_at(f, 3, &mut buf).unwrap();
        assert_eq!(&buf, b"3456", "must cross the 4-byte block boundary");
        assert!(matches!(
            fs.read_exact_at(f, 8, &mut buf),
            Err(WormError::ReadPastEof { .. })
        ));
        let mut empty: [u8; 0] = [];
        fs.read_exact_at(f, 10, &mut empty).unwrap();
    }

    #[test]
    fn read_block_returns_committed_bytes_per_block() {
        let mut fs = fs(4);
        let f = fs.create("a", u64::MAX).unwrap();
        fs.append(f, b"0123456789").unwrap();
        assert_eq!(fs.num_blocks(f), 3);
        assert_eq!(fs.read_block(f, 0).unwrap(), b"0123");
        assert_eq!(fs.read_block(f, 1).unwrap(), b"4567");
        assert_eq!(fs.read_block(f, 2).unwrap(), b"89", "partial tail");
        assert!(matches!(
            fs.read_block(f, 3),
            Err(WormError::ReadPastEof { .. })
        ));
        // The tail block grows as the file does.
        fs.append(f, b"ab").unwrap();
        assert_eq!(fs.read_block(f, 2).unwrap(), b"89ab");
    }

    #[test]
    fn read_offset_overflow_is_eof_not_panic() {
        // Regression: `offset + len` used to wrap for offsets near
        // `u64::MAX`, bypass the EOF check, and panic indexing blocks.
        let mut fs = fs(8);
        let f = fs.create("a", u64::MAX).unwrap();
        fs.append(f, b"abc").unwrap();
        assert!(matches!(
            fs.read(f, u64::MAX - 1, 4),
            Err(WormError::ReadPastEof { .. })
        ));
        assert!(matches!(
            fs.read(f, u64::MAX, 1),
            Err(WormError::ReadPastEof { .. })
        ));
        let mut buf = [0u8; 4];
        assert!(matches!(
            fs.read_exact_at(f, u64::MAX - 1, &mut buf),
            Err(WormError::ReadPastEof { .. })
        ));
        // In-range reads still work.
        assert_eq!(fs.read(f, 1, 2).unwrap(), b"bc");
    }

    #[test]
    fn torn_append_surfaces_via_crash_recover() {
        use crate::fault::FaultPolicy;
        let mut fs = fs(4);
        let f = fs.create("a", u64::MAX).unwrap();
        fs.append(f, b"0123").unwrap();
        // Tear the next multi-block append mid-way: the 6-byte write
        // spans blocks (4 + 2); tear after 5 device bytes total commit.
        fs.arm_faults(FaultPolicy::torn_at_offset(9));
        let err = fs.append(f, b"456789").unwrap_err();
        assert!(matches!(err, WormError::InjectedFault { .. }), "{err}");
        // The file length counts only fully committed chunks...
        assert_eq!(fs.len(f), 8, "first chunk (4..8) completed");
        // ...but the device holds one more torn byte.
        fs.disarm_faults();
        let surfaced = fs.crash_recover().unwrap();
        assert_eq!(surfaced, 1);
        assert_eq!(fs.len(f), 9);
        assert_eq!(fs.read(f, 0, 9).unwrap(), b"012345678");
    }

    #[test]
    fn crash_recover_drops_empty_trailing_block() {
        use crate::fault::FaultPolicy;
        let mut fs = fs(4);
        let f = fs.create("a", u64::MAX).unwrap();
        fs.append(f, b"0123").unwrap(); // tail block exactly full
        assert_eq!(fs.blocks(f).len(), 1);
        // The next append allocates a new block, then dies before any
        // byte lands in it.
        fs.arm_faults(FaultPolicy::torn_at_offset(4));
        assert!(fs.append(f, b"45").is_err());
        assert_eq!(fs.blocks(f).len(), 2, "block allocated before the tear");
        fs.disarm_faults();
        assert_eq!(fs.crash_recover().unwrap(), 0);
        assert_eq!(fs.blocks(f).len(), 1, "empty tail block dropped");
        assert_eq!(fs.len(f), 4);
        // The remount is import-clean: lens match committed bytes.
        let table = fs.export_file_table();
        let device = fs.device().clone();
        assert!(WormFs::import(device, table).is_ok());
    }

    #[test]
    fn many_files_unique_blocks() {
        let mut fs = fs(8);
        let f1 = fs.create("f1", u64::MAX).unwrap();
        let f2 = fs.create("f2", u64::MAX).unwrap();
        fs.append(f1, b"xxxx").unwrap();
        fs.append(f2, b"yyyy").unwrap();
        assert_ne!(fs.blocks(f1)[0], fs.blocks(f2)[0]);
        assert_eq!(fs.num_files(), 2);
        assert_eq!(fs.read(f1, 0, 4).unwrap(), b"xxxx");
        assert_eq!(fs.read(f2, 0, 4).unwrap(), b"yyyy");
    }
}
