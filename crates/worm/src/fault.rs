//! Deterministic fault injection for the WORM device.
//!
//! Crash-consistency testing needs a way to kill the write path at an
//! arbitrary byte — in the middle of a posting, between a dictionary
//! record and its first posting, halfway through a DOCMETA record — and
//! then prove that recovery converges to the last fully committed
//! document.  [`FaultPolicy`] supplies that: armed on a [`WormDevice`]
//! (see [`WormDevice::arm_faults`](crate::WormDevice::arm_faults)), it
//! intercepts every `append` and can
//!
//! * **fail the Nth append** outright (no bytes reach the device),
//! * **tear a write**: commit only a prefix of the bytes, then fail —
//!   modelling a power cut mid-sector, and
//! * **error once, then heal** — modelling a transient I/O error that a
//!   retry loop would survive.
//!
//! Policies are deterministic.  The seeded constructor uses the same
//! SplitMix64 stream as the schedule explorer in `tks-core::sched`, so a
//! failing seed printed by a test harness replays the exact same fault.
//!
//! A fault is an *availability* event, never silent corruption: the torn
//! prefix is committed (WORM bytes cannot be taken back) and the caller
//! gets [`WormError::InjectedFault`](crate::WormError).  Recovery layers
//! treat the residue as a quarantined torn tail, distinct from tampering.

/// What the armed policy does to one `append` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Let the append through untouched.
    Proceed,
    /// Commit only the first `keep` bytes, then report the injected fault.
    /// `keep == 0` models an append that failed before any byte landed.
    Tear {
        /// Bytes of the append that still reach the device.
        keep: usize,
    },
}

/// When the policy fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Trigger {
    /// Fire on the `n`-th append call (0-based), committing `keep` bytes.
    NthAppend { n: u64, keep: usize },
    /// Fire on the append that crosses cumulative device offset `offset`,
    /// committing exactly the bytes below the offset.
    ByteOffset { offset: u64 },
}

/// A deterministic fault-injection policy for [`WormDevice`]
/// (crate::WormDevice) appends.
///
/// After the trigger fires the policy goes into one of two regimes:
///
/// * **crashed** (default): every later append also fails with zero bytes
///   committed — the process is dead, nothing more reaches the device;
/// * **healed** ([`FaultPolicy::healing`]): later appends succeed — the
///   error was transient.
///
/// # Example
///
/// ```
/// use tks_worm::{FaultPolicy, WormDevice, WormError};
///
/// let mut dev = WormDevice::new(64);
/// let b = dev.alloc_block();
/// dev.arm_faults(FaultPolicy::torn_nth_append(1, 3));
/// dev.append(b, b"whole-record").unwrap();
/// let err = dev.append(b, b"torn-record").unwrap_err();
/// assert!(matches!(err, WormError::InjectedFault { committed: 3, .. }));
/// // Only the torn prefix of the second append is on the device.
/// assert_eq!(dev.read_all(b).unwrap(), b"whole-recordtor");
/// ```
#[derive(Debug, Clone)]
pub struct FaultPolicy {
    trigger: Trigger,
    /// `true`: transient error — appends after the trigger succeed.
    /// `false`: crash — every append after the trigger fails.
    heal: bool,
    appends_seen: u64,
    tripped: bool,
}

/// SplitMix64 step — the same generator as `tks-core::sched::SchedRng`,
/// duplicated here (worm is below core in the dependency order) so a
/// seed means the same stream in both crates.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPolicy {
    /// Fail the `n`-th append call (0-based) with nothing committed; every
    /// later append fails too (crash regime).
    pub fn fail_nth_append(n: u64) -> Self {
        Self {
            trigger: Trigger::NthAppend { n, keep: 0 },
            heal: false,
            appends_seen: 0,
            tripped: false,
        }
    }

    /// Tear the `n`-th append call (0-based): its first `keep` bytes
    /// commit, the rest are lost, and the call fails; every later append
    /// fails too (crash regime).
    pub fn torn_nth_append(n: u64, keep: usize) -> Self {
        Self {
            trigger: Trigger::NthAppend { n, keep },
            heal: false,
            appends_seen: 0,
            tripped: false,
        }
    }

    /// Tear the append that crosses cumulative device byte `offset`:
    /// exactly the bytes below the offset commit.  Sweeping `offset` over
    /// the device's byte range kills the write path at every possible
    /// byte boundary — the crash-recovery harness's exhaustive mode.
    pub fn torn_at_offset(offset: u64) -> Self {
        Self {
            trigger: Trigger::ByteOffset { offset },
            heal: false,
            appends_seen: 0,
            tripped: false,
        }
    }

    /// Fail the `n`-th append call with nothing committed, then heal:
    /// later appends succeed (transient-error regime).
    pub fn error_once_then_heal(n: u64) -> Self {
        Self {
            trigger: Trigger::NthAppend { n, keep: 0 },
            heal: true,
            appends_seen: 0,
            tripped: false,
        }
    }

    /// Derive a policy from a seed, deterministically: the SplitMix64
    /// stream picks one of the three fault shapes, an append ordinal
    /// below `horizon`, and (for torn writes) a prefix length.  The same
    /// seed always yields the same policy, so harnesses can log the seed
    /// of a failing run and replay it.
    pub fn seeded(seed: u64, horizon: u64) -> Self {
        let mut state = seed;
        let n = splitmix64(&mut state) % horizon.max(1);
        match splitmix64(&mut state) % 3 {
            0 => Self::fail_nth_append(n),
            1 => Self::torn_nth_append(n, (splitmix64(&mut state) % 16) as usize),
            _ => Self::error_once_then_heal(n),
        }
    }

    /// Switch the post-trigger regime to healing (transient error).
    pub fn healing(mut self) -> Self {
        self.heal = true;
        self
    }

    /// Whether the trigger has fired at least once.
    pub fn tripped(&self) -> bool {
        self.tripped
    }

    /// Decide the fate of the next append of `len` bytes, given the
    /// device's cumulative committed byte count.  Called by
    /// [`WormDevice::append`](crate::WormDevice::append) only.
    pub(crate) fn on_append(&mut self, bytes_committed: u64, len: usize) -> FaultAction {
        if self.tripped {
            return if self.heal {
                FaultAction::Proceed
            } else {
                FaultAction::Tear { keep: 0 }
            };
        }
        let fire = match self.trigger {
            Trigger::NthAppend { n, .. } => self.appends_seen == n,
            // Fire on the append whose byte range reaches the offset.
            Trigger::ByteOffset { offset } => bytes_committed + len as u64 > offset,
        };
        self.appends_seen += 1;
        if !fire {
            return FaultAction::Proceed;
        }
        self.tripped = true;
        let keep = match self.trigger {
            Trigger::NthAppend { keep, .. } => keep.min(len),
            Trigger::ByteOffset { offset } => offset.saturating_sub(bytes_committed) as usize,
        };
        FaultAction::Tear { keep }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nth_append_counts_from_zero() {
        let mut p = FaultPolicy::fail_nth_append(2);
        assert_eq!(p.on_append(0, 4), FaultAction::Proceed);
        assert_eq!(p.on_append(4, 4), FaultAction::Proceed);
        assert_eq!(p.on_append(8, 4), FaultAction::Tear { keep: 0 });
        assert!(p.tripped());
        // Crash regime: everything later fails too.
        assert_eq!(p.on_append(8, 4), FaultAction::Tear { keep: 0 });
    }

    #[test]
    fn torn_keep_clamped_to_len() {
        let mut p = FaultPolicy::torn_nth_append(0, 100);
        assert_eq!(p.on_append(0, 7), FaultAction::Tear { keep: 7 });
    }

    #[test]
    fn byte_offset_tears_mid_append() {
        let mut p = FaultPolicy::torn_at_offset(10);
        assert_eq!(p.on_append(0, 8), FaultAction::Proceed); // bytes 0..8
        assert_eq!(p.on_append(8, 8), FaultAction::Tear { keep: 2 }); // crosses 10
    }

    #[test]
    fn byte_offset_zero_keeps_nothing() {
        let mut p = FaultPolicy::torn_at_offset(0);
        assert_eq!(p.on_append(0, 8), FaultAction::Tear { keep: 0 });
    }

    #[test]
    fn heal_lets_later_appends_through() {
        let mut p = FaultPolicy::error_once_then_heal(1);
        assert_eq!(p.on_append(0, 4), FaultAction::Proceed);
        assert_eq!(p.on_append(4, 4), FaultAction::Tear { keep: 0 });
        assert_eq!(p.on_append(4, 4), FaultAction::Proceed);
        assert_eq!(p.on_append(8, 4), FaultAction::Proceed);
    }

    #[test]
    fn seeded_is_deterministic() {
        for seed in 0..64u64 {
            let mut a = FaultPolicy::seeded(seed, 100);
            let mut b = FaultPolicy::seeded(seed, 100);
            for i in 0..200u64 {
                assert_eq!(a.on_append(i * 4, 4), b.on_append(i * 4, 4), "seed {seed}");
            }
            assert!(a.tripped(), "seed {seed} must fire within the horizon");
        }
    }
}
