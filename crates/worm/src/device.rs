//! The WORM block device: software-enforced write-once semantics with the
//! append extension of Section 2.2 of the paper.
//!
//! Commercial compliance appliances (EMC Centera, IBM DR550, NetApp
//! SnapLock) are rewritable magnetic disks whose firmware/software refuses
//! modification of committed data.  The paper additionally assumes — based
//! on discussions with storage vendors — that the interface is extended to
//! allow *appending* new bytes to partially-written blocks and files, which
//! is what makes real-time inverted-index maintenance feasible.
//!
//! [`WormDevice`] models exactly that contract:
//!
//! * blocks are allocated with [`WormDevice::alloc_block`] and have a fixed
//!   capacity ([`WormDevice::block_size`]);
//! * [`WormDevice::append`] adds bytes after the committed tail of a block —
//!   this is the *only* mutation the device accepts;
//! * [`WormDevice::try_overwrite`] models an adversarial attempt to rewrite
//!   committed bytes: it always fails and is recorded in the tamper log;
//! * reads never fail for committed ranges and never change state.
//!
//! The adversary Mala may freely call `alloc_block` and `append` — write
//! access control is explicitly *not* part of the trust base (she can act as
//! superuser).  Trustworthiness of the structures built above this device
//! therefore may rely **only** on the immutability of committed bytes.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a block on a [`WormDevice`].
///
/// Blocks are numbered densely in allocation order, which the experiment
/// harnesses exploit to model disk layout (consecutive IDs ≈ consecutive
/// LBAs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct BlockId(pub u64);

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk#{}", self.0)
    }
}

/// Why an operation on the WORM device was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WormError {
    /// The block ID does not exist on this device.
    NoSuchBlock(BlockId),
    /// An append would exceed the fixed block capacity.
    BlockFull {
        /// Target block.
        block: BlockId,
        /// Bytes already committed in the block.
        committed: usize,
        /// Bytes the caller attempted to append.
        requested: usize,
        /// Fixed capacity of every block on the device.
        capacity: usize,
    },
    /// A read touched bytes beyond the committed tail of the block.
    ReadBeyondCommitted {
        /// Target block.
        block: BlockId,
        /// Requested end offset.
        end: usize,
        /// Bytes committed in the block.
        committed: usize,
    },
    /// An attempt was made to modify committed bytes.  The device refuses
    /// and logs a [`TamperAttempt`]; see [`WormDevice::tamper_log`].
    OverwriteRejected {
        /// Target block.
        block: BlockId,
        /// Offset of the first committed byte the caller tried to change.
        offset: usize,
    },
    /// The named file does not exist (file-system layer).
    NoSuchFile(String),
    /// A file with this name already exists (file-system layer).
    FileExists(String),
    /// Premature deletion refused: the retention period has not expired.
    RetentionNotExpired {
        /// File name.
        name: String,
        /// Earliest time at which deletion becomes legal.
        expires_at: u64,
        /// The (logical) time of the deletion attempt.
        now: u64,
    },
    /// A read touched a byte range beyond the end of a file.
    ReadPastEof {
        /// File name.
        name: String,
        /// Requested end offset.
        end: u64,
        /// Committed length of the file.
        len: u64,
    },
    /// A sharded directory layout defect (duplicate or missing shard
    /// directory, unreadable archive root); see
    /// [`LayoutError`](crate::LayoutError).
    Layout(crate::LayoutError),
    /// A replicated append arrived at the wrong offset: the replica's
    /// committed length does not match where the primary committed these
    /// bytes, i.e. the replica missed, duplicated, or reordered part of
    /// the append stream (see [`WormFs::replay`](crate::WormFs::replay)).
    ReplayMismatch {
        /// File name.
        name: String,
        /// Offset the entry was committed at on the primary.
        expected: u64,
        /// Committed length of the file on this replica.
        actual: u64,
    },
    /// An armed [`FaultPolicy`](crate::FaultPolicy) killed this append
    /// (crash/fault simulation).  The first `committed` bytes of the
    /// append are durably on the device — a torn write — and the rest
    /// are lost.  This is an availability fault, never tampering.
    InjectedFault {
        /// The block targeted by the failed append.
        block: BlockId,
        /// Bytes of the failed append that still committed (torn prefix).
        committed: usize,
        /// Bytes the caller attempted to append.
        requested: usize,
    },
}

impl fmt::Display for WormError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WormError::NoSuchBlock(b) => write!(f, "no such block: {b}"),
            WormError::BlockFull { block, committed, requested, capacity } => write!(
                f,
                "append of {requested} B to {block} would exceed capacity ({committed}/{capacity} B committed)"
            ),
            WormError::ReadBeyondCommitted { block, end, committed } => write!(
                f,
                "read to offset {end} of {block} exceeds committed length {committed}"
            ),
            WormError::OverwriteRejected { block, offset } => write!(
                f,
                "WORM violation: overwrite of committed byte {offset} in {block} rejected"
            ),
            WormError::NoSuchFile(n) => write!(f, "no such file: {n}"),
            WormError::FileExists(n) => write!(f, "file already exists: {n}"),
            WormError::RetentionNotExpired { name, expires_at, now } => write!(
                f,
                "deletion of '{name}' at t={now} rejected: retention expires at t={expires_at}"
            ),
            WormError::ReadPastEof { name, end, len } => {
                write!(f, "read to offset {end} of '{name}' exceeds length {len}")
            }
            WormError::Layout(e) => write!(f, "archive layout: {e}"),
            WormError::ReplayMismatch { name, expected, actual } => write!(
                f,
                "replay of '{name}' at offset {expected} refused: replica committed length is {actual}"
            ),
            WormError::InjectedFault {
                block,
                committed,
                requested,
            } => write!(
                f,
                "injected fault: append of {requested} B to {block} failed after {committed} B"
            ),
        }
    }
}

impl std::error::Error for WormError {}

/// The kind of rejected operation recorded in the tamper log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TamperKind {
    /// Attempt to overwrite committed bytes in a block.
    Overwrite,
    /// Attempt to delete a file before its retention period expired.
    EarlyDelete,
}

/// A record of a rejected mutation.
///
/// In the paper's model, Bob's audits treat any entry here as evidence of a
/// cover-up attempt ("violations … should trigger a report of attempted
/// malicious activity").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TamperAttempt {
    /// What was attempted.
    pub kind: TamperKind,
    /// The block involved, when the attempt targeted a block.
    pub block: Option<BlockId>,
    /// The file involved, when the attempt targeted a file.
    pub file: Option<String>,
    /// Human-readable detail for the audit report.
    pub detail: String,
}

#[derive(Debug, Default, Clone)]
struct Block {
    /// Committed bytes; `data.len()` is the committed length.
    data: Vec<u8>,
}

/// An in-memory model of a WORM block device with the append extension.
///
/// See the [module documentation](self) for the contract.  All methods are
/// infallible for well-formed callers; the `Err` paths model either
/// programming errors (out-of-range reads) or adversarial behaviour
/// (overwrites), the latter being additionally recorded in the tamper log.
///
/// # Example
///
/// ```
/// use tks_worm::{WormDevice, WormError};
///
/// let mut dev = WormDevice::new(4096);
/// let b = dev.alloc_block();
/// let off = dev.append(b, b"posting").unwrap();
/// assert_eq!(off, 0);
/// assert_eq!(dev.read(b, 0, 7).unwrap(), b"posting");
/// // Committed bytes are immutable, even for a superuser:
/// let err = dev.try_overwrite(b, 0, b"POSTING").unwrap_err();
/// assert!(matches!(err, WormError::OverwriteRejected { .. }));
/// assert_eq!(dev.tamper_log().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct WormDevice {
    block_size: usize,
    blocks: Vec<Block>,
    tamper_log: Vec<TamperAttempt>,
    bytes_appended: u64,
    /// Armed fault-injection policy, if any (crash simulation).
    fault: Option<crate::fault::FaultPolicy>,
}

impl WormDevice {
    /// Create an empty device whose blocks all have `block_size` bytes of
    /// capacity.  The paper uses 4 KB in Section 3's motivating example and
    /// 8 KB everywhere else.
    ///
    /// # Panics
    ///
    /// Panics if `block_size == 0`.
    pub fn new(block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        Self {
            block_size,
            blocks: Vec::new(),
            tamper_log: Vec::new(),
            bytes_appended: 0,
            fault: None,
        }
    }

    /// Arm a fault-injection policy: every subsequent [`append`]
    /// (Self::append) consults it and may fail or tear (see
    /// [`FaultPolicy`](crate::FaultPolicy)).  Replaces any armed policy.
    pub fn arm_faults(&mut self, policy: crate::fault::FaultPolicy) {
        self.fault = Some(policy);
    }

    /// Disarm fault injection, returning the policy (so harnesses can
    /// inspect [`FaultPolicy::tripped`](crate::FaultPolicy::tripped)).
    pub fn disarm_faults(&mut self) -> Option<crate::fault::FaultPolicy> {
        self.fault.take()
    }

    /// Whether an armed policy has fired at least once.
    pub fn fault_tripped(&self) -> bool {
        self.fault.as_ref().is_some_and(|p| p.tripped())
    }

    /// Fixed capacity of every block, in bytes.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of blocks allocated so far.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Total bytes committed across all blocks.
    pub fn bytes_committed(&self) -> u64 {
        self.bytes_appended
    }

    /// Allocate a fresh, empty block and return its ID.
    ///
    /// Allocation itself performs no I/O in the paper's accounting — cost is
    /// charged when the block is written out of the storage cache.
    pub fn alloc_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u64);
        self.blocks.push(Block::default());
        id
    }

    /// Append `bytes` after the committed tail of `block`; returns the
    /// offset at which the bytes were committed.
    ///
    /// This is the device's *only* mutation.  Appends are permitted to
    /// anyone (including Mala), per the threat model.
    pub fn append(&mut self, block: BlockId, bytes: &[u8]) -> crate::Result<usize> {
        let cap = self.block_size;
        let committed = self.block_ref(block)?.data.len();
        if committed + bytes.len() > cap {
            return Err(WormError::BlockFull {
                block,
                committed,
                requested: bytes.len(),
                capacity: cap,
            });
        }
        // Fault injection sees only legal appends (a capacity error above
        // must never be masked by — or counted as — an injected fault).
        if let Some(policy) = self.fault.as_mut() {
            if let crate::fault::FaultAction::Tear { keep } =
                policy.on_append(self.bytes_appended, bytes.len())
            {
                let keep = keep.min(bytes.len());
                self.block_mut(block)?
                    .data
                    .extend_from_slice(&bytes[..keep]);
                self.bytes_appended += keep as u64;
                return Err(WormError::InjectedFault {
                    block,
                    committed: keep,
                    requested: bytes.len(),
                });
            }
        }
        self.block_mut(block)?.data.extend_from_slice(bytes);
        self.bytes_appended += bytes.len() as u64;
        Ok(committed)
    }

    /// Committed length of `block`, in bytes.
    pub fn committed_len(&self, block: BlockId) -> crate::Result<usize> {
        Ok(self.block_ref(block)?.data.len())
    }

    /// Remaining append capacity of `block`, in bytes.
    pub fn remaining(&self, block: BlockId) -> crate::Result<usize> {
        Ok(self.block_size - self.block_ref(block)?.data.len())
    }

    /// Read `len` committed bytes of `block` starting at `offset`.
    pub fn read(&self, block: BlockId, offset: usize, len: usize) -> crate::Result<&[u8]> {
        let blk = self.block_ref(block)?;
        let end = offset + len;
        if end > blk.data.len() {
            return Err(WormError::ReadBeyondCommitted {
                block,
                end,
                committed: blk.data.len(),
            });
        }
        Ok(&blk.data[offset..end])
    }

    /// Read all committed bytes of `block`.
    pub fn read_all(&self, block: BlockId) -> crate::Result<&[u8]> {
        let blk = self.block_ref(block)?;
        Ok(&blk.data)
    }

    /// Adversarial entry point: attempt to modify committed bytes.
    ///
    /// Always fails with [`WormError::OverwriteRejected`] (the hardware/
    /// firmware trust assumption of the paper: "the WORM device operates
    /// properly, i.e. it never overwrites data") and records a
    /// [`TamperAttempt`] for later audit.
    pub fn try_overwrite(
        &mut self,
        block: BlockId,
        offset: usize,
        bytes: &[u8],
    ) -> crate::Result<()> {
        // Validate the block exists first so the caller can distinguish a
        // bad ID from a genuine violation.
        self.block_ref(block)?;
        self.tamper_log.push(TamperAttempt {
            kind: TamperKind::Overwrite,
            block: Some(block),
            file: None,
            detail: format!(
                "overwrite of {} byte(s) at offset {offset} of {block} rejected",
                bytes.len()
            ),
        });
        Err(WormError::OverwriteRejected { block, offset })
    }

    /// The audit log of rejected mutations.
    pub fn tamper_log(&self) -> &[TamperAttempt] {
        &self.tamper_log
    }

    /// Record a tamper attempt detected by a higher layer (e.g. the
    /// file-system layer refusing an early delete, or an index structure
    /// detecting a monotonicity violation).
    pub fn report_tamper(&mut self, attempt: TamperAttempt) {
        self.tamper_log.push(attempt);
    }

    fn block_ref(&self, block: BlockId) -> crate::Result<&Block> {
        self.blocks
            .get(block.0 as usize)
            .ok_or(WormError::NoSuchBlock(block))
    }

    fn block_mut(&mut self, block: BlockId) -> crate::Result<&mut Block> {
        self.blocks
            .get_mut(block.0 as usize)
            .ok_or(WormError::NoSuchBlock(block))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_dense_and_ordered() {
        let mut dev = WormDevice::new(64);
        let a = dev.alloc_block();
        let b = dev.alloc_block();
        assert_eq!(a, BlockId(0));
        assert_eq!(b, BlockId(1));
        assert_eq!(dev.num_blocks(), 2);
    }

    #[test]
    fn append_returns_offsets_and_reads_back() {
        let mut dev = WormDevice::new(64);
        let b = dev.alloc_block();
        assert_eq!(dev.append(b, b"abc").unwrap(), 0);
        assert_eq!(dev.append(b, b"defg").unwrap(), 3);
        assert_eq!(dev.read(b, 0, 7).unwrap(), b"abcdefg");
        assert_eq!(dev.read(b, 3, 4).unwrap(), b"defg");
        assert_eq!(dev.committed_len(b).unwrap(), 7);
        assert_eq!(dev.remaining(b).unwrap(), 57);
        assert_eq!(dev.bytes_committed(), 7);
    }

    #[test]
    fn append_rejected_when_block_full() {
        let mut dev = WormDevice::new(4);
        let b = dev.alloc_block();
        dev.append(b, b"abcd").unwrap();
        let err = dev.append(b, b"e").unwrap_err();
        assert!(matches!(
            err,
            WormError::BlockFull {
                committed: 4,
                requested: 1,
                ..
            }
        ));
        // The failed append must not have changed state.
        assert_eq!(dev.read_all(b).unwrap(), b"abcd");
    }

    #[test]
    fn append_exactly_filling_succeeds() {
        let mut dev = WormDevice::new(4);
        let b = dev.alloc_block();
        dev.append(b, b"ab").unwrap();
        assert_eq!(dev.append(b, b"cd").unwrap(), 2);
        assert_eq!(dev.remaining(b).unwrap(), 0);
    }

    #[test]
    fn read_beyond_committed_rejected() {
        let mut dev = WormDevice::new(64);
        let b = dev.alloc_block();
        dev.append(b, b"abc").unwrap();
        let err = dev.read(b, 1, 3).unwrap_err();
        assert!(matches!(
            err,
            WormError::ReadBeyondCommitted {
                end: 4,
                committed: 3,
                ..
            }
        ));
    }

    #[test]
    fn unknown_block_is_error() {
        let dev = WormDevice::new(64);
        assert!(matches!(
            dev.read(BlockId(9), 0, 0),
            Err(WormError::NoSuchBlock(BlockId(9)))
        ));
    }

    #[test]
    fn overwrite_always_rejected_and_logged() {
        let mut dev = WormDevice::new(64);
        let b = dev.alloc_block();
        dev.append(b, b"record").unwrap();
        for i in 0..3 {
            let err = dev.try_overwrite(b, i, b"x").unwrap_err();
            assert!(matches!(err, WormError::OverwriteRejected { .. }));
        }
        assert_eq!(dev.tamper_log().len(), 3);
        assert!(dev
            .tamper_log()
            .iter()
            .all(|t| t.kind == TamperKind::Overwrite));
        // Data unchanged.
        assert_eq!(dev.read_all(b).unwrap(), b"record");
    }

    #[test]
    fn overwrite_on_missing_block_is_not_logged() {
        let mut dev = WormDevice::new(64);
        let err = dev.try_overwrite(BlockId(3), 0, b"x").unwrap_err();
        assert!(matches!(err, WormError::NoSuchBlock(_)));
        assert!(dev.tamper_log().is_empty());
    }

    #[test]
    fn errors_display() {
        let e = WormError::OverwriteRejected {
            block: BlockId(1),
            offset: 7,
        };
        assert!(e.to_string().contains("WORM violation"));
        let e = WormError::NoSuchFile("x".into());
        assert!(e.to_string().contains("no such file"));
    }
}
