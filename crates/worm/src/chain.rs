//! SHA-256 commit chain: verifiable tamper evidence for commit points.
//!
//! The paper's §4 countermeasure against ranking attacks is
//! *verification*: an investigator must be able to prove that query
//! results came from an untampered archive prefix. The WORM tamper log
//! records *rejected* mutations, but it is itself bookkeeping — an
//! adversary with raw media access could rewrite both the data and the
//! log. The commit chain closes that gap with content: every commit
//! point seals a [`ChainLink`] whose digest covers the canonical bytes
//! of that commit, chained to the previous head. Recovery recomputes
//! the chain over the surviving structures and refuses a trusted
//! verdict unless the recomputed head matches the persisted one, so a
//! flipped byte anywhere in the committed prefix is detected even when
//! the tamper log is empty.
//!
//! Layering: this module is pure — hashing and chaining only, no I/O.
//! `tks_core` owns the canonical framing of a commit (which bytes are
//! absorbed, in which order) and persists the 72-byte encoded links to
//! a WORM file alongside the archive.
//!
//! The SHA-256 implementation is self-contained (FIPS 180-4), because
//! the workspace vendors no cryptography crate and the wire layer and
//! CLI must be able to recompute digests without new dependencies.

use std::fmt;

// ---------------------------------------------------------------------------
// SHA-256 (FIPS 180-4) — dependency-free, byte-oriented.
// ---------------------------------------------------------------------------

/// SHA-256 round constants: fractional parts of cube roots of the
/// first 64 primes.
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash state: fractional parts of square roots of the first
/// 8 primes.
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
///
/// `Clone` is deliberate: [`CommitChain::seal`] snapshots the in-flight
/// digest without consuming it, so a failed commit can still be
/// aborted and the pending state reset.
#[derive(Clone, Debug)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// A fresh hasher in the FIPS 180-4 initial state.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buf: [0u8; 64],
            buf_len: 0,
            total: 0,
        }
    }

    /// Absorb `data` into the running digest.
    // audit:allow(no-panic-in-prod) — all indexing below is bounded by
    // `buf_len < 64` (maintained as an invariant) and fixed-size array
    // arithmetic; no index can exceed the 64-byte block buffer.
    pub fn update(&mut self, data: &[u8]) {
        self.total = self.total.wrapping_add(data.len() as u64);
        let mut input = data;
        // Top up a partial block first.
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(input.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&input[..take]);
            self.buf_len += take;
            input = &input[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        // Whole blocks straight from the input.
        while input.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&input[..64]);
            self.compress(&block);
            input = &input[64..];
        }
        // Stash the tail.
        if !input.is_empty() {
            self.buf[..input.len()].copy_from_slice(input);
            self.buf_len = input.len();
        }
    }

    /// Finish the digest, consuming the hasher.
    // audit:allow(no-panic-in-prod) — indexing is over fixed 64-byte
    // padding blocks; `buf_len < 64` ensures the length field and the
    // 0x80 marker fit without overflow.
    pub fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.total.wrapping_mul(8);
        // Padding: 0x80, zeros, 8-byte big-endian bit length.
        let mut pad = [0u8; 128];
        pad[0] = 0x80;
        let pad_len = if self.buf_len < 56 {
            56 - self.buf_len
        } else {
            120 - self.buf_len
        };
        pad[pad_len..pad_len + 8].copy_from_slice(&bit_len.to_be_bytes());
        self.update_padding(&pad[..pad_len + 8]);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// Like `update`, but must not touch `total` (the bit length is
    /// already latched).
    // audit:allow(no-panic-in-prod) — same bounded-buffer invariant as
    // `update`; padding input is at most two blocks.
    fn update_padding(&mut self, data: &[u8]) {
        let mut input = data;
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(input.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&input[..take]);
            self.buf_len += take;
            input = &input[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while input.len() >= 64 {
            let mut block = [0u8; 64];
            block.copy_from_slice(&input[..64]);
            self.compress(&block);
            input = &input[64..];
        }
        debug_assert!(input.is_empty(), "padding must end block-aligned");
    }

    /// One compression round over a 64-byte block.
    // audit:allow(no-panic-in-prod) — `w` is a fixed [u32; 64] schedule
    // indexed by loop counters bounded at 64; `block` chunks are exact.
    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// One-shot SHA-256 of `data`.
pub fn sha256(data: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

// ---------------------------------------------------------------------------
// Chain head / link.
// ---------------------------------------------------------------------------

/// Domain-separation tag for the genesis head.
const GENESIS_TAG: &[u8] = b"tks-chain-genesis-v1";
/// Domain-separation tag for link heads.
const LINK_TAG: &[u8] = b"tks-chain-link-v1";

/// The head of a commit chain after some number of sealed commits.
///
/// `Default` is the genesis head (the chain before any commit), so an
/// empty archive has a well-defined, recomputable head.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct ChainHead(pub [u8; 32]);

impl Default for ChainHead {
    fn default() -> Self {
        Self::genesis()
    }
}

impl ChainHead {
    /// The head of an empty chain: `SHA256("tks-chain-genesis-v1")`.
    pub fn genesis() -> Self {
        ChainHead(sha256(GENESIS_TAG))
    }

    /// Lowercase hex encoding (64 chars).
    pub fn to_hex(self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.0 {
            s.push(char::from_digit((b >> 4) as u32, 16).unwrap_or('0'));
            s.push(char::from_digit((b & 0xf) as u32, 16).unwrap_or('0'));
        }
        s
    }

    /// Parse a 64-char hex string back into a head.
    // audit:allow(no-panic-in-prod) — `chunks_exact(2)` over a
    // length-checked 64-byte slice yields exactly 2-byte windows, and
    // `out` has exactly 32 slots for the 32 chunks.
    pub fn from_hex(s: &str) -> Result<Self, ChainError> {
        let bytes = s.as_bytes();
        if bytes.len() != 64 {
            return Err(ChainError::BadHex { len: bytes.len() });
        }
        let mut out = [0u8; 32];
        for (i, pair) in bytes.chunks_exact(2).enumerate() {
            let hi = (pair[0] as char)
                .to_digit(16)
                .ok_or(ChainError::BadHex { len: bytes.len() })?;
            let lo = (pair[1] as char)
                .to_digit(16)
                .ok_or(ChainError::BadHex { len: bytes.len() })?;
            out[i] = ((hi << 4) | lo) as u8;
        }
        Ok(ChainHead(out))
    }
}

impl fmt::Display for ChainHead {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl fmt::Debug for ChainHead {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ChainHead({})", self.to_hex())
    }
}

/// A sealed commit point: the previous head, the digest of this
/// commit's canonical bytes, and the watermark (document count) after
/// the commit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChainLink {
    /// Head of the chain before this commit.
    pub prev_head: ChainHead,
    /// SHA-256 over the canonical framing of this commit's content.
    pub commit_digest: [u8; 32],
    /// Document count visible after this commit (doc id + 1).
    pub watermark: u64,
}

impl ChainLink {
    /// Size of the on-device encoding: prev_head ‖ commit_digest ‖
    /// watermark (LE).
    pub const ENCODED: usize = 72;

    /// Head this link advances the chain to:
    /// `SHA256(tag ‖ prev_head ‖ commit_digest ‖ watermark_le)`.
    pub fn head(&self) -> ChainHead {
        let mut h = Sha256::new();
        h.update(LINK_TAG);
        h.update(&self.prev_head.0);
        h.update(&self.commit_digest);
        h.update(&self.watermark.to_le_bytes());
        ChainHead(h.finalize())
    }

    /// Fixed 72-byte encoding for WORM persistence.
    // audit:allow(no-panic-in-prod) — all ranges are constant and inside
    // the fixed 72-byte array (32 + 32 + 8).
    pub fn encode(&self) -> [u8; Self::ENCODED] {
        let mut out = [0u8; Self::ENCODED];
        out[..32].copy_from_slice(&self.prev_head.0);
        out[32..64].copy_from_slice(&self.commit_digest);
        out[64..].copy_from_slice(&self.watermark.to_le_bytes());
        out
    }

    /// Decode a 72-byte record. Errors on any other length.
    // audit:allow(no-panic-in-prod) — the length is checked to be
    // exactly 72 before any constant-range slicing.
    pub fn decode(bytes: &[u8]) -> Result<Self, ChainError> {
        if bytes.len() != Self::ENCODED {
            return Err(ChainError::BadRecordLength { len: bytes.len() });
        }
        let mut prev = [0u8; 32];
        prev.copy_from_slice(&bytes[..32]);
        let mut digest = [0u8; 32];
        digest.copy_from_slice(&bytes[32..64]);
        let mut wm = [0u8; 8];
        wm.copy_from_slice(&bytes[64..]);
        Ok(ChainLink {
            prev_head: ChainHead(prev),
            commit_digest: digest,
            watermark: u64::from_le_bytes(wm),
        })
    }
}

/// Errors from chain encoding, decoding, and advancement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// A hex head string had the wrong length or a non-hex digit.
    BadHex {
        /// Length of the offending string.
        len: usize,
    },
    /// A persisted link record was not exactly 72 bytes.
    BadRecordLength {
        /// Length of the offending record.
        len: usize,
    },
    /// A link's `prev_head` does not match the chain's current head.
    PrevHeadMismatch {
        /// The head the chain is currently at.
        expected: ChainHead,
        /// The `prev_head` the link claimed.
        found: ChainHead,
    },
    /// A link's watermark is not the next expected watermark.
    WatermarkMismatch {
        /// The watermark the chain expected (sealed commits + 1).
        expected: u64,
        /// The watermark the link claimed.
        found: u64,
    },
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::BadHex { len } => {
                write!(f, "invalid hex chain head (length {len}, expected 64)")
            }
            ChainError::BadRecordLength { len } => write!(
                f,
                "chain link record is {len} bytes, expected {}",
                ChainLink::ENCODED
            ),
            ChainError::PrevHeadMismatch { expected, found } => write!(
                f,
                "chain link prev_head {found} does not extend current head {expected}"
            ),
            ChainError::WatermarkMismatch { expected, found } => {
                write!(f, "chain link watermark {found}, expected {expected}")
            }
        }
    }
}

impl std::error::Error for ChainError {}

// ---------------------------------------------------------------------------
// CommitChain.
// ---------------------------------------------------------------------------

/// Domain-separation tag for per-commit content digests.
const COMMIT_TAG: &[u8] = b"tks-commit-v1";

/// The running commit chain: one head per sealed watermark, plus an
/// in-flight digest for the commit currently being absorbed.
///
/// The caller drives the canonical framing via the `absorb_*` methods,
/// then either [`seal`](Self::seal) + [`advance`](Self::advance) on
/// success or [`abort`](Self::abort) on failure. `heads[w]` is the
/// chain head at watermark `w`, so pinned-snapshot responses can
/// report the head their watermark was sealed under.
#[derive(Clone, Debug)]
pub struct CommitChain {
    heads: Vec<ChainHead>,
    pending: Sha256,
}

impl Default for CommitChain {
    fn default() -> Self {
        Self::new()
    }
}

impl CommitChain {
    /// A chain with no sealed commits (head = genesis).
    pub fn new() -> Self {
        CommitChain {
            heads: vec![ChainHead::genesis()],
            pending: Self::fresh_pending(),
        }
    }

    fn fresh_pending() -> Sha256 {
        let mut h = Sha256::new();
        h.update(COMMIT_TAG);
        h
    }

    /// Current head (after the last sealed commit).
    pub fn head(&self) -> ChainHead {
        *self.heads.last().unwrap_or(&ChainHead::genesis())
    }

    /// Number of sealed commits.
    pub fn sealed(&self) -> u64 {
        (self.heads.len() as u64).saturating_sub(1)
    }

    /// Head at a historical watermark, if that watermark has been
    /// sealed. `head_at(0)` is always the genesis head.
    pub fn head_at(&self, watermark: u64) -> Option<ChainHead> {
        usize::try_from(watermark)
            .ok()
            .and_then(|w| self.heads.get(w))
            .copied()
    }

    /// Absorb the canonical commit header: document id, timestamp, and
    /// token length.
    pub fn absorb_commit_header(&mut self, doc: u64, timestamp: u64, len: u64) {
        self.pending.update(b"doc");
        self.pending.update(&doc.to_le_bytes());
        self.pending.update(&timestamp.to_le_bytes());
        self.pending.update(&len.to_le_bytes());
    }

    /// Absorb the stored document text (or its absence, which is also
    /// part of the canonical frame).
    pub fn absorb_text(&mut self, text: Option<&[u8]>) {
        self.pending.update(b"txt");
        match text {
            Some(bytes) => {
                self.pending.update(&[1u8]);
                self.pending.update(&(bytes.len() as u64).to_le_bytes());
                self.pending.update(bytes);
            }
            None => self.pending.update(&[0u8]),
        }
    }

    /// Absorb one posting of the commit: term id, the term's dictionary
    /// name if it has one, and the (saturated) term frequency as
    /// stored.
    pub fn absorb_term(&mut self, term_id: u32, name: Option<&str>, tf: u8) {
        self.pending.update(b"trm");
        self.pending.update(&term_id.to_le_bytes());
        match name {
            Some(n) => {
                self.pending.update(&[1u8]);
                self.pending.update(&(n.len() as u64).to_le_bytes());
                self.pending.update(n.as_bytes());
            }
            None => self.pending.update(&[0u8]),
        }
        self.pending.update(&[tf]);
    }

    /// Seal the pending digest into a link at `watermark` without
    /// consuming the in-flight state. The caller persists the link,
    /// then calls [`advance`](Self::advance) once the commit point has
    /// landed — or [`abort`](Self::abort) if it did not.
    pub fn seal(&self, watermark: u64) -> ChainLink {
        ChainLink {
            prev_head: self.head(),
            commit_digest: self.pending.clone().finalize(),
            watermark,
        }
    }

    /// Advance the chain by a sealed link. Verifies the link extends
    /// the current head at the next watermark, then resets the pending
    /// digest for the next commit.
    pub fn advance(&mut self, link: &ChainLink) -> Result<(), ChainError> {
        if link.prev_head != self.head() {
            return Err(ChainError::PrevHeadMismatch {
                expected: self.head(),
                found: link.prev_head,
            });
        }
        let expected = self.sealed() + 1;
        if link.watermark != expected {
            return Err(ChainError::WatermarkMismatch {
                expected,
                found: link.watermark,
            });
        }
        self.heads.push(link.head());
        self.pending = Self::fresh_pending();
        Ok(())
    }

    /// Discard the in-flight digest after a failed commit.
    pub fn abort(&mut self) {
        self.pending = Self::fresh_pending();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FIPS 180-4 test vectors.
    #[test]
    fn sha256_known_vectors() {
        let empty = sha256(b"");
        assert_eq!(
            ChainHead(empty).to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        let abc = sha256(b"abc");
        assert_eq!(
            ChainHead(abc).to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        let two_block = sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq");
        assert_eq!(
            ChainHead(two_block).to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    /// Incremental updates must match the one-shot digest across odd
    /// chunkings and block boundaries.
    #[test]
    fn sha256_incremental_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 7 + 3) as u8).collect();
        let oneshot = sha256(&data);
        for chunk in [1usize, 3, 7, 63, 64, 65, 128, 999] {
            let mut h = Sha256::new();
            for c in data.chunks(chunk) {
                h.update(c);
            }
            assert_eq!(h.finalize(), oneshot, "chunk size {chunk}");
        }
    }

    /// A million 'a's — the classic long-message vector.
    #[test]
    fn sha256_million_a() {
        let mut h = Sha256::new();
        let block = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&block);
        }
        assert_eq!(
            ChainHead(h.finalize()).to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn hex_round_trips() {
        let head = ChainHead(sha256(b"round trip"));
        assert_eq!(ChainHead::from_hex(&head.to_hex()).unwrap(), head);
        assert!(ChainHead::from_hex("abc").is_err());
        assert!(ChainHead::from_hex(&"zz".repeat(32)).is_err());
    }

    #[test]
    fn link_encoding_round_trips() {
        let link = ChainLink {
            prev_head: ChainHead::genesis(),
            commit_digest: sha256(b"payload"),
            watermark: 42,
        };
        let enc = link.encode();
        assert_eq!(enc.len(), ChainLink::ENCODED);
        assert_eq!(ChainLink::decode(&enc).unwrap(), link);
        assert!(ChainLink::decode(&enc[..71]).is_err());
    }

    #[test]
    fn chain_is_deterministic_and_order_sensitive() {
        let build = |texts: &[&str]| {
            let mut c = CommitChain::new();
            for (i, t) in texts.iter().enumerate() {
                c.absorb_commit_header(i as u64, 100 + i as u64, t.len() as u64);
                c.absorb_text(Some(t.as_bytes()));
                c.absorb_term(i as u32, Some(t), 1);
                let link = c.seal(i as u64 + 1);
                c.advance(&link).unwrap();
            }
            c.head()
        };
        assert_eq!(build(&["alpha", "beta"]), build(&["alpha", "beta"]));
        assert_ne!(build(&["alpha", "beta"]), build(&["beta", "alpha"]));
        assert_ne!(build(&["alpha"]), build(&["alpha", "beta"]));
    }

    #[test]
    fn head_at_tracks_watermarks() {
        let mut c = CommitChain::new();
        assert_eq!(c.head_at(0), Some(ChainHead::genesis()));
        assert_eq!(c.head_at(1), None);
        c.absorb_commit_header(0, 7, 3);
        c.absorb_text(None);
        let link = c.seal(1);
        c.advance(&link).unwrap();
        assert_eq!(c.head_at(1), Some(c.head()));
        assert_eq!(c.head_at(2), None);
        assert_eq!(c.sealed(), 1);
    }

    #[test]
    fn advance_rejects_wrong_prev_or_watermark() {
        let mut c = CommitChain::new();
        c.absorb_commit_header(0, 1, 1);
        let mut link = c.seal(2); // wrong watermark
        assert!(matches!(
            c.advance(&link),
            Err(ChainError::WatermarkMismatch { .. })
        ));
        link.watermark = 1;
        link.prev_head = ChainHead(sha256(b"not the head"));
        assert!(matches!(
            c.advance(&link),
            Err(ChainError::PrevHeadMismatch { .. })
        ));
        link.prev_head = c.head();
        c.advance(&link).unwrap();
    }

    #[test]
    fn abort_resets_pending_state() {
        let mut tainted = CommitChain::new();
        tainted.absorb_commit_header(0, 1, 5);
        tainted.absorb_text(Some(b"doomed"));
        tainted.abort();

        let mut clean = CommitChain::new();
        for c in [&mut tainted, &mut clean] {
            c.absorb_commit_header(0, 9, 2);
            c.absorb_text(Some(b"ok"));
            let link = c.seal(1);
            c.advance(&link).unwrap();
        }
        assert_eq!(tainted.head(), clean.head());
    }

    #[test]
    fn genesis_is_stable() {
        assert_eq!(ChainHead::genesis(), ChainHead::default());
        assert_eq!(
            ChainHead::genesis(),
            ChainHead(sha256(b"tks-chain-genesis-v1"))
        );
    }
}
