//! On-disk layout of a sharded archive: one directory per WORM shard.
//!
//! A sharded archive is a directory holding `shard-0000`, `shard-0001`,
//! … subdirectories, each the home of one shard's WORM images (plus a
//! small metadata file owned by the layer above).  This module owns only
//! the *naming discipline*: shard ids map to directory names through one
//! pure function, and discovery validates that the set found on disk is
//! dense (ids `0..n` with no gaps), because a missing shard directory is
//! a missing slice of the archive — the caller must surface it, never
//! renumber around it.
//!
//! Hash routing makes the shard count part of the archive's identity, so
//! the helpers here never guess a count from the directory listing
//! alone when the caller knows the expected count.

use std::path::{Path, PathBuf};

/// Width of the zero-padded shard ordinal in a directory name.
const SHARD_DIR_DIGITS: usize = 4;

const SHARD_DIR_PREFIX: &str = "shard-";

/// Directory name for one shard: `shard-0000`, `shard-0001`, …
///
/// Zero-padded to four digits so listings sort in shard order; counts
/// beyond 9999 simply widen the field (names stay unambiguous because
/// [`parse_shard_dir`] parses the full suffix).
pub fn shard_dir_name(shard: u32) -> String {
    format!("{SHARD_DIR_PREFIX}{shard:0SHARD_DIR_DIGITS$}")
}

/// Parse a directory name produced by [`shard_dir_name`] back into a
/// shard id.  `None` for anything else — foreign directories are left
/// alone, not errors.
pub fn parse_shard_dir(name: &str) -> Option<u32> {
    let digits = name.strip_prefix(SHARD_DIR_PREFIX)?;
    if digits.len() < SHARD_DIR_DIGITS || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// A defect in a sharded directory layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    /// The archive root could not be read.
    Io(String),
    /// Two directory names decode to the same shard id (e.g.
    /// `shard-0001` next to `shard-00001`).
    DuplicateShard(u32),
    /// The shard ids found are not exactly `0..n`: a slice of the
    /// archive is missing and must not be silently renumbered.
    MissingShard {
        /// The smallest absent shard id.
        shard: u32,
        /// Number of shard directories actually found.
        found: usize,
    },
}

impl From<LayoutError> for crate::WormError {
    fn from(e: LayoutError) -> crate::WormError {
        crate::WormError::Layout(e)
    }
}

impl std::fmt::Display for LayoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LayoutError::Io(e) => write!(f, "cannot read archive root: {e}"),
            LayoutError::DuplicateShard(s) => {
                write!(f, "two directories both claim shard {s}")
            }
            LayoutError::MissingShard { shard, found } => write!(
                f,
                "shard {shard} has no directory ({found} shard dir(s) present); \
                 a sharded archive must be dense — refusing to renumber"
            ),
        }
    }
}

impl std::error::Error for LayoutError {}

/// Discover the shard directories under `root`, in shard order.
///
/// Returns the paths for shards `0..n` where `n` is the number of
/// shard-named subdirectories found.  Fails if ids collide or leave a
/// gap; non-shard entries are ignored.  An empty result is valid — a
/// fresh root simply has no shards yet.
pub fn discover_shard_dirs(root: &Path) -> Result<Vec<PathBuf>, LayoutError> {
    let entries = std::fs::read_dir(root).map_err(|e| LayoutError::Io(e.to_string()))?;
    let mut found: Vec<(u32, PathBuf)> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| LayoutError::Io(e.to_string()))?;
        if !entry.path().is_dir() {
            continue;
        }
        let name = entry.file_name();
        let Some(shard) = name.to_str().and_then(parse_shard_dir) else {
            continue;
        };
        found.push((shard, entry.path()));
    }
    found.sort_by_key(|&(s, _)| s);
    for (i, &(s, _)) in found.iter().enumerate() {
        // Bounds: `i` counts shard directories found on disk, each named
        // by a parsed u32 shard id, so the count cannot reach 2^32
        // without a duplicate id failing the check below first.
        let expect = i as u32;
        if s == expect {
            continue;
        }
        return Err(if i > 0 && found[i - 1].0 == s {
            LayoutError::DuplicateShard(s)
        } else {
            LayoutError::MissingShard {
                shard: expect,
                found: found.len(),
            }
        });
    }
    Ok(found.into_iter().map(|(_, p)| p).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_and_sort() {
        for s in [0u32, 1, 9, 10, 99, 9999, 10_000, 65_535] {
            assert_eq!(parse_shard_dir(&shard_dir_name(s)), Some(s));
        }
        assert_eq!(shard_dir_name(3), "shard-0003");
        assert_eq!(shard_dir_name(12_345), "shard-12345");
        let names: Vec<String> = (0..20).map(shard_dir_name).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "directory listing order must be shard order");
    }

    #[test]
    fn foreign_names_are_ignored() {
        for bad in ["shard-", "shard-abc", "shard-1", "shards-0001", "0001", ""] {
            assert_eq!(parse_shard_dir(bad), None, "{bad:?} must not parse");
        }
    }

    #[test]
    fn discovery_orders_and_validates() {
        let root = std::env::temp_dir().join(format!("tks-layout-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).unwrap();
        assert_eq!(discover_shard_dirs(&root).unwrap(), Vec::<PathBuf>::new());

        for s in [2u32, 0, 1] {
            std::fs::create_dir(root.join(shard_dir_name(s))).unwrap();
        }
        std::fs::create_dir(root.join("not-a-shard")).unwrap();
        std::fs::write(root.join("shard-0009"), b"a file, not a dir").unwrap();
        let dirs = discover_shard_dirs(&root).unwrap();
        assert_eq!(dirs.len(), 3);
        for (i, d) in dirs.iter().enumerate() {
            assert!(d.ends_with(shard_dir_name(i as u32)));
        }

        std::fs::create_dir(root.join(shard_dir_name(5))).unwrap();
        assert_eq!(
            discover_shard_dirs(&root).unwrap_err(),
            LayoutError::MissingShard { shard: 3, found: 4 }
        );
        let _ = std::fs::remove_dir_all(&root);
    }
}
