//! Append-stream observation: the replication tap.
//!
//! A [`WormFs`](crate::WormFs) optionally carries an [`AppendTap`] — an
//! observer notified *after* every successful structure-changing
//! operation (file creation, append, legal deletion).  The tap sees
//! exactly the bytes the device durably committed, in commit order,
//! which makes it the natural source for a replication log: a consumer
//! that replays the observed stream against an empty file system
//! reconstructs a byte-identical image (see `tks-replica`).
//!
//! Two properties matter for crash consistency:
//!
//! * **Post-commit only.** The tap fires only once an operation fully
//!   succeeded.  A torn append (device fault mid-write) leaves residue
//!   on the *primary* device but is never shipped — replicas only ever
//!   contain fully acknowledged bytes, so a replica's content is always
//!   a prefix of the primary's commit stream.
//! * **In-order.** Notifications happen under the `&mut self` borrow of
//!   the file system performing the mutation, so observed order is
//!   commit order; a tap that assigns sequence numbers as it is called
//!   produces the canonical replication log.

/// Observer of successful [`WormFs`](crate::WormFs) mutations.
///
/// Implementations must be cheap and infallible: the tap is invoked on
/// the commit path and has no way to veto an already-durable operation.
/// Replication-side failures are the *consumer's* state (e.g. a replica
/// quarantining itself), never the primary's.
pub trait AppendTap: Send + Sync {
    /// A file was created (empty, retained until `retention_expires_at`).
    fn on_create(&self, file: &str, retention_expires_at: u64);

    /// `bytes` were appended to `file` starting at `offset` and are now
    /// durably committed on the device.
    fn on_append(&self, file: &str, offset: u64, bytes: &[u8]);

    /// `file` was legally deleted at logical time `now` (its retention
    /// period had expired).
    fn on_delete(&self, file: &str, now: u64);
}
