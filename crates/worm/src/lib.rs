//! # `tks-worm` — WORM storage model for trustworthy record retention
//!
//! This crate models the storage substrate assumed by *Mitra, Hsu & Winslett,
//! "Trustworthy Keyword Search for Regulatory-Compliant Records Retention"
//! (VLDB 2006)*, Section 2.2:
//!
//! * a **WORM block device** built on rewritable magnetic media with
//!   write-once semantics enforced in software ([`WormDevice`]).  Committed
//!   bytes can never be overwritten; attempted overwrites fail and are
//!   recorded in a tamper-attempt log;
//! * the paper's proposed **append extension**: new bytes may be appended to
//!   otherwise-immutable, partially-written blocks and files — the primitive
//!   that makes incremental posting-list and jump-index maintenance possible;
//! * an **append-only file system layer** ([`WormFs`]) offering the
//!   "file-system-like interface" of commercial compliance appliances, with
//!   retention periods and no premature deletion;
//! * the **non-volatile storage cache** of the storage server
//!   ([`StorageCache`]), simulated at disk-block granularity exactly as in
//!   the paper's Section 3 experiments: data in the NV cache counts as
//!   committed; a dirty block evicted from the cache costs one random write
//!   I/O; a miss on a previously-written block costs one random read I/O.
//!
//! ## Threat model
//!
//! Following the paper, the adversary ("Mala") may issue *any* legal
//! operation — including appends to any block or file — because she can
//! assume the identity of any user or superuser.  The only guarantees come
//! from the device itself: committed bytes are immutable and files cannot be
//! deleted before their retention period expires.  [`WormDevice::tamper_log`]
//! records every rejected overwrite/early-delete so that audits (run by the
//! trusted investigator "Bob") can surface cover-up attempts.
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`device`] | [`BlockId`], [`WormDevice`]: append-only blocks |
//! | [`fault`] | [`FaultPolicy`]: deterministic append fault injection |
//! | [`fs`] | [`WormFs`]: append-only files with retention, over a device |
//! | [`layout`] | per-shard directory naming/discovery for sharded archives |
//! | [`lru`] | [`LruCore`]: O(1) intrusive LRU used by the cache |
//! | [`cache`] | [`StorageCache`]: NV-cache I/O accounting simulator |
//! | [`stats`] | [`IoStats`]: random-I/O counters |
//! | [`chain`] | [`CommitChain`]: SHA-256 hash chain over commit points |
//! | [`tap`] | [`AppendTap`]: post-commit append-stream observation for replication |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod chain;
pub mod device;
pub mod fault;
pub mod fs;
pub mod layout;
pub mod lru;
pub mod persist;
pub mod stats;
pub mod tap;

pub use cache::{AccessKind, CacheConfig, StorageCache};
pub use chain::{sha256, ChainError, ChainHead, ChainLink, CommitChain, Sha256};
pub use device::{BlockId, TamperAttempt, TamperKind, WormDevice, WormError};
pub use fault::{FaultAction, FaultPolicy};
pub use fs::{ExportedFile, FileHandle, WormFs};
pub use layout::{discover_shard_dirs, parse_shard_dir, shard_dir_name, LayoutError};
pub use lru::LruCore;
pub use persist::{load_fs, save_fs, PersistError};
pub use stats::{AtomicIoStats, IoStats};
pub use tap::AppendTap;

/// Result alias for WORM-device operations.
pub type Result<T> = std::result::Result<T, WormError>;
