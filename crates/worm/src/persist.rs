//! Durable serialization of a WORM file system.
//!
//! The in-memory [`WormDevice`]/[`WormFs`] model the *semantics* of a WORM
//! appliance; this module gives them a compact binary image so a process
//! can shut down and hand the bytes to real storage.  A deployment reloads
//! the image and re-runs the structural recovery of the layers above —
//! nothing in the image is trusted beyond what those audits re-verify, in
//! keeping with the paper's §2.3 stance that recovery must not rely on
//! forgeable markers.
//!
//! Format (little-endian, versioned):
//!
//! ```text
//! magic "TKSWORM2" | block_size u32
//! num_blocks u32 | per block: len u32 + bytes
//! num_files u32  | per file: name (u16 len + bytes), len u64,
//!                  retention u64, deleted u8, num_blocks u32 + block ids u64
//! num_tamper u32 | per entry: kind u8, has_block u8 [+ u64],
//!                  has_file u8 [+ u16 len + bytes], detail (u32 len + bytes)
//! digest [u8;32] | SHA-256 over everything above
//! ```
//!
//! The trailing digest makes *any* byte flip in the image refusable at
//! load time, including flips in fields the structural audits cannot
//! constrain (e.g. a posting's term-frequency byte).  Since TKSWORM2 it
//! is the same SHA-256 primitive as the commit chain ([`crate::chain`]),
//! replacing the TKSWORM1 FNV-1a checksum: an adversary could regenerate
//! either footer after mutating the body, so the *footer* is integrity
//! against accidental/physical corruption — the tamper argument against
//! a footer-regenerating adversary rests on the commit chain recomputed
//! by the layers above, whose head is compared out-of-band.
//!
//! Every length field is written through a checked conversion: a count
//! or name that does not fit its wire width is a typed [`PersistError`],
//! never a silent truncation.

use crate::chain::sha256;
use crate::device::{BlockId, TamperAttempt, TamperKind, WormDevice};
use crate::fs::WormFs;

const MAGIC: &[u8; 8] = b"TKSWORM2";
/// Size of the trailing SHA-256 digest.
const FOOTER: usize = 32;

/// Errors while encoding or decoding a serialized image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistError(pub String);

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corrupt WORM image: {}", self.0)
    }
}

impl std::error::Error for PersistError {}

/// Checked narrowing to `u32` for a length/count field.
fn u32_of(value: usize, what: &str) -> Result<u32, PersistError> {
    u32::try_from(value)
        .map_err(|_| PersistError(format!("{what} ({value}) exceeds u32 wire width")))
}

/// Checked narrowing to `u16` for a name-length field.
fn u16_of(value: usize, what: &str) -> Result<u16, PersistError> {
    u16::try_from(value)
        .map_err(|_| PersistError(format!("{what} ({value}) exceeds u16 wire width")))
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.pos + n > self.bytes.len() {
            return Err(PersistError(format!(
                "truncated at offset {} (wanted {n} bytes of {})",
                self.pos,
                self.bytes.len()
            )));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }
    fn array<const N: usize>(&mut self) -> Result<[u8; N], PersistError> {
        <[u8; N]>::try_from(self.take(N)?)
            .map_err(|_| PersistError(format!("short read of {N} bytes")))
    }
    fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, PersistError> {
        Ok(u16::from_le_bytes(self.array()?))
    }
    fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.array()?))
    }
    fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.array()?))
    }
    fn string(&mut self, len: usize) -> Result<String, PersistError> {
        String::from_utf8(self.take(len)?.to_vec())
            .map_err(|_| PersistError("non-UTF-8 string".into()))
    }
}

/// Serialize a [`WormFs`] (and its device) into a byte image.
///
/// Fails if the device's block table is internally inconsistent (a
/// dense block ID that cannot be read back) — evidence of in-memory
/// corruption that must surface as an error, not an abort — or if any
/// count or name exceeds its wire width (checked conversions; nothing
/// is silently truncated).
pub fn save_fs(fs: &WormFs) -> Result<Vec<u8>, PersistError> {
    let dev = fs.device();
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&u32_of(dev.block_size(), "block size")?.to_le_bytes());

    out.extend_from_slice(&u32_of(dev.num_blocks(), "block count")?.to_le_bytes());
    for b in 0..dev.num_blocks() as u64 {
        let data = dev
            .read_all(BlockId(b))
            .map_err(|e| PersistError(format!("block {b} unreadable during save: {e}")))?;
        out.extend_from_slice(&u32_of(data.len(), "block length")?.to_le_bytes());
        out.extend_from_slice(data);
    }

    let files = fs.export_file_table();
    out.extend_from_slice(&u32_of(files.len(), "file count")?.to_le_bytes());
    for f in &files {
        let name_len = u16_of(
            f.name.len(),
            format!("file name length of '{}…'", truncate_for_msg(&f.name)).as_str(),
        )?;
        out.extend_from_slice(&name_len.to_le_bytes());
        out.extend_from_slice(f.name.as_bytes());
        out.extend_from_slice(&f.len.to_le_bytes());
        out.extend_from_slice(&f.retention_expires_at.to_le_bytes());
        out.push(f.deleted as u8);
        out.extend_from_slice(&u32_of(f.blocks.len(), "file block count")?.to_le_bytes());
        for b in &f.blocks {
            out.extend_from_slice(&b.0.to_le_bytes());
        }
    }

    let tampers = dev.tamper_log();
    out.extend_from_slice(&u32_of(tampers.len(), "tamper-log length")?.to_le_bytes());
    for t in tampers {
        out.push(match t.kind {
            TamperKind::Overwrite => 0,
            TamperKind::EarlyDelete => 1,
        });
        match t.block {
            Some(b) => {
                out.push(1);
                out.extend_from_slice(&b.0.to_le_bytes());
            }
            None => out.push(0),
        }
        match &t.file {
            Some(f) => {
                out.push(1);
                out.extend_from_slice(
                    &u16_of(f.len(), "tamper-log file name length")?.to_le_bytes(),
                );
                out.extend_from_slice(f.as_bytes());
            }
            None => out.push(0),
        }
        out.extend_from_slice(&u32_of(t.detail.len(), "tamper detail length")?.to_le_bytes());
        out.extend_from_slice(t.detail.as_bytes());
    }
    let digest = sha256(&out);
    out.extend_from_slice(&digest);
    Ok(out)
}

/// First few chars of a name for error messages (names can be huge —
/// that is exactly the case being rejected).
fn truncate_for_msg(name: &str) -> String {
    name.chars().take(24).collect()
}

/// Deserialize a [`WormFs`] from a byte image produced by [`save_fs`].
pub fn load_fs(bytes: &[u8]) -> Result<WormFs, PersistError> {
    if bytes.len() < FOOTER {
        return Err(PersistError("image too short for digest footer".into()));
    }
    let (body, footer) = bytes.split_at(bytes.len() - FOOTER);
    let actual = sha256(body);
    if footer != actual {
        return Err(PersistError(
            "image digest mismatch: stored footer does not match SHA-256 of body".into(),
        ));
    }
    let bytes = body;
    let mut r = Reader { bytes, pos: 0 };
    if r.take(8)? != MAGIC {
        return Err(PersistError("bad magic".into()));
    }
    let block_size = r.u32()? as usize;
    if block_size == 0 {
        return Err(PersistError("zero block size".into()));
    }
    let mut dev = WormDevice::new(block_size);
    let num_blocks = r.u32()?;
    for _ in 0..num_blocks {
        let b = dev.alloc_block();
        let len = r.u32()? as usize;
        if len > block_size {
            return Err(PersistError(format!(
                "block over capacity: {len} > {block_size}"
            )));
        }
        dev.append(b, r.take(len)?)
            .map_err(|e| PersistError(format!("replaying block: {e}")))?;
    }

    let num_files = r.u32()?;
    let mut table = Vec::with_capacity(num_files as usize);
    for _ in 0..num_files {
        let name_len = r.u16()? as usize;
        let name = r.string(name_len)?;
        let len = r.u64()?;
        let retention_expires_at = r.u64()?;
        let deleted = r.u8()? != 0;
        let nb = r.u32()?;
        let mut blocks = Vec::with_capacity(nb as usize);
        for _ in 0..nb {
            let id = r.u64()?;
            if id >= dev.num_blocks() as u64 {
                return Err(PersistError(format!(
                    "file '{name}' references missing block {id}"
                )));
            }
            blocks.push(BlockId(id));
        }
        table.push(crate::fs::ExportedFile {
            name,
            blocks,
            len,
            retention_expires_at,
            deleted,
        });
    }

    let num_tampers = r.u32()?;
    for _ in 0..num_tampers {
        let kind = match r.u8()? {
            0 => TamperKind::Overwrite,
            1 => TamperKind::EarlyDelete,
            k => return Err(PersistError(format!("unknown tamper kind {k}"))),
        };
        let block = if r.u8()? != 0 {
            Some(BlockId(r.u64()?))
        } else {
            None
        };
        let file = if r.u8()? != 0 {
            let l = r.u16()? as usize;
            Some(r.string(l)?)
        } else {
            None
        };
        let dl = r.u32()? as usize;
        let detail = r.string(dl)?;
        dev.report_tamper(TamperAttempt {
            kind,
            block,
            file,
            detail,
        });
    }
    if r.pos != bytes.len() {
        return Err(PersistError(format!(
            "{} trailing bytes",
            bytes.len() - r.pos
        )));
    }

    WormFs::import(dev, table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WormError;

    fn sample_fs() -> WormFs {
        let mut fs = WormFs::new(WormDevice::new(16));
        let a = fs.create("alpha", u64::MAX).unwrap();
        let b = fs.create("beta/nested", 1_000).unwrap();
        fs.append(a, b"hello worm world, this spans blocks")
            .unwrap();
        fs.append(b, b"short").unwrap();
        let _ = fs.delete(b, 10); // logs an early-delete tamper attempt
        let blk = fs.device_mut().alloc_block();
        fs.device_mut().append(blk, b"raw").unwrap();
        let _ = fs.device_mut().try_overwrite(blk, 0, b"X");
        fs
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let fs = sample_fs();
        let img = save_fs(&fs).unwrap();
        let loaded = load_fs(&img).unwrap();
        let a = loaded.open("alpha").unwrap();
        assert_eq!(
            loaded.read(a, 0, loaded.len(a) as usize).unwrap(),
            b"hello worm world, this spans blocks"
        );
        let b = loaded.open("beta/nested").unwrap();
        assert_eq!(loaded.read(b, 0, 5).unwrap(), b"short");
        assert_eq!(
            loaded.device().tamper_log().len(),
            fs.device().tamper_log().len()
        );
        assert_eq!(loaded.device().num_blocks(), fs.device().num_blocks());
        // Retention still enforced after reload.
        assert!(matches!(loaded.num_files(), 2));
    }

    #[test]
    fn loaded_fs_still_append_only() {
        let img = save_fs(&sample_fs()).unwrap();
        let mut loaded = load_fs(&img).unwrap();
        let a = loaded.open("alpha").unwrap();
        let before = loaded.len(a);
        let off = loaded.append(a, b"!more").unwrap();
        assert_eq!(off, before);
        assert_eq!(loaded.len(a), before + 5);
        let err = loaded
            .device_mut()
            .try_overwrite(crate::BlockId(0), 0, b"z")
            .unwrap_err();
        assert!(matches!(err, WormError::OverwriteRejected { .. }));
    }

    #[test]
    fn corrupt_images_rejected() {
        let img = save_fs(&sample_fs()).unwrap();
        // Truncated.
        assert!(load_fs(&img[..img.len() - 3]).is_err());
        // Bad magic.
        let mut bad = img.clone();
        bad[0] ^= 0xFF;
        assert!(load_fs(&bad).is_err());
        // Trailing garbage.
        let mut long = img.clone();
        long.push(0);
        assert!(load_fs(&long).is_err());
        // A TKSWORM1 image (FNV footer, different magic) is refused.
        let mut v1 = img.clone();
        v1[7] = b'1';
        assert!(load_fs(&v1).is_err());
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let img = save_fs(&sample_fs()).unwrap();
        for i in 0..img.len() {
            let mut bad = img.clone();
            bad[i] ^= 0x01;
            assert!(load_fs(&bad).is_err(), "flip at byte {i} went undetected");
        }
    }

    #[test]
    fn empty_fs_roundtrip() {
        let fs = WormFs::new(WormDevice::new(64));
        let loaded = load_fs(&save_fs(&fs).unwrap()).unwrap();
        assert_eq!(loaded.num_files(), 0);
        assert_eq!(loaded.device().num_blocks(), 0);
    }

    #[test]
    fn oversized_file_name_is_a_typed_error_not_truncation() {
        // A file whose name cannot fit the u16 length prefix must be a
        // clean PersistError at save time.  TKSWORM1 silently wrote
        // `name.len() as u16`, producing an image whose parse diverged
        // from the original at the truncated record.
        let mut fs = WormFs::new(WormDevice::new(16));
        let long_name = "n".repeat(u16::MAX as usize + 1);
        fs.create(&long_name, u64::MAX).unwrap();
        let err = save_fs(&fs).unwrap_err();
        assert!(
            err.0.contains("exceeds u16 wire width"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn oversized_tamper_file_name_is_a_typed_error() {
        let mut fs = WormFs::new(WormDevice::new(16));
        fs.device_mut().report_tamper(TamperAttempt {
            kind: TamperKind::EarlyDelete,
            block: None,
            file: Some("f".repeat(u16::MAX as usize + 7)),
            detail: "oversized name".into(),
        });
        let err = save_fs(&fs).unwrap_err();
        assert!(
            err.0.contains("exceeds u16 wire width"),
            "unexpected error: {err}"
        );
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// One scripted mutation of the file system under test.
    #[derive(Debug, Clone)]
    enum Op {
        Create { name: String, retention: u64 },
        Append { file_ix: usize, data: Vec<u8> },
        Delete { file_ix: usize, now: u64 },
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0usize..24, 0usize..4, 0u64..2_000).prop_map(|(n, depth, retention)| Op::Create {
                name: match depth {
                    0 => format!("file-{n}"),
                    1 => format!("dir/file-{n}"),
                    2 => format!("deep/nested/file-{n}"),
                    _ => format!("f{n}"),
                },
                retention,
            }),
            (0usize..8, proptest::collection::vec(any::<u8>(), 0..50))
                .prop_map(|(file_ix, data)| Op::Append { file_ix, data }),
            (0usize..8, 0u64..2_000).prop_map(|(file_ix, now)| Op::Delete { file_ix, now }),
        ]
    }

    /// Build a file system by running the op script; ops targeting
    /// nonexistent files are skipped, failed deletes feed the tamper log.
    fn build(block_size: usize, ops: &[Op]) -> WormFs {
        let mut fs = WormFs::new(WormDevice::new(block_size));
        let mut handles = Vec::new();
        for op in ops {
            match op {
                Op::Create { name, retention } => {
                    if let Ok(h) = fs.create(name, *retention) {
                        handles.push(h);
                    }
                }
                Op::Append { file_ix, data } => {
                    if let Some(&h) = handles.get(*file_ix) {
                        let _ = fs.append(h, data);
                    }
                }
                Op::Delete { file_ix, now } => {
                    if let Some(&h) = handles.get(*file_ix) {
                        let _ = fs.delete(h, *now);
                    }
                }
            }
        }
        fs
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// save → load must reproduce the file system exactly: same
        /// files, same bytes, same tamper log — or fail typed.  Never a
        /// silently different archive.
        #[test]
        fn save_load_round_trips_exactly(
            block_size in 1usize..48,
            ops in proptest::collection::vec(op_strategy(), 0..30),
        ) {
            let fs = build(block_size, &ops);
            let img = save_fs(&fs).unwrap();
            let loaded = load_fs(&img).unwrap();
            prop_assert_eq!(loaded.num_files(), fs.num_files());
            prop_assert_eq!(loaded.device().num_blocks(), fs.device().num_blocks());
            prop_assert_eq!(loaded.device().tamper_log(), fs.device().tamper_log());
            for f in fs.export_file_table() {
                let orig = fs.open(&f.name).ok();
                let got = loaded.open(&f.name).ok();
                prop_assert_eq!(orig.is_some(), got.is_some(), "file '{}' presence", f.name.clone());
                if let (Some(a), Some(b)) = (orig, got) {
                    prop_assert_eq!(fs.len(a), loaded.len(b));
                    let len = fs.len(a) as usize;
                    prop_assert_eq!(
                        fs.read(a, 0, len).unwrap(),
                        loaded.read(b, 0, len).unwrap(),
                        "file '{}' contents", f.name.clone()
                    );
                }
            }
        }

        /// Any mutation of the image either fails to load or (if it
        /// somehow loads) reproduces a valid archive — with the SHA-256
        /// footer, every byte/truncation mutation must in fact fail.
        #[test]
        fn mutated_images_never_load_silently(
            block_size in 1usize..32,
            ops in proptest::collection::vec(op_strategy(), 0..16),
            flip_at in any::<usize>(),
            flip_mask in 1u8..=255,
            truncate_by in any::<usize>(),
        ) {
            let fs = build(block_size, &ops);
            let img = save_fs(&fs).unwrap();
            // Byte flip anywhere in the image.
            let mut flipped = img.clone();
            let i = flip_at % flipped.len();
            flipped[i] ^= flip_mask;
            prop_assert!(load_fs(&flipped).is_err(), "flip at {} loaded", i);
            // Truncation to any strictly shorter prefix.
            let keep = truncate_by % img.len();
            prop_assert!(load_fs(&img[..keep]).is_err(), "truncation to {} loaded", keep);
        }
    }
}
