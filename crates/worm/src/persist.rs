//! Durable serialization of a WORM file system.
//!
//! The in-memory [`WormDevice`]/[`WormFs`] model the *semantics* of a WORM
//! appliance; this module gives them a compact binary image so a process
//! can shut down and hand the bytes to real storage.  A deployment reloads
//! the image and re-runs the structural recovery of the layers above —
//! nothing in the image is trusted beyond what those audits re-verify, in
//! keeping with the paper's §2.3 stance that recovery must not rely on
//! forgeable markers.
//!
//! Format (little-endian, versioned):
//!
//! ```text
//! magic "TKSWORM1" | block_size u32
//! num_blocks u32 | per block: len u32 + bytes
//! num_files u32  | per file: name (u16 len + bytes), len u64,
//!                  retention u64, deleted u8, num_blocks u32 + block ids u64
//! num_tamper u32 | per entry: kind u8, has_block u8 [+ u64],
//!                  has_file u8 [+ u16 len + bytes], detail (u32 len + bytes)
//! checksum u64   | FNV-1a 64 over everything above
//! ```
//!
//! The trailing checksum makes *any* byte flip in the image refusable at
//! load time, including flips in fields the structural audits cannot
//! constrain (e.g. a posting's term-frequency byte).  It is an integrity
//! check against accidental/physical corruption and cheap tampering, not
//! a cryptographic commitment — the trust argument still rests on the
//! WORM device semantics and the structural invariants.

use crate::device::{BlockId, TamperAttempt, TamperKind, WormDevice};
use crate::fs::WormFs;

const MAGIC: &[u8; 8] = b"TKSWORM1";

/// FNV-1a 64-bit hash, used as the image integrity checksum.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Errors while decoding a serialized image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistError(pub String);

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corrupt WORM image: {}", self.0)
    }
}

impl std::error::Error for PersistError {}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.pos + n > self.bytes.len() {
            return Err(PersistError(format!(
                "truncated at offset {} (wanted {n} bytes of {})",
                self.pos,
                self.bytes.len()
            )));
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }
    fn array<const N: usize>(&mut self) -> Result<[u8; N], PersistError> {
        <[u8; N]>::try_from(self.take(N)?)
            .map_err(|_| PersistError(format!("short read of {N} bytes")))
    }
    fn u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16, PersistError> {
        Ok(u16::from_le_bytes(self.array()?))
    }
    fn u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.array()?))
    }
    fn u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.array()?))
    }
    fn string(&mut self, len: usize) -> Result<String, PersistError> {
        String::from_utf8(self.take(len)?.to_vec())
            .map_err(|_| PersistError("non-UTF-8 string".into()))
    }
}

/// Serialize a [`WormFs`] (and its device) into a byte image.
///
/// Fails only if the device's block table is internally inconsistent
/// (a dense block ID that cannot be read back) — evidence of in-memory
/// corruption that must surface as an error, not an abort.
pub fn save_fs(fs: &WormFs) -> Result<Vec<u8>, PersistError> {
    let dev = fs.device();
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&(dev.block_size() as u32).to_le_bytes());

    out.extend_from_slice(&(dev.num_blocks() as u32).to_le_bytes());
    for b in 0..dev.num_blocks() as u64 {
        let data = dev
            .read_all(BlockId(b))
            .map_err(|e| PersistError(format!("block {b} unreadable during save: {e}")))?;
        out.extend_from_slice(&(data.len() as u32).to_le_bytes());
        out.extend_from_slice(data);
    }

    let files = fs.export_file_table();
    out.extend_from_slice(&(files.len() as u32).to_le_bytes());
    for f in &files {
        out.extend_from_slice(&(f.name.len() as u16).to_le_bytes());
        out.extend_from_slice(f.name.as_bytes());
        out.extend_from_slice(&f.len.to_le_bytes());
        out.extend_from_slice(&f.retention_expires_at.to_le_bytes());
        out.push(f.deleted as u8);
        out.extend_from_slice(&(f.blocks.len() as u32).to_le_bytes());
        for b in &f.blocks {
            out.extend_from_slice(&b.0.to_le_bytes());
        }
    }

    let tampers = dev.tamper_log();
    out.extend_from_slice(&(tampers.len() as u32).to_le_bytes());
    for t in tampers {
        out.push(match t.kind {
            TamperKind::Overwrite => 0,
            TamperKind::EarlyDelete => 1,
        });
        match t.block {
            Some(b) => {
                out.push(1);
                out.extend_from_slice(&b.0.to_le_bytes());
            }
            None => out.push(0),
        }
        match &t.file {
            Some(f) => {
                out.push(1);
                out.extend_from_slice(&(f.len() as u16).to_le_bytes());
                out.extend_from_slice(f.as_bytes());
            }
            None => out.push(0),
        }
        out.extend_from_slice(&(t.detail.len() as u32).to_le_bytes());
        out.extend_from_slice(t.detail.as_bytes());
    }
    let checksum = fnv1a(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    Ok(out)
}

/// Deserialize a [`WormFs`] from a byte image produced by [`save_fs`].
pub fn load_fs(bytes: &[u8]) -> Result<WormFs, PersistError> {
    if bytes.len() < 8 {
        return Err(PersistError("image too short for checksum".into()));
    }
    let (body, footer) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(
        <[u8; 8]>::try_from(footer).map_err(|_| PersistError("short checksum footer".into()))?,
    );
    let actual = fnv1a(body);
    if stored != actual {
        return Err(PersistError(format!(
            "checksum mismatch: stored {stored:#018x}, computed {actual:#018x}"
        )));
    }
    let bytes = body;
    let mut r = Reader { bytes, pos: 0 };
    if r.take(8)? != MAGIC {
        return Err(PersistError("bad magic".into()));
    }
    let block_size = r.u32()? as usize;
    if block_size == 0 {
        return Err(PersistError("zero block size".into()));
    }
    let mut dev = WormDevice::new(block_size);
    let num_blocks = r.u32()?;
    for _ in 0..num_blocks {
        let b = dev.alloc_block();
        let len = r.u32()? as usize;
        if len > block_size {
            return Err(PersistError(format!(
                "block over capacity: {len} > {block_size}"
            )));
        }
        dev.append(b, r.take(len)?)
            .map_err(|e| PersistError(format!("replaying block: {e}")))?;
    }

    let num_files = r.u32()?;
    let mut table = Vec::with_capacity(num_files as usize);
    for _ in 0..num_files {
        let name_len = r.u16()? as usize;
        let name = r.string(name_len)?;
        let len = r.u64()?;
        let retention_expires_at = r.u64()?;
        let deleted = r.u8()? != 0;
        let nb = r.u32()?;
        let mut blocks = Vec::with_capacity(nb as usize);
        for _ in 0..nb {
            let id = r.u64()?;
            if id >= dev.num_blocks() as u64 {
                return Err(PersistError(format!(
                    "file '{name}' references missing block {id}"
                )));
            }
            blocks.push(BlockId(id));
        }
        table.push(crate::fs::ExportedFile {
            name,
            blocks,
            len,
            retention_expires_at,
            deleted,
        });
    }

    let num_tampers = r.u32()?;
    for _ in 0..num_tampers {
        let kind = match r.u8()? {
            0 => TamperKind::Overwrite,
            1 => TamperKind::EarlyDelete,
            k => return Err(PersistError(format!("unknown tamper kind {k}"))),
        };
        let block = if r.u8()? != 0 {
            Some(BlockId(r.u64()?))
        } else {
            None
        };
        let file = if r.u8()? != 0 {
            let l = r.u16()? as usize;
            Some(r.string(l)?)
        } else {
            None
        };
        let dl = r.u32()? as usize;
        let detail = r.string(dl)?;
        dev.report_tamper(TamperAttempt {
            kind,
            block,
            file,
            detail,
        });
    }
    if r.pos != bytes.len() {
        return Err(PersistError(format!(
            "{} trailing bytes",
            bytes.len() - r.pos
        )));
    }

    WormFs::import(dev, table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WormError;

    fn sample_fs() -> WormFs {
        let mut fs = WormFs::new(WormDevice::new(16));
        let a = fs.create("alpha", u64::MAX).unwrap();
        let b = fs.create("beta/nested", 1_000).unwrap();
        fs.append(a, b"hello worm world, this spans blocks")
            .unwrap();
        fs.append(b, b"short").unwrap();
        let _ = fs.delete(b, 10); // logs an early-delete tamper attempt
        let blk = fs.device_mut().alloc_block();
        fs.device_mut().append(blk, b"raw").unwrap();
        let _ = fs.device_mut().try_overwrite(blk, 0, b"X");
        fs
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let fs = sample_fs();
        let img = save_fs(&fs).unwrap();
        let loaded = load_fs(&img).unwrap();
        let a = loaded.open("alpha").unwrap();
        assert_eq!(
            loaded.read(a, 0, loaded.len(a) as usize).unwrap(),
            b"hello worm world, this spans blocks"
        );
        let b = loaded.open("beta/nested").unwrap();
        assert_eq!(loaded.read(b, 0, 5).unwrap(), b"short");
        assert_eq!(
            loaded.device().tamper_log().len(),
            fs.device().tamper_log().len()
        );
        assert_eq!(loaded.device().num_blocks(), fs.device().num_blocks());
        // Retention still enforced after reload.
        assert!(matches!(loaded.num_files(), 2));
    }

    #[test]
    fn loaded_fs_still_append_only() {
        let img = save_fs(&sample_fs()).unwrap();
        let mut loaded = load_fs(&img).unwrap();
        let a = loaded.open("alpha").unwrap();
        let before = loaded.len(a);
        let off = loaded.append(a, b"!more").unwrap();
        assert_eq!(off, before);
        assert_eq!(loaded.len(a), before + 5);
        let err = loaded
            .device_mut()
            .try_overwrite(crate::BlockId(0), 0, b"z")
            .unwrap_err();
        assert!(matches!(err, WormError::OverwriteRejected { .. }));
    }

    #[test]
    fn corrupt_images_rejected() {
        let img = save_fs(&sample_fs()).unwrap();
        // Truncated.
        assert!(load_fs(&img[..img.len() - 3]).is_err());
        // Bad magic.
        let mut bad = img.clone();
        bad[0] ^= 0xFF;
        assert!(load_fs(&bad).is_err());
        // Trailing garbage.
        let mut long = img.clone();
        long.push(0);
        assert!(load_fs(&long).is_err());
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let img = save_fs(&sample_fs()).unwrap();
        for i in 0..img.len() {
            let mut bad = img.clone();
            bad[i] ^= 0x01;
            assert!(load_fs(&bad).is_err(), "flip at byte {i} went undetected");
        }
    }

    #[test]
    fn empty_fs_roundtrip() {
        let fs = WormFs::new(WormDevice::new(64));
        let loaded = load_fs(&save_fs(&fs).unwrap()).unwrap();
        assert_eq!(loaded.num_files(), 0);
        assert_eq!(loaded.device().num_blocks(), 0);
    }
}
