//! Random-I/O accounting shared by the storage cache and the experiment
//! harnesses.
//!
//! The paper's evaluation (Figures 2, 4 and 8(b)) measures *random I/Os per
//! inserted document* and *blocks read per query*; [`IoStats`] is the single
//! counter type all layers report into so figure harnesses can diff
//! before/after snapshots.

use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Counters for random I/Os observed at the storage device.
///
/// A "random I/O" here follows the paper's accounting: any block read from
/// the platter, and any block written to the platter (including a partially
/// filled block evicted from the non-volatile cache), costs exactly one
/// random I/O.  Sequential transfer within a block is free.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IoStats {
    /// Random read I/Os (block fetched from disk into the cache).
    pub read_ios: u64,
    /// Random write I/Os (block written out to disk, full or partial).
    pub write_ios: u64,
    /// Cache hits (no I/O incurred).
    pub hits: u64,
    /// Cache misses (at least one I/O incurred).
    pub misses: u64,
}

impl IoStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total random I/Os (reads + writes).
    pub fn total_ios(&self) -> u64 {
        self.read_ios + self.write_ios
    }

    /// Counter-wise difference `self - earlier`, used to attribute I/Os to a
    /// phase of an experiment (e.g. per-document insertion cost).
    pub fn since(&self, earlier: &IoStats) -> IoStats {
        IoStats {
            read_ios: self.read_ios - earlier.read_ios,
            write_ios: self.write_ios - earlier.write_ios,
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
        }
    }

    /// Cache hit rate in `[0, 1]`; `1.0` when no accesses were made.
    pub fn hit_rate(&self) -> f64 {
        let accesses = self.hits + self.misses;
        if accesses == 0 {
            1.0
        } else {
            self.hits as f64 / accesses as f64
        }
    }

    /// Estimated wall-clock seconds for these I/Os at a given per-random-
    /// I/O latency.  The paper's §2.3 back-of-envelope uses 2 ms: "If each
    /// append incurs a 2 msec random I/O, it would take 1 second to index
    /// a document."
    pub fn estimated_seconds(&self, seconds_per_io: f64) -> f64 {
        self.total_ios() as f64 * seconds_per_io
    }
}

/// The paper's §2.3 random-I/O latency assumption: 2 ms.
pub const PAPER_RANDOM_IO_SECONDS: f64 = 0.002;

/// Thread-safe I/O counters: the lock-free accumulation point behind
/// shared-engine deployments (many reader threads, one writer).
///
/// Each counter is an independent [`AtomicU64`] accumulated with relaxed
/// ordering — the counters are statistics, not synchronisation; readers
/// that need a consistent picture take a [`snapshot`](Self::snapshot)
/// (counter-wise, not globally atomic, which is fine for monotone
/// counters).
#[derive(Debug, Default)]
pub struct AtomicIoStats {
    read_ios: AtomicU64,
    write_ios: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl AtomicIoStats {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// A counter set starting from `initial` (used when converting an
    /// accumulated [`IoStats`] into a shared atomic one).
    pub fn with_initial(initial: IoStats) -> Self {
        let s = Self::new();
        s.record(initial);
        s
    }

    /// Add a delta to the counters.
    pub fn record(&self, delta: IoStats) {
        self.read_ios.fetch_add(delta.read_ios, Ordering::Relaxed);
        self.write_ios.fetch_add(delta.write_ios, Ordering::Relaxed);
        self.hits.fetch_add(delta.hits, Ordering::Relaxed);
        self.misses.fetch_add(delta.misses, Ordering::Relaxed);
    }

    /// Current counter values as a plain [`IoStats`].
    pub fn snapshot(&self) -> IoStats {
        IoStats {
            read_ios: self.read_ios.load(Ordering::Relaxed),
            write_ios: self.write_ios.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Zero every counter.
    pub fn reset(&self) {
        self.read_ios.store(0, Ordering::Relaxed);
        self.write_ios.store(0, Ordering::Relaxed);
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }
}

impl Clone for AtomicIoStats {
    fn clone(&self) -> Self {
        Self::with_initial(self.snapshot())
    }
}

impl From<IoStats> for AtomicIoStats {
    fn from(s: IoStats) -> Self {
        Self::with_initial(s)
    }
}

impl std::ops::Add for IoStats {
    type Output = IoStats;
    fn add(self, rhs: IoStats) -> IoStats {
        IoStats {
            read_ios: self.read_ios + rhs.read_ios,
            write_ios: self.write_ios + rhs.write_ios,
            hits: self.hits + rhs.hits,
            misses: self.misses + rhs.misses,
        }
    }
}

impl std::ops::AddAssign for IoStats {
    fn add_assign(&mut self, rhs: IoStats) {
        *self = *self + rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_and_since() {
        let a = IoStats {
            read_ios: 3,
            write_ios: 5,
            hits: 10,
            misses: 8,
        };
        let b = IoStats {
            read_ios: 1,
            write_ios: 2,
            hits: 4,
            misses: 3,
        };
        assert_eq!(a.total_ios(), 8);
        let d = a.since(&b);
        assert_eq!(
            d,
            IoStats {
                read_ios: 2,
                write_ios: 3,
                hits: 6,
                misses: 5
            }
        );
    }

    #[test]
    fn hit_rate_empty_is_one() {
        assert_eq!(IoStats::new().hit_rate(), 1.0);
    }

    #[test]
    fn hit_rate_mixed() {
        let s = IoStats {
            hits: 3,
            misses: 1,
            ..IoStats::default()
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn estimated_seconds_uses_total() {
        let s = IoStats {
            read_ios: 250,
            write_ios: 250,
            ..IoStats::default()
        };
        // 500 I/Os at 2 ms ≈ the paper's "1 second to index a document".
        assert!((s.estimated_seconds(PAPER_RANDOM_IO_SECONDS) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn atomic_stats_record_and_snapshot() {
        let a = AtomicIoStats::new();
        a.record(IoStats {
            read_ios: 1,
            write_ios: 2,
            hits: 3,
            misses: 4,
        });
        a.record(IoStats {
            read_ios: 10,
            ..IoStats::default()
        });
        assert_eq!(
            a.snapshot(),
            IoStats {
                read_ios: 11,
                write_ios: 2,
                hits: 3,
                misses: 4
            }
        );
        let b = a.clone();
        a.reset();
        assert_eq!(a.snapshot(), IoStats::new());
        // The clone keeps an independent copy of the counters.
        assert_eq!(b.snapshot().read_ios, 11);
    }

    #[test]
    fn atomic_stats_concurrent_accumulation() {
        let shared = std::sync::Arc::new(AtomicIoStats::new());
        let delta = IoStats {
            read_ios: 1,
            write_ios: 1,
            hits: 1,
            misses: 1,
        };
        std::thread::scope(|s| {
            for _ in 0..8 {
                let shared = std::sync::Arc::clone(&shared);
                s.spawn(move || {
                    for _ in 0..1000 {
                        shared.record(delta);
                    }
                });
            }
        });
        let got = shared.snapshot();
        assert_eq!(got.read_ios, 8000);
        assert_eq!(got.total_ios(), 16000);
        assert_eq!(got.hits + got.misses, 16000);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = IoStats {
            read_ios: 1,
            write_ios: 1,
            hits: 1,
            misses: 1,
        };
        a += IoStats {
            read_ios: 2,
            write_ios: 3,
            hits: 4,
            misses: 5,
        };
        assert_eq!(
            a,
            IoStats {
                read_ios: 3,
                write_ios: 4,
                hits: 5,
                misses: 6
            }
        );
    }
}
