//! Non-volatile storage-cache simulator (block granularity, LRU).
//!
//! Models the on-board NV cache of a WORM storage server, exactly as in the
//! paper's Section 3 simulation:
//!
//! * data written into the NV cache is *effectively committed* to WORM from
//!   the application's point of view — no safe-buffering-window problem;
//! * "If there is a cache hit when writing an index entry, then no I/O
//!   occurs (unless the block becomes full, in which case it is written
//!   out).  If there is a cache miss, then the least recently used cache
//!   block is written out, and the needed block is read."
//! * a random write I/O is charged for writing out an evicted block *even if
//!   the block is not yet full* — the cost that posting-list merging
//!   eliminates.
//!
//! The cache tracks block identity and dirtiness only; block *contents* live
//! in the [`WormDevice`](crate::WormDevice), which is an in-memory model.
//! This lets corpus-scale experiments (millions of inserted documents) run
//! with O(cache) memory while the functional engine uses the same policy
//! object for its accounting, so the policy measured in simulation is the
//! policy the engine runs.

use crate::device::BlockId;
use crate::lru::LruCore;
use crate::stats::{AtomicIoStats, IoStats};
use std::collections::HashSet;
use std::sync::Arc;

/// Sizing parameters for a [`StorageCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Cache size in bytes (the paper sweeps 4 MB – 64 GB).
    pub cache_bytes: u64,
    /// Disk block size in bytes (4 KB in the paper's §3 example, 8 KB in
    /// its experiments).
    pub block_size: u32,
}

impl CacheConfig {
    /// Convenience constructor.
    pub fn new(cache_bytes: u64, block_size: u32) -> Self {
        assert!(block_size > 0, "block size must be positive");
        Self {
            cache_bytes,
            block_size,
        }
    }

    /// Capacity in whole blocks: `cache_bytes / block_size`.
    ///
    /// A zero `block_size` (constructible via the public fields, bypassing
    /// [`CacheConfig::new`]) yields zero capacity — an uncached
    /// configuration — instead of dividing by zero.
    pub fn capacity_blocks(&self) -> u64 {
        self.cache_bytes
            .checked_div(self.block_size as u64)
            .unwrap_or(0)
    }
}

/// How a block is being accessed, which determines the I/O charged on a
/// miss and what happens afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Appending bytes to the block (posting-list tail or jump-pointer
    /// region).
    ///
    /// `was_empty` — the block had no committed bytes before this access, so
    /// a miss needs no read I/O (nothing to fetch).
    /// `fills` — this access fills the block to capacity, so it is written
    /// out (one write I/O) and dropped from the cache.
    Append {
        /// Block had no committed bytes before this append.
        was_empty: bool,
        /// This append fills the block completely.
        fills: bool,
    },
    /// Read-modify-write of an interior block (e.g. setting a jump pointer
    /// in a non-tail block).  A miss costs one read; the block is dirty
    /// afterwards.
    Update,
    /// Pure read (query-time).  A miss costs one read; the block is clean
    /// afterwards unless it was already dirty.
    Read,
}

/// LRU, block-granularity storage-cache simulator with random-I/O
/// accounting.
///
/// # Example
///
/// ```
/// use tks_worm::{AccessKind, BlockId, CacheConfig, StorageCache};
///
/// // Room for exactly 2 blocks.
/// let mut cache = StorageCache::new(CacheConfig::new(16 * 1024, 8 * 1024));
/// let append = AccessKind::Append { was_empty: true, fills: false };
/// cache.access(BlockId(0), append);
/// cache.access(BlockId(1), append);
/// cache.access(BlockId(2), append); // evicts block 0: one write I/O
/// assert_eq!(cache.stats().write_ios, 1);
/// assert_eq!(cache.stats().read_ios, 0); // all appends were to fresh blocks
/// ```
#[derive(Debug)]
pub struct StorageCache {
    config: CacheConfig,
    lru: LruCore<BlockId>,
    dirty: HashSet<BlockId>,
    /// Counters live behind an [`Arc`] so observers (concurrent query
    /// services, monitors) can read them lock-free via
    /// [`stats_handle`](Self::stats_handle) while the owner mutates the
    /// cache.
    stats: Arc<AtomicIoStats>,
}

impl Clone for StorageCache {
    fn clone(&self) -> Self {
        Self {
            config: self.config,
            lru: self.lru.clone(),
            dirty: self.dirty.clone(),
            // A clone accounts independently: fresh counters seeded from
            // the current snapshot, not a shared handle.
            stats: Arc::new(self.stats.as_ref().clone()),
        }
    }
}

impl StorageCache {
    /// Create an empty cache with the given sizing.
    pub fn new(config: CacheConfig) -> Self {
        let cap = config.capacity_blocks() as usize;
        Self {
            config,
            lru: LruCore::with_capacity(cap.min(1 << 22)),
            dirty: HashSet::new(),
            stats: Arc::new(AtomicIoStats::new()),
        }
    }

    /// The sizing parameters.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Accumulated I/O counters.
    pub fn stats(&self) -> IoStats {
        self.stats.snapshot()
    }

    /// A shared handle onto the counters, readable from other threads
    /// without locking the cache's owner.
    pub fn stats_handle(&self) -> Arc<AtomicIoStats> {
        Arc::clone(&self.stats)
    }

    /// Number of blocks currently resident.
    pub fn resident_blocks(&self) -> usize {
        self.lru.len()
    }

    /// Whether `block` is currently resident.
    pub fn contains(&self, block: BlockId) -> bool {
        self.lru.contains(&block)
    }

    /// Record an access to `block` and charge I/Os per the paper's policy.
    /// Returns the I/Os incurred by this access alone.
    pub fn access(&mut self, block: BlockId, kind: AccessKind) -> IoStats {
        // The delta is computed locally and published with one atomic
        // record, so concurrent snapshot readers never see a half-counted
        // access.
        let mut delta = IoStats::new();
        let capacity = self.config.capacity_blocks();

        let hit = self.lru.touch(&block);
        if hit {
            delta.hits += 1;
        } else {
            delta.misses += 1;
            if capacity == 0 {
                // Degenerate uncached device: every access is a direct
                // random I/O against the platter.
                match kind {
                    AccessKind::Append { .. } | AccessKind::Update => delta.write_ios += 1,
                    AccessKind::Read => delta.read_ios += 1,
                }
                self.stats.record(delta);
                return delta;
            }
            // Make room: write out the least recently used block if dirty.
            if self.lru.len() as u64 >= capacity {
                if let Some(victim) = self.lru.pop_lru() {
                    if self.dirty.remove(&victim) {
                        delta.write_ios += 1;
                    }
                }
            }
            // Fetch the needed block unless there is nothing on disk yet.
            let needs_read = match kind {
                AccessKind::Append { was_empty, .. } => !was_empty,
                AccessKind::Update | AccessKind::Read => true,
            };
            if needs_read {
                delta.read_ios += 1;
            }
            self.lru.insert(block);
        }

        match kind {
            AccessKind::Append { fills, .. } => {
                if fills {
                    // Full block is written out and leaves the cache.
                    delta.write_ios += 1;
                    self.lru.remove(&block);
                    self.dirty.remove(&block);
                } else {
                    self.dirty.insert(block);
                }
            }
            AccessKind::Update => {
                self.dirty.insert(block);
            }
            AccessKind::Read => {}
        }
        self.stats.record(delta);
        delta
    }

    /// Query-time read of one whole block: a single logical access charged
    /// per the paper's read policy (hit is free, miss costs one read I/O
    /// plus any eviction write).
    ///
    /// This is the cache half of the block-granular read path: callers that
    /// previously touched the cache once per record now touch it once per
    /// block, which is also the unit the paper's figures count in.
    pub fn read_block(&mut self, block: BlockId) -> IoStats {
        self.access(block, AccessKind::Read)
    }

    /// Write out every dirty resident block (end-of-run accounting).
    /// Returns the number of write I/Os charged.
    pub fn flush(&mut self) -> u64 {
        let mut writes = 0;
        while let Some(victim) = self.lru.pop_lru() {
            if self.dirty.remove(&victim) {
                writes += 1;
            }
        }
        debug_assert!(self.dirty.is_empty());
        self.stats.record(IoStats {
            write_ios: writes,
            ..IoStats::default()
        });
        writes
    }

    /// Reset counters (resident set is preserved).
    pub fn reset_stats(&mut self) {
        self.stats.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache(blocks: u64) -> StorageCache {
        StorageCache::new(CacheConfig::new(blocks * 8192, 8192))
    }

    const FRESH: AccessKind = AccessKind::Append {
        was_empty: true,
        fills: false,
    };
    const APPEND: AccessKind = AccessKind::Append {
        was_empty: false,
        fills: false,
    };

    #[test]
    fn capacity_blocks_rounds_down() {
        assert_eq!(CacheConfig::new(10_000, 4096).capacity_blocks(), 2);
        assert_eq!(CacheConfig::new(4 << 20, 8192).capacity_blocks(), 512);
    }

    #[test]
    fn hit_costs_nothing() {
        let mut c = cache(4);
        c.access(BlockId(1), FRESH);
        let io = c.access(BlockId(1), APPEND);
        assert_eq!(io.total_ios(), 0);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn fresh_miss_costs_nothing_until_eviction() {
        let mut c = cache(2);
        c.access(BlockId(0), FRESH);
        c.access(BlockId(1), FRESH);
        assert_eq!(c.stats().total_ios(), 0);
        // Third fresh block evicts the LRU (dirty) block: 1 write.
        let io = c.access(BlockId(2), FRESH);
        assert_eq!(io.write_ios, 1);
        assert_eq!(io.read_ios, 0);
        assert!(!c.contains(BlockId(0)));
    }

    #[test]
    fn miss_on_partial_block_reads_it_back() {
        let mut c = cache(1);
        c.access(BlockId(0), FRESH);
        c.access(BlockId(1), FRESH); // evicts 0 (write)
        let io = c.access(BlockId(0), APPEND); // evicts 1 (write) + reads 0
        assert_eq!(io.write_ios, 1);
        assert_eq!(io.read_ios, 1);
        assert_eq!(c.stats().write_ios, 2);
        assert_eq!(c.stats().read_ios, 1);
    }

    #[test]
    fn filling_block_writes_out_and_leaves_cache() {
        let mut c = cache(4);
        c.access(BlockId(0), FRESH);
        let io = c.access(
            BlockId(0),
            AccessKind::Append {
                was_empty: false,
                fills: true,
            },
        );
        assert_eq!(io.write_ios, 1);
        assert!(!c.contains(BlockId(0)));
        // Re-appending after writeout incurs a read (block is partial on
        // disk only in theory; for a full block the next append goes to a
        // new block, so this path models update access).
        assert_eq!(c.resident_blocks(), 0);
    }

    #[test]
    fn clean_read_blocks_evict_for_free() {
        let mut c = cache(1);
        c.access(BlockId(0), AccessKind::Read); // miss: 1 read, clean
        assert_eq!(c.stats().read_ios, 1);
        let io = c.access(BlockId(1), AccessKind::Read); // evicts clean 0: no write
        assert_eq!(io.write_ios, 0);
        assert_eq!(io.read_ios, 1);
    }

    #[test]
    fn read_block_is_one_logical_read_access() {
        let mut c = cache(2);
        let io = c.read_block(BlockId(7)); // miss: one read I/O
        assert_eq!(io.read_ios, 1);
        assert_eq!(io.write_ios, 0);
        let io = c.read_block(BlockId(7)); // hit: free
        assert_eq!(io.total_ios(), 0);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn update_marks_dirty() {
        let mut c = cache(1);
        c.access(BlockId(0), AccessKind::Update); // miss: 1 read
        assert_eq!(c.stats().read_ios, 1);
        let io = c.access(BlockId(1), AccessKind::Update); // evict dirty 0: 1 write + 1 read
        assert_eq!(io.write_ios, 1);
        assert_eq!(io.read_ios, 1);
    }

    #[test]
    fn zero_capacity_charges_direct_io() {
        let mut c = StorageCache::new(CacheConfig::new(0, 8192));
        let io = c.access(BlockId(0), APPEND);
        assert_eq!(io.write_ios, 1);
        assert_eq!(io.read_ios, 0);
        let io = c.access(BlockId(0), AccessKind::Read);
        assert_eq!(io.read_ios, 1);
        assert_eq!(c.resident_blocks(), 0);
    }

    #[test]
    fn flush_writes_only_dirty() {
        let mut c = cache(8);
        c.access(BlockId(0), FRESH);
        c.access(BlockId(1), AccessKind::Read);
        c.access(BlockId(2), AccessKind::Update);
        let writes = c.flush();
        assert_eq!(writes, 2); // blocks 0 and 2 were dirty
        assert_eq!(c.resident_blocks(), 0);
    }

    #[test]
    fn lru_order_respected_under_workload() {
        let mut c = cache(3);
        for b in 0..3 {
            c.access(BlockId(b), FRESH);
        }
        c.access(BlockId(0), APPEND); // 0 now MRU; LRU is 1
        c.access(BlockId(3), FRESH); // evicts 1
        assert!(c.contains(BlockId(0)));
        assert!(!c.contains(BlockId(1)));
        assert!(c.contains(BlockId(2)));
        assert!(c.contains(BlockId(3)));
    }

    #[test]
    fn reset_stats_preserves_residency() {
        let mut c = cache(2);
        c.access(BlockId(0), FRESH);
        c.reset_stats();
        assert_eq!(c.stats(), IoStats::new());
        assert!(c.contains(BlockId(0)));
        // A subsequent hit is counted fresh.
        c.access(BlockId(0), APPEND);
        assert_eq!(c.stats().hits, 1);
    }
}
