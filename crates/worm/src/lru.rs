//! An O(1) least-recently-used tracker used by the storage-cache simulator.
//!
//! Implemented as a slab-allocated doubly linked list plus a hash map, so
//! that `touch`, `insert`, `remove` and `pop_lru` are all O(1).  Keys are
//! generic so the same core serves block IDs in the cache simulator and any
//! other recency-ordered structure.

use std::collections::HashMap;
use std::hash::Hash;

const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Node<K> {
    key: K,
    prev: usize,
    next: usize,
}

/// O(1) LRU ordering over a set of keys.
///
/// The most recently used key is at the *front*; [`LruCore::pop_lru`]
/// removes and returns the key at the *back*.  `LruCore` tracks ordering
/// only — capacity policy (when to evict) belongs to the caller.
///
/// # Example
///
/// ```
/// use tks_worm::LruCore;
///
/// let mut lru = LruCore::new();
/// lru.insert(1);
/// lru.insert(2);
/// lru.insert(3);
/// lru.touch(&1); // 1 becomes most recent
/// assert_eq!(lru.pop_lru(), Some(2));
/// assert_eq!(lru.pop_lru(), Some(3));
/// assert_eq!(lru.pop_lru(), Some(1));
/// assert_eq!(lru.pop_lru(), None);
/// ```
#[derive(Debug, Clone)]
pub struct LruCore<K: Eq + Hash + Clone> {
    map: HashMap<K, usize>,
    nodes: Vec<Node<K>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
}

impl<K: Eq + Hash + Clone> Default for LruCore<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash + Clone> LruCore<K> {
    /// Create an empty tracker.
    pub fn new() -> Self {
        Self {
            map: HashMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Create an empty tracker with pre-allocated space for `cap` keys.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            map: HashMap::with_capacity(cap),
            nodes: Vec::with_capacity(cap),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    /// Number of tracked keys.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no keys are tracked.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Whether `key` is tracked.
    pub fn contains(&self, key: &K) -> bool {
        self.map.contains_key(key)
    }

    /// Mark `key` as most recently used.  Returns `true` if the key was
    /// present (and has been moved to the front), `false` otherwise.
    pub fn touch(&mut self, key: &K) -> bool {
        match self.map.get(key).copied() {
            Some(idx) => {
                self.unlink(idx);
                self.push_front(idx);
                true
            }
            None => false,
        }
    }

    /// Insert `key` as most recently used.  Returns `false` if the key was
    /// already present (in which case it is simply touched).
    pub fn insert(&mut self, key: K) -> bool {
        if self.touch(&key) {
            return false;
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i] = Node {
                    key: key.clone(),
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                self.nodes.push(Node {
                    key: key.clone(),
                    prev: NIL,
                    next: NIL,
                });
                self.nodes.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        true
    }

    /// Remove `key` from the tracker.  Returns `true` if it was present.
    pub fn remove(&mut self, key: &K) -> bool {
        match self.map.remove(key) {
            Some(idx) => {
                self.unlink(idx);
                self.free.push(idx);
                true
            }
            None => false,
        }
    }

    /// Remove and return the least recently used key.
    pub fn pop_lru(&mut self) -> Option<K> {
        if self.tail == NIL {
            return None;
        }
        let idx = self.tail;
        let key = self.nodes[idx].key.clone();
        self.unlink(idx);
        self.free.push(idx);
        self.map.remove(&key);
        Some(key)
    }

    /// Peek at the least recently used key without removing it.
    pub fn peek_lru(&self) -> Option<&K> {
        if self.tail == NIL {
            None
        } else {
            Some(&self.nodes[self.tail].key)
        }
    }

    /// Iterate keys from most to least recently used.
    pub fn iter_mru(&self) -> impl Iterator<Item = &K> {
        let mut cur = self.head;
        std::iter::from_fn(move || {
            if cur == NIL {
                None
            } else {
                let node = &self.nodes[cur];
                cur = node.next;
                Some(&node.key)
            }
        })
    }

    fn push_front(&mut self, idx: usize) {
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = self.head;
        if self.head != NIL {
            self.nodes[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.nodes[idx].prev, self.nodes[idx].next);
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.nodes[idx].prev = NIL;
        self.nodes[idx].next = NIL;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_orders_mru_first() {
        let mut lru = LruCore::new();
        assert!(lru.insert("a"));
        assert!(lru.insert("b"));
        assert!(lru.insert("c"));
        let order: Vec<_> = lru.iter_mru().copied().collect();
        assert_eq!(order, vec!["c", "b", "a"]);
        assert_eq!(lru.peek_lru(), Some(&"a"));
    }

    #[test]
    fn reinsert_touches() {
        let mut lru = LruCore::new();
        lru.insert(1);
        lru.insert(2);
        assert!(!lru.insert(1)); // already present
        assert_eq!(lru.pop_lru(), Some(2));
    }

    #[test]
    fn touch_missing_is_false() {
        let mut lru: LruCore<u32> = LruCore::new();
        assert!(!lru.touch(&7));
    }

    #[test]
    fn remove_middle_front_back() {
        let mut lru = LruCore::new();
        for i in 0..5 {
            lru.insert(i);
        }
        assert!(lru.remove(&2)); // middle
        assert!(lru.remove(&4)); // front (MRU)
        assert!(lru.remove(&0)); // back (LRU)
        assert!(!lru.remove(&9));
        let order: Vec<_> = lru.iter_mru().copied().collect();
        assert_eq!(order, vec![3, 1]);
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn slab_reuse_after_remove() {
        let mut lru = LruCore::new();
        lru.insert(1);
        lru.insert(2);
        lru.remove(&1);
        lru.insert(3);
        lru.insert(4);
        let order: Vec<_> = lru.iter_mru().copied().collect();
        assert_eq!(order, vec![4, 3, 2]);
    }

    #[test]
    fn pop_until_empty_then_reuse() {
        let mut lru = LruCore::new();
        lru.insert('x');
        lru.insert('y');
        assert_eq!(lru.pop_lru(), Some('x'));
        assert_eq!(lru.pop_lru(), Some('y'));
        assert_eq!(lru.pop_lru(), None);
        assert!(lru.is_empty());
        lru.insert('z');
        assert_eq!(lru.peek_lru(), Some(&'z'));
        assert_eq!(lru.len(), 1);
    }

    #[test]
    fn randomized_against_reference_model() {
        use std::collections::VecDeque;
        // Reference: VecDeque with front = MRU (O(n) ops, but obviously
        // correct).
        let mut model: VecDeque<u16> = VecDeque::new();
        let mut lru = LruCore::new();
        // Simple deterministic LCG so the test needs no rand dependency here.
        let mut state = 0x2545F491u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for _ in 0..10_000 {
            let op = next() % 4;
            let key = (next() % 50) as u16;
            match op {
                0 => {
                    let inserted = lru.insert(key);
                    let was_there = model.contains(&key);
                    assert_eq!(inserted, !was_there);
                    model.retain(|&k| k != key);
                    model.push_front(key);
                }
                1 => {
                    let touched = lru.touch(&key);
                    assert_eq!(touched, model.contains(&key));
                    if touched {
                        model.retain(|&k| k != key);
                        model.push_front(key);
                    }
                }
                2 => {
                    let removed = lru.remove(&key);
                    assert_eq!(removed, model.contains(&key));
                    model.retain(|&k| k != key);
                }
                _ => {
                    assert_eq!(lru.pop_lru(), model.pop_back());
                }
            }
            assert_eq!(lru.len(), model.len());
        }
        let order: Vec<_> = lru.iter_mru().copied().collect();
        let model_order: Vec<_> = model.iter().copied().collect();
        assert_eq!(order, model_order);
    }
}
