//! `tks` — a command-line trustworthy record archive.
//!
//! Wraps the [`tks_core::SearchEngine`] in a durable on-disk archive: the
//! two WORM device images plus the engine configuration live in a
//! directory, and every invocation reloads them through the **full
//! structural recovery path** (paper §2.3: recovery trusts committed
//! structures, never markers or logs), so any byte-level tampering with
//! the images is caught before a single query runs.
//!
//! ```text
//! tks init  ARCHIVE [--lists N] [--jump B] [--block-size L]
//! tks add   ARCHIVE FILE...            # index text files (mtime = commit time)
//! tks note  ARCHIVE TS TEXT...         # index an inline note at timestamp TS
//! tks search ARCHIVE KEYWORD... [--top K]      # ranked disjunctive search
//! tks all   ARCHIVE KEYWORD...                 # conjunctive (all keywords)
//! tks range ARCHIVE FROM TO KEYWORD...         # conjunctive within [FROM, TO]
//! tks audit ARCHIVE                            # structural + deep audit
//! tks info  ARCHIVE
//! tks serve ARCHIVE [--addr HOST:PORT]         # network server (sharded archives)
//! ```
//!
//! `tks archive …` is the **sharded** variant of the same archive: N
//! hash-partitioned shards (each a complete single-archive image set)
//! behind one writer/searcher pair, with per-shard recovery and fault
//! isolation — see [`sharded`].

// Experiment binary: expect() on malformed synthetic input is acceptable
// (the production no-panic surface is gated by clippy + `cargo xtask audit`).
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use tks_core::engine::{EngineConfig, SearchEngine};
use tks_core::merge::MergeAssignment;
use tks_core::query::{Query, QueryResponse};
use tks_jump::JumpConfig;
use tks_postings::Timestamp;

mod archive;
mod serve;
mod sharded;

use archive::Archive;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  tks init ARCHIVE [--lists N] [--jump B] [--block-size L]\n  \
         tks add ARCHIVE FILE...\n  tks note ARCHIVE TS TEXT...\n  \
         tks search ARCHIVE KEYWORD... [--top K]\n  tks all ARCHIVE KEYWORD...\n  \
         tks phrase ARCHIVE WORD... (positional archives)\n  \
         tks range ARCHIVE FROM TO KEYWORD...\n  tks audit ARCHIVE\n  tks info ARCHIVE\n\
         sharded archives (hash-partitioned WORM shards):\n{}\n\
         network server (versioned wire protocol over TCP):\n  \
         tks serve ARCHIVE [--addr HOST:PORT] [--workers N] [--queue-depth D]\n            \
         [--deadline-ms MS] [--max-frame-bytes B]",
        sharded::usage_lines()
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let result = match cmd.as_str() {
        "init" => cmd_init(&args[1..]),
        "add" => cmd_add(&args[1..]),
        "note" => cmd_note(&args[1..]),
        "search" => cmd_search(&args[1..], false),
        "phrase" => cmd_phrase(&args[1..]),
        "all" => cmd_search(&args[1..], true),
        "range" => cmd_range(&args[1..]),
        "audit" => cmd_audit(&args[1..]),
        "info" => cmd_info(&args[1..]),
        "archive" => sharded::cmd_archive(&args[1..]),
        "serve" => serve::cmd_serve(&args[1..]),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

fn archive_path(args: &[String]) -> Result<PathBuf, Box<dyn std::error::Error>> {
    args.first()
        .map(PathBuf::from)
        .ok_or_else(|| "missing ARCHIVE argument".into())
}

fn cmd_init(args: &[String]) -> CliResult {
    let dir = archive_path(args)?;
    let mut lists = 1024u32;
    let mut jump_b: Option<u32> = Some(32);
    let mut block = 8192usize;
    let mut positional = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--positional" => {
                positional = true;
            }
            "--lists" => {
                i += 1;
                lists = args.get(i).ok_or("--lists needs a value")?.parse()?;
            }
            "--jump" => {
                i += 1;
                let b: u32 = args.get(i).ok_or("--jump needs a value")?.parse()?;
                jump_b = if b == 0 { None } else { Some(b) };
            }
            "--block-size" => {
                i += 1;
                block = args.get(i).ok_or("--block-size needs a value")?.parse()?;
            }
            other => return Err(format!("unknown flag {other}").into()),
        }
        i += 1;
    }
    // The validating builder turns bad flag combinations (tiny blocks,
    // --jump 1, ...) into errors instead of panics deep in the engine.
    // MergeAssignment::uniform asserts on 0, so guard it before building.
    if lists == 0 {
        return Err("--lists must be at least 1".into());
    }
    let mut builder = EngineConfig::builder()
        .block_size(block)
        .assignment(MergeAssignment::uniform(lists))
        .positional(positional);
    if let Some(b) = jump_b {
        builder = builder.jump(JumpConfig {
            block_size: block.max(2048),
            branching: b,
            max_key: 1 << 32,
        });
    }
    let config = builder.build()?;
    Archive::init(&dir, config)?;
    println!("initialized archive at {}", dir.display());
    Ok(())
}

fn read_text_file(path: &Path) -> Result<(String, Timestamp), Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path)?;
    let mtime = std::fs::metadata(path)?
        .modified()?
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    Ok((text, Timestamp(mtime)))
}

fn cmd_add(args: &[String]) -> CliResult {
    let dir = archive_path(args)?;
    if args.len() < 2 {
        return Err("add needs at least one FILE".into());
    }
    let mut archive = Archive::open(&dir)?;
    // Commit in mtime order so the monotone commit-time invariant holds.
    let mut inputs = Vec::new();
    for f in &args[1..] {
        let path = PathBuf::from(f);
        let (text, ts) = read_text_file(&path)?;
        inputs.push((ts, path, text));
    }
    inputs.sort_by_key(|(ts, ..)| *ts);
    let floor = archive.last_timestamp();
    for (mut ts, path, text) in inputs {
        if ts < floor {
            eprintln!(
                "note: {} has mtime {} before the archive head {}; committing at the head \
                 (backdating is impossible by design)",
                path.display(),
                ts.0,
                floor.0
            );
            ts = floor;
        }
        let doc = archive.engine_mut().add_document(&text, ts)?;
        println!("committed {} as {doc} @ t={}", path.display(), ts.0);
    }
    archive.save(&dir)?;
    Ok(())
}

fn cmd_note(args: &[String]) -> CliResult {
    let dir = archive_path(args)?;
    let ts: u64 = args.get(1).ok_or("note needs TS")?.parse()?;
    if args.len() < 3 {
        return Err("note needs TEXT".into());
    }
    let text = args[2..].join(" ");
    let mut archive = Archive::open(&dir)?;
    let doc = archive.engine_mut().add_document(&text, Timestamp(ts))?;
    println!("committed {doc} @ t={ts}");
    archive.save(&dir)?;
    Ok(())
}

fn cmd_search(args: &[String], conjunctive: bool) -> CliResult {
    let dir = archive_path(args)?;
    let mut top = 10usize;
    let mut keywords = Vec::new();
    let mut i = 1;
    while i < args.len() {
        if args[i] == "--top" {
            i += 1;
            top = args.get(i).ok_or("--top needs a value")?.parse()?;
        } else {
            keywords.push(args[i].clone());
        }
        i += 1;
    }
    if keywords.is_empty() {
        return Err("no keywords given".into());
    }
    let archive = Archive::open(&dir)?;
    let engine = archive.engine();
    let query = keywords.join(" ");
    if conjunctive {
        let resp = engine.execute(&Query::conjunctive(query.as_str()))?;
        println!("{} document(s) contain all of [{query}]:", resp.hits.len());
        for d in resp.docs() {
            print_doc(engine, d, None);
        }
        print_trust(&resp);
    } else {
        let resp = engine.execute(&Query::disjunctive(query.as_str(), top))?;
        println!("top {} of [{query}]:", resp.hits.len());
        for h in &resp.hits {
            print_doc(engine, h.doc, Some(h.score));
        }
        print_trust(&resp);
    }
    Ok(())
}

fn cmd_phrase(args: &[String]) -> CliResult {
    let dir = archive_path(args)?;
    if args.len() < 2 {
        return Err("phrase needs WORDs".into());
    }
    let phrase = args[1..].join(" ");
    let archive = Archive::open(&dir)?;
    let engine = archive.engine();
    let resp = engine.execute(&Query::phrase(phrase.as_str()))?;
    println!(
        "{} document(s) contain the exact phrase [{phrase}]:",
        resp.hits.len()
    );
    for d in resp.docs() {
        print_doc(engine, d, None);
    }
    print_trust(&resp);
    Ok(())
}

fn cmd_range(args: &[String]) -> CliResult {
    let dir = archive_path(args)?;
    let from: u64 = args.get(1).ok_or("range needs FROM")?.parse()?;
    let to: u64 = args.get(2).ok_or("range needs TO")?.parse()?;
    if args.len() < 4 {
        return Err("range needs KEYWORDs".into());
    }
    let query = args[3..].join(" ");
    let archive = Archive::open(&dir)?;
    let engine = archive.engine();
    let resp = engine.execute(&Query::conjunctive_in_range(
        query.as_str(),
        Timestamp(from),
        Timestamp(to),
    ))?;
    println!(
        "{} document(s) match [{query}] committed in [{from}, {to}]:",
        resp.hits.len()
    );
    for d in resp.docs() {
        print_doc(engine, d, None);
    }
    print_trust(&resp);
    Ok(())
}

/// One line of per-query trust/cost metadata after every result list.
fn print_trust(resp: &QueryResponse) {
    println!(
        "  [{} block read(s); {} docs visible; {}]",
        resp.blocks_read,
        resp.visible_docs,
        if resp.trusted {
            "devices clean"
        } else {
            "DEVICES REPORT TAMPER ATTEMPTS — run `tks audit`"
        }
    );
}

fn print_doc(engine: &SearchEngine, d: tks_postings::DocId, score: Option<f64>) {
    let ts = engine.document_timestamp(d).map(|t| t.0).unwrap_or(0);
    let preview = engine
        .document_text(d)
        .map(|t| t.chars().take(70).collect::<String>())
        .unwrap_or_else(|| "<text not stored>".into());
    match score {
        Some(s) => println!("  {d} @ t={ts} (score {s:.3}): {preview}"),
        None => println!("  {d} @ t={ts}: {preview}"),
    }
}

fn cmd_audit(args: &[String]) -> CliResult {
    let dir = archive_path(args)?;
    let archive = Archive::open(&dir)?;
    let (report, phantoms) = archive.engine().audit_deep()?;
    println!("structural audit:");
    println!(
        "  list monotonicity violations: {}",
        report.list_violations.len()
    );
    println!(
        "  jump-index violations:        {}",
        report.jump_violations.len()
    );
    println!(
        "  device tamper attempts:       {}",
        report.device_tamper_attempts
    );
    println!("  commit-time index ok:         {}", report.commit_time_ok);
    println!("posting verification:");
    println!("  phantom postings:             {}", phantoms.len());
    for p in phantoms.iter().take(10) {
        println!(
            "    {} in {} [{}]: {:?}",
            p.posting.doc, p.list, p.position, p.reason
        );
    }
    if report.is_clean() && phantoms.is_empty() {
        println!("VERDICT: clean");
        Ok(())
    } else {
        Err("VERDICT: tamper evidence found".into())
    }
}

fn cmd_info(args: &[String]) -> CliResult {
    let dir = archive_path(args)?;
    let archive = Archive::open(&dir)?;
    let e = archive.engine();
    println!("archive:     {}", dir.display());
    println!("documents:   {}", e.num_docs());
    println!("vocabulary:  {} terms", e.vocab_size());
    println!("lists:       {}", e.config().assignment.num_lists());
    match &e.config().jump {
        Some(j) => println!(
            "jump index:  B={} (block {} B, {} entries/block)",
            j.branching,
            j.block_size,
            j.entries_per_block()
        ),
        None => println!("jump index:  disabled"),
    }
    Ok(())
}
