//! `tks serve` — put a sharded archive on the network.
//!
//! Opens the archive through the full per-shard recovery path (degraded
//! shards are reported and excluded, exactly like `tks archive query`),
//! then serves read-only queries over the versioned wire protocol until
//! the process is killed.  Ingest stays process-local (`tks archive
//! add`/`note`): the WORM trust story wants writes going through the
//! archive owner, not an open socket.
//!
//! ```text
//! tks serve ARCHIVE [--addr HOST:PORT] [--workers N] [--queue-depth D]
//!                   [--deadline-ms MS] [--max-frame-bytes B]
//! ```

use std::path::PathBuf;

use tks_server::server::{ArchiveServer, ServerConfig};

use crate::CliResult;

/// Parsed `tks serve` arguments.
#[derive(Debug)]
pub(crate) struct ServeArgs {
    pub dir: PathBuf,
    pub addr: String,
    pub config: ServerConfig,
}

pub(crate) fn parse_args(args: &[String]) -> Result<ServeArgs, Box<dyn std::error::Error>> {
    let dir = args
        .first()
        .map(PathBuf::from)
        .ok_or("missing ARCHIVE argument")?;
    let mut addr = "127.0.0.1:7045".to_string();
    let mut config = ServerConfig::default();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                i += 1;
                addr = args.get(i).ok_or("--addr needs HOST:PORT")?.clone();
            }
            "--workers" => {
                i += 1;
                config.workers = args.get(i).ok_or("--workers needs a value")?.parse()?;
            }
            "--queue-depth" => {
                i += 1;
                config.queue_depth = args.get(i).ok_or("--queue-depth needs a value")?.parse()?;
            }
            "--deadline-ms" => {
                i += 1;
                config.default_deadline_ms =
                    args.get(i).ok_or("--deadline-ms needs a value")?.parse()?;
            }
            "--max-frame-bytes" => {
                i += 1;
                config.max_frame_bytes = args
                    .get(i)
                    .ok_or("--max-frame-bytes needs a value")?
                    .parse()?;
            }
            other => return Err(format!("unknown serve option {other}").into()),
        }
        i += 1;
    }
    Ok(ServeArgs { dir, addr, config })
}

pub(crate) fn cmd_serve(args: &[String]) -> CliResult {
    let parsed = parse_args(args)?;
    // Full recovery first: a tampered shard comes up degraded before the
    // socket opens, so remote investigators never see it as healthy.
    let (_writer, searcher) = crate::sharded::open(&parsed.dir)?.into_service();
    let degraded = searcher.degraded().to_vec();
    let handle = ArchiveServer::bind(&parsed.addr, searcher, parsed.config.clone())?;
    println!(
        "serving {} on {} ({} worker(s), queue depth {}, default deadline {}ms)",
        parsed.dir.display(),
        handle.addr(),
        parsed.config.workers,
        parsed.config.queue_depth,
        parsed.config.default_deadline_ms,
    );
    for d in &degraded {
        eprintln!("  warning: shard {} is degraded: {}", d.shard, d.reason);
    }
    println!("press Ctrl-C to stop");
    // Serve until the process is killed.  The handle's Drop performs the
    // graceful drain if this thread ever unparks (it should not).
    loop {
        std::thread::park();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parse_defaults_and_overrides() {
        let parsed = parse_args(&s(&["arch"])).expect("parse");
        assert_eq!(parsed.dir, PathBuf::from("arch"));
        assert_eq!(parsed.addr, "127.0.0.1:7045");
        assert_eq!(parsed.config.workers, ServerConfig::default().workers);

        let parsed = parse_args(&s(&[
            "arch",
            "--addr",
            "0.0.0.0:9000",
            "--workers",
            "8",
            "--queue-depth",
            "32",
            "--deadline-ms",
            "1500",
            "--max-frame-bytes",
            "65536",
        ]))
        .expect("parse");
        assert_eq!(parsed.addr, "0.0.0.0:9000");
        assert_eq!(parsed.config.workers, 8);
        assert_eq!(parsed.config.queue_depth, 32);
        assert_eq!(parsed.config.default_deadline_ms, 1500);
        assert_eq!(parsed.config.max_frame_bytes, 65536);
    }

    #[test]
    fn parse_rejects_unknown_flags_and_missing_archive() {
        assert!(parse_args(&s(&[])).is_err());
        assert!(parse_args(&s(&["arch", "--bogus"])).is_err());
        assert!(parse_args(&s(&["arch", "--workers"])).is_err());
    }
}
