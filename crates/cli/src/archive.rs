//! Durable archive layout: a directory holding the engine configuration
//! and the two WORM device images.
//!
//! ```text
//! ARCHIVE/
//!   config.json    # EngineConfig (assignment, jump geometry, ranking)
//!   store.worm     # posting lists, tag dictionary, store header
//!   docs.worm      # record text, term dictionary, document metadata
//! ```
//!
//! `open` always goes through [`SearchEngine::recover`], so every start-up
//! re-verifies the structural invariants against the raw bytes.

use std::path::Path;
use tks_core::engine::{EngineConfig, EngineParts, SearchEngine};
use tks_postings::Timestamp;
use tks_worm::{load_fs, save_fs};

pub struct Archive {
    engine: SearchEngine,
}

impl Archive {
    /// Create a new archive directory with an empty engine.
    pub fn init(dir: &Path, config: EngineConfig) -> Result<(), Box<dyn std::error::Error>> {
        if dir.join("config.json").exists() {
            return Err(format!("archive already exists at {}", dir.display()).into());
        }
        std::fs::create_dir_all(dir)?;
        let engine = SearchEngine::new(config.clone())?;
        std::fs::write(
            dir.join("config.json"),
            serde_json::to_string_pretty(&config)?,
        )?;
        let archive = Archive { engine };
        archive.save(dir)
    }

    /// Load and *recover* an archive: the engine is rebuilt from the raw
    /// WORM images with full invariant re-verification.
    pub fn open(dir: &Path) -> Result<Self, Box<dyn std::error::Error>> {
        let config: EngineConfig =
            serde_json::from_str(&std::fs::read_to_string(dir.join("config.json"))?)?;
        let store_fs = load_fs(&std::fs::read(dir.join("store.worm"))?)?;
        let doc_fs = load_fs(&std::fs::read(dir.join("docs.worm"))?)?;
        let pos_fs = if config.positional {
            Some(load_fs(&std::fs::read(dir.join("positions.worm"))?)?)
        } else {
            None
        };
        let engine = SearchEngine::recover(
            EngineParts {
                store_fs,
                doc_fs,
                pos_fs,
            },
            config,
        )?;
        Ok(Archive { engine })
    }

    /// Persist the WORM images.  Written atomically (temp + rename) so a
    /// crash mid-save leaves the previous committed image intact.
    pub fn save(&self, dir: &Path) -> Result<(), Box<dyn std::error::Error>> {
        let mut images = vec![
            ("store.worm", save_fs(self.engine.list_store().fs())?),
            ("docs.worm", save_fs(self.engine.doc_fs())?),
        ];
        if let Some(fs) = self.engine.positions_fs() {
            images.push(("positions.worm", save_fs(fs)?));
        }
        for (name, img) in images {
            let tmp = dir.join(format!("{name}.tmp"));
            std::fs::write(&tmp, img)?;
            std::fs::rename(&tmp, dir.join(name))?;
        }
        Ok(())
    }

    pub fn engine(&self) -> &SearchEngine {
        &self.engine
    }

    pub fn engine_mut(&mut self) -> &mut SearchEngine {
        &mut self.engine
    }

    /// Timestamp of the most recent committed document (floor for new
    /// commits; backdating is impossible by design).
    pub fn last_timestamp(&self) -> Timestamp {
        match self.engine.num_docs() {
            0 => Timestamp(0),
            n => self
                .engine
                .document_timestamp(tks_postings::DocId(n - 1))
                .unwrap_or(Timestamp(0)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tks_core::merge::MergeAssignment;
    use tks_jump::JumpConfig;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("tks-cli-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn config() -> EngineConfig {
        EngineConfig {
            assignment: MergeAssignment::uniform(16),
            jump: Some(JumpConfig::new(2048, 4, 1 << 32)),
            ..Default::default()
        }
    }

    #[test]
    fn init_add_reopen_search() {
        let dir = temp_dir("roundtrip");
        Archive::init(&dir, config()).unwrap();
        {
            let mut a = Archive::open(&dir).unwrap();
            a.engine_mut()
                .add_document("merger escrow instructions", Timestamp(10))
                .unwrap();
            a.engine_mut()
                .add_document("lunch menu", Timestamp(20))
                .unwrap();
            a.save(&dir).unwrap();
        }
        // A fresh process: reopen (full recovery) and query.
        let a = Archive::open(&dir).unwrap();
        let hits = a
            .engine()
            .execute(&tks_core::query::Query::disjunctive("merger escrow", 10))
            .unwrap()
            .hits;
        assert_eq!(hits.len(), 1);
        assert_eq!(a.last_timestamp(), Timestamp(20));
        assert!(a.engine().audit().is_clean());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn double_init_refused() {
        let dir = temp_dir("double");
        Archive::init(&dir, config()).unwrap();
        assert!(Archive::init(&dir, config()).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_image_refused() {
        let dir = temp_dir("trunc");
        Archive::init(&dir, config()).unwrap();
        {
            let mut a = Archive::open(&dir).unwrap();
            a.engine_mut()
                .add_document("evidence record", Timestamp(5))
                .unwrap();
            a.save(&dir).unwrap();
        }
        let img = std::fs::read(dir.join("store.worm")).unwrap();
        std::fs::write(dir.join("store.worm"), &img[..img.len() - 5]).unwrap();
        assert!(Archive::open(&dir).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipped_posting_byte_refused() {
        let dir = temp_dir("flip");
        Archive::init(&dir, config()).unwrap();
        {
            let mut a = Archive::open(&dir).unwrap();
            for i in 0..30u64 {
                a.engine_mut()
                    .add_document(&format!("record number {i} compliance"), Timestamp(i))
                    .unwrap();
            }
            a.save(&dir).unwrap();
        }
        // Flip one byte near the end of the image (inside posting data).
        let mut img = std::fs::read(dir.join("store.worm")).unwrap();
        let n = img.len();
        img[n - 10] ^= 0x80;
        std::fs::write(dir.join("store.worm"), &img).unwrap();
        // Either the image decoder or the structural recovery must refuse;
        // a silent success would mean a tampered index went live.
        assert!(Archive::open(&dir).is_err(), "tampered image must not open");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
