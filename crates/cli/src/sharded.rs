//! `tks archive` — a durable **sharded** archive: N hash-partitioned
//! WORM shards behind one writer/searcher pair (see `tks-shard` and
//! DESIGN.md §5e).
//!
//! ```text
//! ARCHIVE/
//!   shards.json      # {"shards": N, "replicas": R, "config": EngineConfig}
//!   shard-0000/      # one complete single-archive image set per shard
//!     store.worm
//!     docs.worm
//!     positions.worm # positional configs only
//!     replica-0/     # replicated archives only: one full image set
//!       store.worm   # per replica, chain-verified against the primary
//!       docs.worm
//!       positions.worm
//!     replica-1/
//!   shard-0001/
//!   ...
//! ```
//!
//! Every `open` runs the **per-shard** recovery path: each shard's
//! images are reloaded and structurally re-verified independently, and a
//! shard whose recovery is refused comes up *degraded* — reported on
//! stderr, excluded from answers, its images left untouched on disk —
//! while the surviving shards keep serving.
//!
//! Replicated archives (`init --replicas R`) recover every shard from
//! its primary **and** replica images: a replica with a longer verified
//! commit-chain prefix is *promoted* over a failed or chain-mismatched
//! primary (reported on stderr, persisted as the new primary on the
//! next write), and replicas matching the chosen engine's exact trust
//! state serve reads.  Writes re-attach the replication taps, so every
//! committed mutation fans out to the replica images before `save`
//! persists them; a quarantined or missing replica is re-seeded from
//! the primary through the same chain-verified catch-up path.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use tks_core::engine::{EngineConfig, EngineParts, SearchEngine};
use tks_core::query::Query;
use tks_postings::{DocId, Timestamp};
use tks_replica::{attach, detach, fresh_images, ApplyMode, ReplicaSet};
use tks_shard::{
    local_of, shard_of, QuerySession, ReplicatedShardParts, ShardRecovery, ShardedArchive,
    ShardedResponse, ShardedWriter,
};
use tks_worm::{discover_shard_dirs, load_fs, save_fs, shard_dir_name};

use crate::CliResult;

/// Per-shard live replica fan-out: `None` for degraded shards, which
/// keep their on-disk replica images untouched for the next recovery.
type ShardReplicaSets = Vec<Option<Arc<ReplicaSet>>>;

/// The archive manifest persisted as `shards.json`: the shard count is
/// part of the archive's identity (routing is `hash % shards`, so the
/// count can never change after init) and every shard runs one copy of
/// the same engine configuration.
#[derive(serde::Serialize, serde::Deserialize)]
struct Manifest {
    shards: u32,
    /// Replica images per shard (0 = unreplicated; absent in archives
    /// initialised before replication existed).
    #[serde(default)]
    replicas: u32,
    config: EngineConfig,
}

pub fn usage_lines() -> &'static str {
    "  tks archive init ARCHIVE --shards N [--replicas R] [--lists M] [--jump B] [--block-size L] [--positional]\n  \
     tks archive add ARCHIVE FILE...\n  tks archive note ARCHIVE TS TEXT...\n  \
     tks archive query ARCHIVE KEYWORD... [--top K]\n  tks archive all ARCHIVE KEYWORD...\n  \
     tks archive info ARCHIVE\n  tks archive replicas ARCHIVE\n  tks archive verify ARCHIVE"
}

pub fn cmd_archive(args: &[String]) -> CliResult {
    let Some(sub) = args.first() else {
        return Err(format!("archive needs a subcommand:\n{}", usage_lines()).into());
    };
    match sub.as_str() {
        "init" => cmd_init(&args[1..]),
        "add" => cmd_add(&args[1..]),
        "note" => cmd_note(&args[1..]),
        "query" => cmd_query(&args[1..], false),
        "all" => cmd_query(&args[1..], true),
        "info" => cmd_info(&args[1..]),
        "replicas" => cmd_replicas(&args[1..]),
        "verify" => cmd_verify(&args[1..]),
        other => Err(format!("unknown archive subcommand {other}:\n{}", usage_lines()).into()),
    }
}

fn archive_path(args: &[String]) -> Result<PathBuf, Box<dyn std::error::Error>> {
    args.first()
        .map(PathBuf::from)
        .ok_or_else(|| "missing ARCHIVE argument".into())
}

// ---------------------------------------------------------------- init

fn cmd_init(args: &[String]) -> CliResult {
    let dir = archive_path(args)?;
    let mut shards: Option<u32> = None;
    let mut replicas = 0u32;
    let mut lists = 1024u32;
    let mut jump_b: Option<u32> = Some(32);
    let mut block = 8192usize;
    let mut positional = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--shards" => {
                i += 1;
                shards = Some(args.get(i).ok_or("--shards needs a value")?.parse()?);
            }
            "--replicas" => {
                i += 1;
                replicas = args.get(i).ok_or("--replicas needs a value")?.parse()?;
            }
            "--lists" => {
                i += 1;
                lists = args.get(i).ok_or("--lists needs a value")?.parse()?;
            }
            "--jump" => {
                i += 1;
                let b: u32 = args.get(i).ok_or("--jump needs a value")?.parse()?;
                jump_b = if b == 0 { None } else { Some(b) };
            }
            "--block-size" => {
                i += 1;
                block = args.get(i).ok_or("--block-size needs a value")?.parse()?;
            }
            "--positional" => positional = true,
            other => return Err(format!("unknown flag {other}").into()),
        }
        i += 1;
    }
    let shards = shards.ok_or("archive init needs --shards N")?;
    if shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    if lists == 0 {
        return Err("--lists must be at least 1".into());
    }
    if dir.join("shards.json").exists() {
        return Err(format!("archive already exists at {}", dir.display()).into());
    }
    let mut builder = EngineConfig::builder()
        .block_size(block)
        .assignment(tks_core::merge::MergeAssignment::uniform(lists))
        .positional(positional);
    if let Some(b) = jump_b {
        builder = builder.jump(tks_jump::JumpConfig {
            block_size: block.max(2048),
            branching: b,
            max_key: 1 << 32,
        });
    }
    let config = builder.build()?;
    std::fs::create_dir_all(&dir)?;
    // Fresh empty engines, saved shard by shard: the per-shard image set
    // is exactly the single-archive layout, so each shard could even be
    // inspected with the unsharded tooling.
    let archive = ShardedArchive::create(config.clone(), shards)?;
    let (mut writer, searcher) = archive.into_service();
    drop(searcher);
    let sets = attach_replica_sets(&mut writer, Vec::new(), replicas);
    save(&dir, writer, sets)?;
    std::fs::write(
        dir.join("shards.json"),
        serde_json::to_string_pretty(&Manifest {
            shards,
            replicas,
            config,
        })?,
    )?;
    println!(
        "initialized sharded archive at {} ({} shard(s), {} replica(s) each)",
        dir.display(),
        shards,
        replicas
    );
    Ok(())
}

// ------------------------------------------------------------ open/save

/// Reload and recover every shard.  Degraded shards are reported on
/// stderr; the archive keeps serving from the healthy ones.
pub(crate) fn open(dir: &Path) -> Result<ShardedArchive, Box<dyn std::error::Error>> {
    Ok(open_full(dir)?.0)
}

/// [`open`], keeping the per-shard recovery records and the manifest
/// (for the `replicas` status command and the write path).
fn open_full(
    dir: &Path,
) -> Result<(ShardedArchive, Vec<ShardRecovery>, Manifest), Box<dyn std::error::Error>> {
    let manifest: Manifest =
        serde_json::from_str(&std::fs::read_to_string(dir.join("shards.json"))?)?;
    let shard_dirs = discover_shard_dirs(dir)?;
    if shard_dirs.len() != manifest.shards as usize {
        return Err(format!(
            "archive manifest names {} shard(s) but {} shard director{} present",
            manifest.shards,
            shard_dirs.len(),
            if shard_dirs.len() == 1 {
                "y is"
            } else {
                "ies are"
            }
        )
        .into());
    }
    let (archive, recoveries) = if manifest.replicas == 0 {
        let mut parts = Vec::with_capacity(shard_dirs.len());
        for d in &shard_dirs {
            // An unreadable or corrupt image degrades *this shard only*
            // (`Err` → `recover_loaded` isolates it); the healthy shards
            // keep the archive serving.
            parts.push(load_parts(d, &manifest.config).map_err(|e| e.to_string()));
        }
        ShardedArchive::recover_loaded(parts, manifest.config.clone())?
    } else {
        // Replicated recovery: hand every shard's primary *and* replica
        // images to the failover path.  An unreadable candidate arrives
        // as `Err` — recovery promotes a verified replica over a lost
        // primary, and only degrades when nothing verifies.
        let mut parts = Vec::with_capacity(shard_dirs.len());
        for d in &shard_dirs {
            let primary = load_parts(d, &manifest.config).map_err(|e| e.to_string());
            let replicas = (0..manifest.replicas)
                .map(|r| {
                    load_parts(&d.join(replica_dir_name(r as usize)), &manifest.config)
                        .map_err(|e| e.to_string())
                })
                .collect();
            parts.push(ReplicatedShardParts { primary, replicas });
        }
        ShardedArchive::recover_replicated(parts, manifest.config.clone())?
    };
    report_recoveries(&recoveries);
    Ok((archive, recoveries, manifest))
}

/// A replica's image directory inside its shard directory.
fn replica_dir_name(replica: usize) -> String {
    format!("replica-{replica}")
}

/// One shard's images → `EngineParts`.
fn load_parts(
    shard_dir: &Path,
    config: &EngineConfig,
) -> Result<EngineParts, Box<dyn std::error::Error>> {
    let read = |name: &str| -> Result<Vec<u8>, Box<dyn std::error::Error>> {
        std::fs::read(shard_dir.join(name))
            .map_err(|e| format!("{}/{name}: {e}", shard_dir.display()).into())
    };
    let store_fs = load_fs(&read("store.worm")?)?;
    let doc_fs = load_fs(&read("docs.worm")?)?;
    let pos_fs = if config.positional {
        Some(load_fs(&read("positions.worm")?)?)
    } else {
        None
    };
    Ok(EngineParts {
        store_fs,
        doc_fs,
        pos_fs,
    })
}

fn report_recoveries(recoveries: &[ShardRecovery]) {
    for r in recoveries {
        if let Some(reason) = &r.error {
            eprintln!(
                "warning: shard {} is DEGRADED and will not be consulted: {reason}",
                r.shard
            );
        } else if r.quarantined_bytes > 0 {
            eprintln!(
                "note: shard {} quarantined {} torn-commit residue byte(s) during recovery",
                r.shard, r.quarantined_bytes
            );
        }
        if let Some(promoted) = r.promoted_from {
            eprintln!(
                "note: shard {} PROMOTED replica {promoted} over its primary \
                 (longest verified chain prefix; persisted as the new primary on the next write)",
                r.shard
            );
        }
        for v in &r.replicas {
            if let Some(err) = &v.error {
                eprintln!(
                    "warning: shard {} replica {} unusable: {err}",
                    r.shard, v.replica
                );
            }
        }
    }
}

/// Open an archive for a writing command: recover (promotion included),
/// split into the service, and — for replicated archives — rebuild one
/// live [`ReplicaSet`] per healthy shard from the recovered standbys,
/// re-seeding quarantined or missing replicas from the primary through
/// the chain-verified catch-up in [`attach`].
fn open_for_write(
    dir: &Path,
) -> Result<(ShardedWriter, ShardReplicaSets), Box<dyn std::error::Error>> {
    let (mut archive, _, manifest) = open_full(dir)?;
    let standbys = archive.take_standbys();
    let (mut writer, searcher) = archive.into_service();
    drop(searcher);
    let sets = attach_replica_sets(&mut writer, standbys, manifest.replicas);
    Ok((writer, sets))
}

/// Attach one inline-mode [`ReplicaSet`] of `replicas` images to every
/// healthy shard.  A recovered standby keeps its devices (catch-up is a
/// no-op diff); a replica slot with no surviving standby — quarantined,
/// lagging, or promoted into the primary role — is re-seeded with fresh
/// devices and caught up from the primary.
fn attach_replica_sets(
    writer: &mut ShardedWriter,
    mut standbys: Vec<Vec<(usize, Box<SearchEngine>)>>,
    replicas: u32,
) -> ShardReplicaSets {
    let shards = writer.shards() as usize;
    standbys.resize_with(shards, Vec::new);
    let mut sets = Vec::with_capacity(shards);
    for (sid, survivors) in standbys.into_iter().enumerate() {
        if replicas == 0 {
            sets.push(None);
            continue;
        }
        let mut by_index: Vec<Option<EngineParts>> = (0..replicas as usize).map(|_| None).collect();
        for (r, engine) in survivors {
            if let Some(slot) = by_index.get_mut(r) {
                *slot = Some(engine.into_parts());
            }
        }
        let attached = writer.with_engine(sid as u32, move |engine| {
            let missing = by_index.iter().filter(|s| s.is_none()).count();
            let mut fresh = fresh_images(engine, missing).into_iter();
            let images: Vec<EngineParts> = by_index
                .into_iter()
                .filter_map(|slot| slot.or_else(|| fresh.next()))
                .collect();
            let set = Arc::new(ReplicaSet::new(images, ApplyMode::Inline));
            attach(engine, &set);
            set
        });
        // A degraded shard gets no live replication; its replica images
        // stay on disk untouched (they may be the only evidence left).
        sets.push(attached.ok());
    }
    sets
}

/// Persist every live shard's images (temp + rename per file, so a crash
/// mid-save leaves the previous committed images intact).  Degraded
/// shards are skipped: their on-disk images stay exactly as found, as
/// evidence.  Replica sets are detached, reclaimed, and their images
/// persisted under `shard-NNNN/replica-R/`.
fn save(dir: &Path, mut writer: ShardedWriter, sets: ShardReplicaSets) -> CliResult {
    for (sid, set) in sets.iter().enumerate() {
        if set.is_some() {
            // Drop the taps' references so the set can be reclaimed.
            let _ = writer.with_engine(sid as u32, detach);
        }
    }
    let engines = writer
        .try_into_engines()
        .map_err(|_| "archive still has live searcher handles")?;
    for (sid, slot) in engines.into_iter().enumerate() {
        let Some(engine) = slot else { continue };
        let shard_dir = dir.join(shard_dir_name(sid as u32));
        std::fs::create_dir_all(&shard_dir)?;
        let parts = engine.into_parts();
        save_images(&shard_dir, &parts)?;
    }
    for (sid, set) in sets.into_iter().enumerate() {
        let Some(set) = set else { continue };
        let images =
            ReplicaSet::reclaim(set).map_err(|_| "replica set still has live tap references")?;
        for (r, (parts, fault)) in images.into_iter().enumerate() {
            if let Some(fault) = &fault {
                eprintln!(
                    "warning: shard {sid} replica {r} quarantined during this run \
                     (persisting its image as-is): {fault}"
                );
            }
            let replica_dir = dir
                .join(shard_dir_name(sid as u32))
                .join(replica_dir_name(r));
            std::fs::create_dir_all(&replica_dir)?;
            save_images(&replica_dir, &parts)?;
        }
    }
    Ok(())
}

/// One image set (primary or replica) → `store.worm` / `docs.worm` /
/// `positions.worm` in `image_dir`, temp + rename per file.
fn save_images(image_dir: &Path, parts: &EngineParts) -> CliResult {
    let mut images = vec![
        ("store.worm", save_fs(&parts.store_fs)?),
        ("docs.worm", save_fs(&parts.doc_fs)?),
    ];
    if let Some(fs) = &parts.pos_fs {
        images.push(("positions.worm", save_fs(fs)?));
    }
    for (name, img) in images {
        let tmp = image_dir.join(format!("{name}.tmp"));
        std::fs::write(&tmp, img)?;
        std::fs::rename(&tmp, image_dir.join(name))?;
    }
    Ok(())
}

// ------------------------------------------------------------- commands

/// The commit-time floor across live shards: each shard enforces its own
/// monotone commit times, so new documents are committed at no less than
/// the newest timestamp on *any* shard (commit times stay comparable
/// archive-wide; backdating is impossible by design).
fn last_timestamp(writer: &mut ShardedWriter) -> Timestamp {
    let mut floor = Timestamp(0);
    for shard in 0..writer.shards() {
        let ts = writer.with_engine(shard, |e| match e.num_docs() {
            0 => Timestamp(0),
            n => e.document_timestamp(DocId(n - 1)).unwrap_or(Timestamp(0)),
        });
        if let Ok(ts) = ts {
            floor = floor.max(ts);
        }
    }
    floor
}

fn cmd_add(args: &[String]) -> CliResult {
    let dir = archive_path(args)?;
    if args.len() < 2 {
        return Err("archive add needs at least one FILE".into());
    }
    let (mut writer, sets) = open_for_write(&dir)?;
    let mut inputs = Vec::new();
    for f in &args[1..] {
        let path = PathBuf::from(f);
        let (text, ts) = crate::read_text_file(&path)?;
        inputs.push((ts, path, text));
    }
    inputs.sort_by_key(|(ts, ..)| *ts);
    let floor = last_timestamp(&mut writer);
    for (mut ts, path, text) in inputs {
        if ts < floor {
            eprintln!(
                "note: {} has mtime {} before the archive head {}; committing at the head \
                 (backdating is impossible by design)",
                path.display(),
                ts.0,
                floor.0
            );
            ts = floor;
        }
        let doc = writer.commit(&text, ts)?;
        println!(
            "committed {} as {doc} @ t={} (shard {})",
            path.display(),
            ts.0,
            shard_of(doc)
        );
    }
    save(&dir, writer, sets)
}

fn cmd_note(args: &[String]) -> CliResult {
    let dir = archive_path(args)?;
    let ts: u64 = args.get(1).ok_or("archive note needs TS")?.parse()?;
    if args.len() < 3 {
        return Err("archive note needs TEXT".into());
    }
    let text = args[2..].join(" ");
    let (mut writer, sets) = open_for_write(&dir)?;
    let floor = last_timestamp(&mut writer);
    let ts = Timestamp(ts).max(floor);
    let doc = writer.commit(&text, ts)?;
    println!("committed {doc} @ t={} (shard {})", ts.0, shard_of(doc));
    save(&dir, writer, sets)
}

fn cmd_query(args: &[String], conjunctive: bool) -> CliResult {
    let dir = archive_path(args)?;
    let mut top = 10usize;
    let mut keywords = Vec::new();
    let mut i = 1;
    while i < args.len() {
        if args[i] == "--top" {
            i += 1;
            top = args.get(i).ok_or("--top needs a value")?.parse()?;
        } else {
            keywords.push(args[i].clone());
        }
        i += 1;
    }
    if keywords.is_empty() {
        return Err("no keywords given".into());
    }
    let (mut writer, searcher) = open(&dir)?.into_service();
    // One pinned session per invocation: the result list and the trust
    // line below are guaranteed to describe the same snapshot.
    let session = QuerySession::open(&searcher);
    let query = keywords.join(" ");
    let resp = if conjunctive {
        session.execute(Query::conjunctive(query.as_str()))?
    } else {
        session.execute(Query::disjunctive(query.as_str(), top))?
    };
    if conjunctive {
        println!("{} document(s) contain all of [{query}]:", resp.hits.len());
    } else {
        println!("top {} of [{query}]:", resp.hits.len());
    }
    for h in &resp.hits {
        let (shard, local) = (shard_of(h.doc), local_of(h.doc));
        let (ts, preview) = writer
            .with_engine(shard, |e| {
                (
                    e.document_timestamp(local).map(|t| t.0).unwrap_or(0),
                    e.document_text(local)
                        .map(|t| t.chars().take(70).collect::<String>())
                        .unwrap_or_else(|| "<text not stored>".into()),
                )
            })
            .unwrap_or((0, "<shard degraded>".into()));
        if conjunctive {
            println!("  {} (shard {shard}) @ t={ts}: {preview}", h.doc);
        } else {
            println!(
                "  {} (shard {shard}) @ t={ts} (score {:.3}): {preview}",
                h.doc, h.score
            );
        }
    }
    print_trust(&resp);
    Ok(())
}

/// One line of trust/cost metadata after every result list, naming any
/// shards the answer could not consult.
fn print_trust(resp: &ShardedResponse) {
    let degraded = resp.degraded();
    print!(
        "  [{} block read(s); {} docs visible; {}",
        resp.blocks_read,
        resp.visible_docs,
        if resp.trusted {
            "consulted shards clean"
        } else {
            "DEVICES REPORT TAMPER ATTEMPTS"
        }
    );
    if resp.quarantined_bytes > 0 {
        print!("; {} quarantined byte(s)", resp.quarantined_bytes);
    }
    if !degraded.is_empty() {
        let ids: Vec<String> = degraded.iter().map(|s| s.shard.to_string()).collect();
        print!("; shard(s) {} DEGRADED and not consulted", ids.join(", "));
    }
    println!("]");
}

/// The typed verdict `tks archive verify` exits nonzero with: every
/// shard-level finding, in shard order.  Each finding names the shard
/// and the failing check (recovery refusal, commit-chain mismatch, or a
/// non-empty WORM tamper log), so an investigator's script can both
/// branch on the exit code and parse the evidence.
#[derive(Debug)]
pub struct VerifyFailure {
    /// One line per failing check, `shard N: <what>`.
    pub findings: Vec<String>,
}

impl std::fmt::Display for VerifyFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "archive verification FAILED ({} finding(s)):",
            self.findings.len()
        )?;
        for finding in &self.findings {
            writeln!(f, "  {finding}")?;
        }
        Ok(())
    }
}

impl std::error::Error for VerifyFailure {}

/// Full-archive chain recheck: reload every shard, rerun recovery (which
/// recomputes the commit chain over the surviving bytes and compares it
/// against the persisted links), and report per shard.  Exits nonzero
/// with a [`VerifyFailure`] if any shard refuses recovery, any chain
/// link fails to match, or any WORM tamper log is non-empty.
fn cmd_verify(args: &[String]) -> CliResult {
    let dir = archive_path(args)?;
    let manifest: Manifest =
        serde_json::from_str(&std::fs::read_to_string(dir.join("shards.json"))?)?;
    let shard_dirs = discover_shard_dirs(&dir)?;
    let mut findings = Vec::new();
    if shard_dirs.len() != manifest.shards as usize {
        findings.push(format!(
            "archive: manifest names {} shard(s) but {} present",
            manifest.shards,
            shard_dirs.len()
        ));
    }
    let parts: Vec<_> = shard_dirs
        .iter()
        .map(|d| load_parts(d, &manifest.config).map_err(|e| e.to_string()))
        .collect();
    let (archive, recoveries) = ShardedArchive::recover_loaded(parts, manifest.config)?;
    for r in &recoveries {
        if let Some(reason) = &r.error {
            findings.push(format!("shard {}: recovery refused: {reason}", r.shard));
        }
    }
    for shard in 0..archive.shards() {
        let Some(engine) = archive.engine(shard) else {
            continue;
        };
        let report = engine.recovery_report();
        print!(
            "shard {shard}: {} committed link(s), head {}",
            engine.num_docs(),
            engine.chain_head()
        );
        if report.total_quarantined_bytes() > 0 {
            print!(", {} quarantined byte(s)", report.total_quarantined_bytes());
        }
        if let Some(mismatch) = engine.chain_mismatch() {
            println!(" — CHAIN MISMATCH");
            findings.push(format!("shard {shard}: commit-chain mismatch: {mismatch}"));
        } else if !engine.tamper_logs_clean() {
            println!(" — TAMPER LOG NON-EMPTY");
            findings.push(format!(
                "shard {shard}: a WORM device rejected overwrite/early-delete attempts"
            ));
        } else {
            println!(" — chain verified");
        }
    }
    if findings.is_empty() {
        println!(
            "OK: all {} shard(s) verified against their commit chains",
            archive.shards()
        );
        Ok(())
    } else {
        Err(Box::new(VerifyFailure { findings }))
    }
}

/// Per-replica health: recover the archive (promotion included) and
/// print each shard's replica verdicts — watermark, chain head,
/// verified/quarantined, and whether it will serve reads.
fn cmd_replicas(args: &[String]) -> CliResult {
    let dir = archive_path(args)?;
    let (archive, recoveries, manifest) = open_full(&dir)?;
    println!("archive:  {}", dir.display());
    println!("replicas: {} per shard", manifest.replicas);
    if manifest.replicas == 0 {
        println!("(archive is unreplicated; re-init with --replicas R to replicate)");
        return Ok(());
    }
    let standby_counts = archive.standby_counts();
    for r in &recoveries {
        let role = match (&r.error, r.promoted_from) {
            (Some(reason), _) => format!("DEGRADED: {reason}"),
            (None, Some(p)) => format!("serving from PROMOTED replica {p}"),
            (None, None) => "serving from primary".to_string(),
        };
        let standbys = standby_counts.get(r.shard as usize).copied().unwrap_or(0);
        println!("shard {}: {role} ({standbys} read standby(s))", r.shard);
        for v in &r.replicas {
            let state = match (&v.error, v.verified) {
                (Some(err), _) => format!("UNUSABLE: {err}"),
                (None, false) => "recovered but unverified".to_string(),
                (None, true) => "verified".to_string(),
            };
            let head = match &v.chain_head {
                Some(h) => h.to_string(),
                None => "-".to_string(),
            };
            print!(
                "  replica {}: {state}; {} doc(s) verified, head {head}",
                v.replica, v.watermark
            );
            if v.quarantined_bytes > 0 {
                print!(", {} quarantined byte(s)", v.quarantined_bytes);
            }
            println!();
        }
    }
    Ok(())
}

fn cmd_info(args: &[String]) -> CliResult {
    let dir = archive_path(args)?;
    let archive = open(&dir)?;
    println!("archive:     {}", dir.display());
    println!("shards:      {}", archive.shards());
    println!("documents:   {} (healthy shards)", archive.num_docs());
    for shard in 0..archive.shards() {
        match archive.engine(shard) {
            Some(e) => println!("  shard {shard}: {} document(s)", e.num_docs()),
            None => println!("  shard {shard}: DEGRADED"),
        }
    }
    for (shard, reason) in archive.degraded() {
        println!("degraded {shard}: {reason}");
    }
    let c = archive.config();
    println!("lists/shard: {}", c.assignment.num_lists());
    match &c.jump {
        Some(j) => println!("jump index:  B={} (block {} B)", j.branching, j.block_size),
        None => println!("jump index:  disabled"),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("tks-cli-sharded-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn arg(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_string).collect()
    }

    #[test]
    fn init_note_reopen_query_roundtrip() {
        let dir = temp_dir("roundtrip");
        let d = dir.to_string_lossy().to_string();
        cmd_archive(&arg(&format!(
            "init {d} --shards 3 --lists 16 --jump 4 --block-size 2048"
        )))
        .unwrap();
        cmd_archive(&arg(&format!("note {d} 100 merger escrow instructions"))).unwrap();
        cmd_archive(&arg(&format!("note {d} 200 lunch menu"))).unwrap();
        // A fresh "process": reopen (full per-shard recovery) and query.
        let archive = open(&dir).unwrap();
        assert_eq!(archive.shards(), 3);
        assert_eq!(archive.num_docs(), 2);
        let (_, searcher) = archive.into_service();
        let resp = searcher
            .execute(Query::disjunctive("merger escrow", 10))
            .unwrap();
        assert_eq!(resp.hits.len(), 1);
        assert!(resp.trusted);
        assert!(resp.degraded().is_empty());
        cmd_archive(&arg(&format!("query {d} merger escrow --top 5"))).unwrap();
        cmd_archive(&arg(&format!("info {d}"))).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn double_init_and_zero_shards_refused() {
        let dir = temp_dir("refuse");
        let d = dir.to_string_lossy().to_string();
        assert!(cmd_archive(&arg(&format!("init {d} --shards 0"))).is_err());
        cmd_archive(&arg(&format!("init {d} --shards 2 --lists 8 --jump 0"))).unwrap();
        assert!(cmd_archive(&arg(&format!("init {d} --shards 2"))).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_shard_degrades_but_archive_keeps_answering() {
        let dir = temp_dir("degraded");
        let d = dir.to_string_lossy().to_string();
        cmd_archive(&arg(&format!(
            "init {d} --shards 2 --lists 8 --jump 0 --block-size 2048"
        )))
        .unwrap();
        // Enough notes that both shards hold documents.
        for i in 0..8u64 {
            cmd_archive(&arg(&format!("note {d} {} compliance record {i}", 100 + i))).unwrap();
        }
        let archive = open(&dir).unwrap();
        let per_shard: Vec<u64> = (0..2)
            .map(|s| archive.engine(s).unwrap().num_docs())
            .collect();
        assert!(
            per_shard.iter().all(|&n| n > 0),
            "routing spread: {per_shard:?}"
        );
        drop(archive);
        // Truncate shard 1's posting image: its checksum no longer
        // matches, so that shard (and only that shard) must degrade.
        let victim = dir.join(shard_dir_name(1)).join("store.worm");
        let img = std::fs::read(&victim).unwrap();
        std::fs::write(&victim, &img[..img.len() - 5]).unwrap();
        let archive = open(&dir).unwrap();
        assert_eq!(archive.degraded().len(), 1);
        assert_eq!(archive.degraded()[0].0, 1);
        assert_eq!(archive.num_docs(), per_shard[0]);
        let (_, searcher) = archive.into_service();
        let resp = searcher.execute(Query::conjunctive("compliance")).unwrap();
        assert!(resp.trusted, "shard 0's verdict is its own");
        assert_eq!(resp.degraded().len(), 1);
        assert_eq!(resp.hits.len() as u64, per_shard[0]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Build a tiny single-shard archive with two known notes and
    /// return its directory.
    fn verified_fixture(tag: &str) -> PathBuf {
        let dir = temp_dir(tag);
        let d = dir.to_string_lossy().to_string();
        cmd_archive(&arg(&format!(
            "init {d} --shards 1 --lists 8 --jump 0 --block-size 2048"
        )))
        .unwrap();
        cmd_archive(&arg(&format!("note {d} 100 merger escrow instructions"))).unwrap();
        cmd_archive(&arg(&format!("note {d} 200 quarterly retention audit"))).unwrap();
        cmd_archive(&arg(&format!("verify {d}"))).expect("pristine archive must verify");
        dir
    }

    /// Recompute a persisted image's trailing SHA-256 footer after a
    /// mutation, imitating an adversary who controls the storage medium
    /// and regenerates the integrity checksum to cover their edit.
    fn reforge_footer(img: &mut [u8]) {
        let body = img.len() - 32;
        let footer = tks_worm::sha256(&img[..body]);
        img[body..].copy_from_slice(&footer);
    }

    /// Every single-byte flip in every persisted image must make
    /// `tks archive verify` exit nonzero — nothing in any image is
    /// mutable without detection.
    #[test]
    fn verify_flags_every_single_byte_flip() {
        let dir = verified_fixture("byteflip");
        let d = dir.to_string_lossy().to_string();
        let verify = arg(&format!("verify {d}"));
        for name in ["store.worm", "docs.worm"] {
            let path = dir.join(shard_dir_name(0)).join(name);
            let pristine = std::fs::read(&path).unwrap();
            for i in 0..pristine.len() {
                let mut img = pristine.clone();
                img[i] ^= 0x01;
                std::fs::write(&path, &img).unwrap();
                assert!(
                    cmd_archive(&verify).is_err(),
                    "flip at {name}[{i}] went undetected"
                );
            }
            std::fs::write(&path, &pristine).unwrap();
        }
        cmd_archive(&verify).expect("restored archive must verify again");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// An adversary who rewrites the image *and* regenerates its
    /// checksum footer defeats the footer — only the commit chain,
    /// whose head the investigator compares out-of-band, catches the
    /// edit.  Tamper with document text, a DOCMETA commit record, and a
    /// persisted chain link; each must surface as a chain mismatch.
    #[test]
    fn verify_catches_tamper_behind_a_reforged_checksum() {
        let dir = verified_fixture("reforged");
        let d = dir.to_string_lossy().to_string();
        let verify = arg(&format!("verify {d}"));
        let docs_path = dir.join(shard_dir_name(0)).join("docs.worm");
        let pristine = std::fs::read(&docs_path).unwrap();

        let position_of = |needle: &[u8]| -> usize {
            pristine
                .windows(needle.len())
                .position(|w| w == needle)
                .expect("fixture bytes present in image")
        };
        // Document text (tokens, so a single-token needle), a DOCMETA
        // record (ts=100 || token count 3), and the first chain link
        // (its prev_head is the genesis head).
        let text_at = position_of(b"merger");
        let mut docmeta = 100u64.to_le_bytes().to_vec();
        docmeta.extend_from_slice(&3u64.to_le_bytes());
        let docmeta_at = position_of(&docmeta);
        let link_at = position_of(&tks_worm::ChainHead::genesis().0);

        for (what, at) in [
            ("document text", text_at),
            ("DOCMETA record", docmeta_at),
            ("chain link", link_at),
        ] {
            let mut img = pristine.clone();
            img[at] ^= 0x01;
            reforge_footer(&mut img);
            std::fs::write(&docs_path, &img).unwrap();
            let err = cmd_archive(&verify)
                .expect_err(&format!("reforged tamper of {what} went undetected"));
            let report = err.to_string();
            assert!(
                report.contains("commit-chain mismatch") || report.contains("recovery refused"),
                "tamper of {what} must be a typed chain finding, got: {report}"
            );
        }
        std::fs::write(&docs_path, &pristine).unwrap();
        cmd_archive(&verify).expect("restored archive must verify again");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A replicated archive writes replica image sets that stay
    /// byte-identical to the primaries across writes and reopens.
    #[test]
    fn replicated_init_note_reopen_roundtrip() {
        let dir = temp_dir("replicated");
        let d = dir.to_string_lossy().to_string();
        cmd_archive(&arg(&format!(
            "init {d} --shards 2 --replicas 2 --lists 8 --jump 0 --block-size 2048"
        )))
        .unwrap();
        for i in 0..6u64 {
            cmd_archive(&arg(&format!("note {d} {} retention ledger {i}", 100 + i))).unwrap();
        }
        // Every replica image is byte-identical to its primary.
        for sid in 0..2u32 {
            let shard_dir = dir.join(shard_dir_name(sid));
            for name in ["store.worm", "docs.worm"] {
                let primary = std::fs::read(shard_dir.join(name)).unwrap();
                for r in 0..2 {
                    let replica =
                        std::fs::read(shard_dir.join(replica_dir_name(r)).join(name)).unwrap();
                    assert_eq!(primary, replica, "shard {sid} replica {r} {name}");
                }
            }
        }
        let (archive, recoveries, manifest) = open_full(&dir).unwrap();
        assert_eq!(manifest.replicas, 2);
        assert_eq!(archive.standby_counts(), vec![2, 2]);
        for r in &recoveries {
            assert!(r.promoted_from.is_none());
            assert!(r.replicas.iter().all(|v| v.verified), "{:?}", r.replicas);
        }
        cmd_archive(&arg(&format!("replicas {d}"))).unwrap();
        cmd_archive(&arg(&format!("query {d} retention ledger --top 3"))).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Losing a primary image promotes a verified replica instead of
    /// degrading the shard, and the next write persists the promoted
    /// state as the new primary.
    #[test]
    fn lost_primary_promotes_replica_and_reseeds() {
        let dir = temp_dir("promote");
        let d = dir.to_string_lossy().to_string();
        cmd_archive(&arg(&format!(
            "init {d} --shards 1 --replicas 2 --lists 8 --jump 0 --block-size 2048"
        )))
        .unwrap();
        for i in 0..4u64 {
            cmd_archive(&arg(&format!("note {d} {} audit trail {i}", 100 + i))).unwrap();
        }
        // Destroy the primary image set (the replica subdirectories
        // survive inside the shard directory).
        let shard_dir = dir.join(shard_dir_name(0));
        for name in ["store.worm", "docs.worm"] {
            std::fs::remove_file(shard_dir.join(name)).unwrap();
        }
        let (archive, recoveries, _) = open_full(&dir).unwrap();
        assert!(archive.degraded().is_empty(), "promotion, not degradation");
        assert_eq!(archive.num_docs(), 4);
        assert_eq!(recoveries[0].promoted_from, Some(0));
        drop(archive);
        // Queries still answer, trusted, from the promoted replica.
        let (_, searcher) = open(&dir).unwrap().into_service();
        let resp = searcher.execute(Query::conjunctive("audit")).unwrap();
        assert_eq!(resp.hits.len(), 4);
        assert!(resp.trusted);
        drop(searcher);
        // The next write persists the promoted image as the new primary
        // and re-seeds the full replica complement.
        cmd_archive(&arg(&format!("note {d} 500 post failover entry"))).unwrap();
        let (archive, recoveries, _) = open_full(&dir).unwrap();
        assert!(archive.degraded().is_empty());
        assert_eq!(archive.num_docs(), 5);
        assert_eq!(recoveries[0].promoted_from, None, "primary restored");
        assert_eq!(archive.standby_counts(), vec![2]);
        cmd_archive(&arg(&format!("verify {d}"))).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_shard_count_mismatch_refused() {
        let dir = temp_dir("mismatch");
        let d = dir.to_string_lossy().to_string();
        cmd_archive(&arg(&format!("init {d} --shards 2 --lists 8 --jump 0"))).unwrap();
        std::fs::remove_dir_all(dir.join(shard_dir_name(1))).unwrap();
        assert!(open(&dir).is_err(), "missing shard directory must refuse");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
