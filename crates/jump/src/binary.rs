//! The binary (per-entry) jump index of paper §4.1–§4.3.
//!
//! One node per indexed key; node `s` holds `log₂ N` jump pointers, where
//! the `i`-th pointer leads to the smallest key `l′` with
//! `key(s) + 2ⁱ ≤ l′ < key(s) + 2ⁱ⁺¹`.  `Insert`, `Lookup` and `FindGeq`
//! are transcribed from the paper's Figure 7 pseudocode, with each `assert`
//! realised as a [`TamperEvidence`] report.
//!
//! The structure is fossilized: legitimate operation only ever *appends*
//! nodes and *sets null pointers* — exactly the mutations WORM storage
//! permits.  The adversary interface ([`BinaryJumpIndex::adversary_append_node`],
//! [`BinaryJumpIndex::adversary_set_pointer`]) models what Mala can do with
//! raw device access, and the invariant checks show that none of it can
//! hide a committed key.

use crate::{JumpError, TamperEvidence};

const NULL: u32 = u32::MAX;

/// Per-entry binary jump index over a strictly increasing key sequence.
///
/// # Example
///
/// ```
/// use tks_jump::BinaryJumpIndex;
///
/// let mut idx = BinaryJumpIndex::new(1 << 16);
/// for k in [1u64, 2, 5, 7, 10, 15] {
///     idx.insert(k).unwrap();
/// }
/// assert!(idx.lookup(7).unwrap());
/// assert!(!idx.lookup(8).unwrap());
/// assert_eq!(idx.find_geq(8).unwrap(), Some(10));
/// assert_eq!(idx.find_geq(16).unwrap(), None);
/// ```
#[derive(Debug, Clone)]
pub struct BinaryJumpIndex {
    max_key: u64,
    levels: u32,
    /// Key per node, in insertion order (node 0 is the smallest key).
    keys: Vec<u64>,
    /// Flattened pointers: `ptrs[node * levels + i]`, `NULL` when unset.
    ptrs: Vec<u32>,
    last: Option<u64>,
}

impl BinaryJumpIndex {
    /// Create an empty index able to hold keys in `[0, max_key)`.
    ///
    /// # Panics
    ///
    /// Panics if `max_key < 2`.
    pub fn new(max_key: u64) -> Self {
        assert!(max_key >= 2, "max_key must be at least 2");
        let levels = 64 - (max_key - 1).leading_zeros();
        Self {
            max_key,
            levels,
            keys: Vec::new(),
            ptrs: Vec::new(),
            last: None,
        }
    }

    /// Number of indexed keys.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The largest key inserted so far.
    pub fn last_key(&self) -> Option<u64> {
        self.last
    }

    /// Number of jump levels (`⌈log₂ max_key⌉`).
    pub fn levels(&self) -> u32 {
        self.levels
    }

    fn ptr(&self, node: u32, i: u32) -> u32 {
        self.ptrs[node as usize * self.levels as usize + i as usize]
    }

    fn set_ptr(&mut self, node: u32, i: u32, target: u32) {
        self.ptrs[node as usize * self.levels as usize + i as usize] = target;
    }

    /// `i` with `s + 2ⁱ ≤ k < s + 2ⁱ⁺¹`, i.e. `⌊log₂(k − s)⌋`.
    fn exponent(s: u64, k: u64) -> u32 {
        debug_assert!(k > s);
        63 - (k - s).leading_zeros()
    }

    /// Insert `k` (paper: `Insert(k)`).  Keys must be strictly increasing.
    pub fn insert(&mut self, k: u64) -> Result<(), JumpError> {
        if k >= self.max_key {
            return Err(JumpError::KeyTooLarge {
                key: k,
                max: self.max_key,
            });
        }
        if let Some(last) = self.last {
            if k <= last {
                return Err(JumpError::NonMonotonicInsert { last, attempted: k });
            }
        }
        // Step 1–4: empty index → new root node.
        if self.keys.is_empty() {
            self.push_node(k);
            self.last = Some(k);
            return Ok(());
        }
        let mut s = 0u32; // node holding the smallest key
                          // Step 6 assert: s < k — guaranteed by the monotonicity check, but
                          // re-checked because the stored structure is the trust anchor.
        if self.keys[0] >= k {
            return Err(tamper("insert-root", self.keys[0], k).into());
        }
        loop {
            let i = Self::exponent(self.keys[s as usize], k);
            if self.ptr(s, i) == NULL {
                // Steps 9–12: create the node and set the pointer — both
                // are appends in WORM terms.
                let node = self.push_node(k);
                self.set_ptr(s, i, node);
                self.last = Some(k);
                return Ok(());
            }
            let next = self.ptr(s, i);
            let key_next = self.keys[next as usize];
            // Step 15 assert: s' < k.
            if key_next >= k {
                return Err(tamper("insert-path", key_next, k).into());
            }
            s = next;
        }
    }

    /// Look up `k` (paper: `Lookup(k)`); `Ok(true)` iff `k` was inserted.
    pub fn lookup(&self, k: u64) -> Result<bool, TamperEvidence> {
        Ok(self.lookup_with_path(k)?.0)
    }

    /// [`lookup`](Self::lookup), also returning the sequence of exponents
    /// `i₁, i₂, …` selected along the path (Proposition 1 states they
    /// strictly decrease).
    pub fn lookup_with_path(&self, k: u64) -> Result<(bool, Vec<u32>), TamperEvidence> {
        let mut path = Vec::new();
        if self.keys.is_empty() {
            return Ok((false, path));
        }
        let mut s = 0u32;
        loop {
            let key_s = self.keys[s as usize];
            if key_s > k {
                return Ok((false, path));
            }
            if key_s == k {
                return Ok((true, path));
            }
            let i = Self::exponent(key_s, k);
            path.push(i);
            let next = self.ptr(s, i);
            if next == NULL {
                return Ok((false, path));
            }
            let key_next = self.keys[next as usize];
            // Step 14 assert: s + 2ⁱ ≤ s' < s + 2ⁱ⁺¹.
            if !in_jump_range(key_s, i, key_next) {
                return Err(tamper_range("lookup-jump", key_s, i, key_next));
            }
            s = next;
        }
    }

    /// Smallest indexed key ≥ `k` (paper: `FindGeq(k)` / `FindGeqRec`).
    pub fn find_geq(&self, k: u64) -> Result<Option<u64>, TamperEvidence> {
        if self.keys.is_empty() {
            return Ok(None);
        }
        self.find_geq_rec(k, 0)
    }

    fn find_geq_rec(&self, k: u64, s: u32) -> Result<Option<u64>, TamperEvidence> {
        let key_s = self.keys[s as usize];
        // Step 1–3: the current key already satisfies the query.
        if key_s >= k {
            return Ok(Some(key_s));
        }
        // Step 4.
        let mut i = Self::exponent(key_s, k);
        // Steps 5–13: try the exact-range pointer first.
        let p = self.ptr(s, i);
        if p != NULL {
            let t = self.keys[p as usize];
            // Step 7 assert.
            if !in_jump_range(key_s, i, t) {
                return Err(tamper_range("findgeq-jump", key_s, i, t));
            }
            if let Some(res) = self.find_geq_rec(k, p)? {
                // Step 10 assert: the result must still lie in the range
                // this pointer is responsible for.
                if !in_jump_range(key_s, i, res) {
                    return Err(tamper_range("findgeq-result", key_s, i, res));
                }
                return Ok(Some(res));
            }
        }
        // Steps 14–22: no key ≥ k via pointer i; the first later non-null
        // pointer leads to the overall next larger key.
        i += 1;
        while i < self.levels {
            let p = self.ptr(s, i);
            if p != NULL {
                let t = self.keys[p as usize];
                // Step 18 assert.
                if !in_jump_range(key_s, i, t) {
                    return Err(tamper_range("findgeq-scan", key_s, i, t));
                }
                return Ok(Some(t));
            }
            i += 1;
        }
        Ok(None)
    }

    /// All indexed keys in ascending order (diagnostics/audits).
    pub fn keys_sorted(&self) -> Vec<u64> {
        let mut ks = self.keys.clone();
        ks.sort_unstable();
        ks
    }

    /// Full-structure audit: re-derive every pointer constraint and report
    /// the first violation.  Sound for any structure the adversary can
    /// reach by appends, because appends cannot change existing keys or
    /// set pointers twice.
    pub fn audit(&self) -> Result<(), TamperEvidence> {
        for node in 0..self.keys.len() as u32 {
            let key_s = self.keys[node as usize];
            for i in 0..self.levels {
                let p = self.ptr(node, i);
                if p == NULL {
                    continue;
                }
                if p as usize >= self.keys.len() {
                    return Err(TamperEvidence {
                        invariant: "audit-dangling",
                        detail: format!("node {node} pointer {i} targets missing node {p}"),
                    });
                }
                let t = self.keys[p as usize];
                if !in_jump_range(key_s, i, t) {
                    return Err(tamper_range("audit-range", key_s, i, t));
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Adversary interface: the mutations Mala can perform with raw WORM
    // access.  She can append new nodes and set pointers that are still
    // null; she can never alter an existing key or pointer.
    // ------------------------------------------------------------------

    /// Adversarially append a node with an arbitrary key (legal WORM
    /// append).  Returns the new node id.  Does *not* update `last`, since
    /// Mala bypasses the legitimate insertion code.
    pub fn adversary_append_node(&mut self, key: u64) -> u32 {
        self.push_node_raw(key)
    }

    /// Adversarially set a still-null pointer (legal WORM append).
    ///
    /// # Panics
    ///
    /// Panics if the pointer is already set — overwriting is physically
    /// impossible on WORM, so the attack harness must never attempt it.
    pub fn adversary_set_pointer(&mut self, node: u32, i: u32, target: u32) {
        assert_eq!(
            self.ptr(node, i),
            NULL,
            "WORM forbids overwriting a set pointer"
        );
        self.set_ptr(node, i, target);
    }

    fn push_node(&mut self, key: u64) -> u32 {
        let id = self.push_node_raw(key);
        self.last = Some(key);
        id
    }

    fn push_node_raw(&mut self, key: u64) -> u32 {
        let id = self.keys.len() as u32;
        self.keys.push(key);
        self.ptrs
            .extend(std::iter::repeat_n(NULL, self.levels as usize));
        id
    }
}

fn in_jump_range(s: u64, i: u32, t: u64) -> bool {
    // s + 2^i ≤ t < s + 2^{i+1}, computed without overflow.
    let lo = s.checked_add(1u64 << i);
    let hi = s.checked_add(1u64 << (i + 1).min(63));
    match (lo, hi) {
        (Some(lo), Some(hi)) => lo <= t && t < hi,
        (Some(lo), None) => lo <= t,
        _ => false,
    }
}

fn tamper(invariant: &'static str, found: u64, expected_below: u64) -> TamperEvidence {
    TamperEvidence {
        invariant,
        detail: format!("encountered key {found} where a key < {expected_below} was required"),
    }
}

fn tamper_range(invariant: &'static str, s: u64, i: u32, t: u64) -> TamperEvidence {
    TamperEvidence {
        invariant,
        detail: format!(
            "pointer {i} from key {s} reached {t}, outside [{s}+2^{i}, {s}+2^{})",
            i + 1
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn paper_figure_7a_example() {
        // Figure 7(a): sequence 1, 2, 5, 7, 10, 15.
        let mut idx = BinaryJumpIndex::new(32);
        for k in [1u64, 2, 5, 7, 10, 15] {
            idx.insert(k).unwrap();
        }
        // "the 0th pointer from 1 points to 2, as 1 + 2^0 ≤ 2 < 1 + 2^1"
        assert_eq!(idx.ptr(0, 0), 1);
        // "the 2nd pointer points to 5 since 1 + 2^2 ≤ 5 < 1 + 2^3"
        assert_eq!(idx.ptr(0, 2), 2);
        // "To look up 7 … one follows the 2nd pointer from 1 to 5 and the
        // 1st pointer from 5 to 7."
        let (found, path) = idx.lookup_with_path(7).unwrap();
        assert!(found);
        assert_eq!(path, vec![2, 1]);
    }

    #[test]
    fn insert_rejects_non_monotonic_and_too_large() {
        let mut idx = BinaryJumpIndex::new(16);
        idx.insert(5).unwrap();
        assert!(matches!(
            idx.insert(5),
            Err(JumpError::NonMonotonicInsert { .. })
        ));
        assert!(matches!(
            idx.insert(3),
            Err(JumpError::NonMonotonicInsert { .. })
        ));
        assert!(matches!(idx.insert(16), Err(JumpError::KeyTooLarge { .. })));
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn lookup_on_empty_and_below_root() {
        let idx = BinaryJumpIndex::new(16);
        assert!(!idx.lookup(3).unwrap());
        let mut idx = BinaryJumpIndex::new(16);
        idx.insert(5).unwrap();
        assert!(!idx.lookup(3).unwrap(), "keys below the root are absent");
        assert!(idx.lookup(5).unwrap());
    }

    #[test]
    fn find_geq_basics() {
        let mut idx = BinaryJumpIndex::new(64);
        for k in [3u64, 8, 9, 21, 40] {
            idx.insert(k).unwrap();
        }
        assert_eq!(idx.find_geq(0).unwrap(), Some(3));
        assert_eq!(idx.find_geq(3).unwrap(), Some(3));
        assert_eq!(idx.find_geq(4).unwrap(), Some(8));
        assert_eq!(idx.find_geq(10).unwrap(), Some(21));
        assert_eq!(idx.find_geq(22).unwrap(), Some(40));
        assert_eq!(idx.find_geq(41).unwrap(), None);
    }

    #[test]
    fn zero_key_is_indexable() {
        let mut idx = BinaryJumpIndex::new(8);
        idx.insert(0).unwrap();
        idx.insert(1).unwrap();
        assert!(idx.lookup(0).unwrap());
        assert_eq!(idx.find_geq(0).unwrap(), Some(0));
    }

    #[test]
    fn dense_sequence_fully_recoverable() {
        let mut idx = BinaryJumpIndex::new(256);
        for k in 0..200u64 {
            idx.insert(k).unwrap();
        }
        for k in 0..200u64 {
            assert!(idx.lookup(k).unwrap());
            assert_eq!(idx.find_geq(k).unwrap(), Some(k));
        }
        assert_eq!(idx.find_geq(200).unwrap(), None);
        idx.audit().unwrap();
    }

    #[test]
    fn proposition_1_exponents_strictly_decrease() {
        let mut idx = BinaryJumpIndex::new(1 << 20);
        let keys: Vec<u64> = (0..500).map(|i| i * 37 + (i % 7)).collect();
        for &k in &keys {
            idx.insert(k).unwrap();
        }
        for &k in &keys {
            let (found, path) = idx.lookup_with_path(k).unwrap();
            assert!(found);
            for w in path.windows(2) {
                assert!(w[0] > w[1], "exponents must strictly decrease: {path:?}");
            }
            // Complexity bound: at most ⌊log₂ k⌋ + 1 jumps.
            if k > idx.keys[0] {
                let bound = 64 - (k - idx.keys[0]).leading_zeros();
                assert!(path.len() as u32 <= bound + 1);
            }
        }
    }

    #[test]
    fn adversarial_appends_cannot_hide_keys() {
        // Mala appends nodes with arbitrary keys and wires them into
        // never-set pointers.  Committed keys must remain reachable or the
        // structure must yield tamper evidence — never a silent miss.
        let mut idx = BinaryJumpIndex::new(1 << 12);
        let committed: Vec<u64> = vec![2, 10, 31, 100, 640, 641, 2000];
        for &k in &committed {
            idx.insert(k).unwrap();
        }
        // Attack: append a bogus node with a key that "shadows" 641 and
        // hang it off an unset pointer of the root.
        let bogus = idx.adversary_append_node(600);
        let mut wired = false;
        for i in 0..idx.levels() {
            if idx.ptr(0, i) == NULL {
                idx.adversary_set_pointer(0, i, bogus);
                wired = true;
                break;
            }
        }
        assert!(wired);
        for &k in &committed {
            match idx.lookup(k) {
                Ok(found) => assert!(found, "committed key {k} vanished silently"),
                Err(_tamper) => { /* detection is an acceptable outcome */ }
            }
        }
        // The audit must flag the wiring if it violated a range constraint.
        // (With key 600 off the root at some exponent i, the range check
        // fails unless 600 happens to fall in that range — it cannot, since
        // all in-range exponents were consumed by legitimate inserts.)
        assert!(idx.audit().is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Proposition 2: once inserted, a key can always be looked up —
        /// regardless of what is inserted afterwards.
        #[test]
        fn prop2_insert_then_always_found(mut raw in proptest::collection::vec(0u64..5000, 1..120)) {
            raw.sort_unstable();
            raw.dedup();
            let mut idx = BinaryJumpIndex::new(8192);
            for (n, &k) in raw.iter().enumerate() {
                idx.insert(k).unwrap();
                // Every previously inserted key remains visible.
                for &past in &raw[..=n] {
                    prop_assert!(idx.lookup(past).unwrap());
                }
            }
            idx.audit().unwrap();
        }

        /// Proposition 3: for any committed v with k ≤ v, FindGeq(k) never
        /// returns a value greater than v; and it returns exactly the
        /// successor.
        #[test]
        fn prop3_findgeq_is_exact_successor(mut raw in proptest::collection::vec(0u64..5000, 1..120),
                                            probes in proptest::collection::vec(0u64..5100, 1..60)) {
            raw.sort_unstable();
            raw.dedup();
            let mut idx = BinaryJumpIndex::new(8192);
            for &k in &raw {
                idx.insert(k).unwrap();
            }
            for &q in &probes {
                let expect = raw.iter().copied().find(|&v| v >= q);
                prop_assert_eq!(idx.find_geq(q).unwrap(), expect);
            }
        }

        /// Lookup agrees with set membership for arbitrary probes.
        #[test]
        fn lookup_matches_membership(mut raw in proptest::collection::vec(0u64..3000, 1..100),
                                     probes in proptest::collection::vec(0u64..3100, 1..60)) {
            raw.sort_unstable();
            raw.dedup();
            let mut idx = BinaryJumpIndex::new(4096);
            for &k in &raw {
                idx.insert(k).unwrap();
            }
            let set: std::collections::HashSet<u64> = raw.iter().copied().collect();
            for &q in &probes {
                prop_assert_eq!(idx.lookup(q).unwrap(), set.contains(&q));
            }
        }
    }
}
