//! Jump-index sizing: block geometry and the space-overhead model of
//! Figure 8(a).

/// Geometry of a block jump index (paper §4.4/§4.5).
///
/// The constraint the paper states for a block of size `L` holding `p`
/// 8-byte posting entries and `(B−1)·⌈log_B N⌉` 4-byte jump pointers is
///
/// ```text
/// 8·p + 4·(B−1)·⌈log_B N⌉ ≤ L
/// ```
///
/// `JumpConfig` solves for the largest such `p`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct JumpConfig {
    /// Block size `L` in bytes (the paper evaluates 4–32 KB, mainly 8 KB).
    pub block_size: usize,
    /// Branching factor `B ≥ 2` (powers of two from 2 to 64 in the paper;
    /// `B = 32` is the paper's recommended tradeoff).
    pub branching: u32,
    /// Largest key the index must accommodate; the paper sets `N = 2³²`.
    pub max_key: u64,
}

impl Default for JumpConfig {
    /// The paper's primary configuration: `L = 8 KB`, `B = 32`, `N = 2³²`.
    fn default() -> Self {
        Self {
            block_size: 8192,
            branching: 32,
            max_key: 1 << 32,
        }
    }
}

impl JumpConfig {
    /// Create a configuration, validating the parameters.
    ///
    /// # Panics
    ///
    /// Panics unless `branching ≥ 2`, `max_key ≥ 2`, and the block is large
    /// enough to hold at least one entry alongside its pointer region.
    pub fn new(block_size: usize, branching: u32, max_key: u64) -> Self {
        assert!(branching >= 2, "branching factor must be at least 2");
        assert!(max_key >= 2, "max_key must be at least 2");
        let cfg = Self {
            block_size,
            branching,
            max_key,
        };
        assert!(
            cfg.entries_per_block() >= 1,
            "block size {block_size} too small for pointer region of {} bytes",
            cfg.pointer_region_bytes()
        );
        cfg
    }

    /// Fallible variant of [`JumpConfig::new`] for configurations that
    /// originate outside the program text (e.g. an [`EngineConfig`]
    /// deserialized from an untrusted source): returns
    /// [`crate::JumpError::Geometry`] instead of panicking.
    ///
    /// [`EngineConfig`]: https://docs.rs/tks-core
    pub fn try_new(
        block_size: usize,
        branching: u32,
        max_key: u64,
    ) -> Result<Self, crate::JumpError> {
        if branching < 2 {
            return Err(crate::JumpError::Geometry(format!(
                "branching factor {branching} must be at least 2"
            )));
        }
        if max_key < 2 {
            return Err(crate::JumpError::Geometry(format!(
                "max_key {max_key} must be at least 2"
            )));
        }
        let cfg = Self {
            block_size,
            branching,
            max_key,
        };
        if cfg.entries_per_block() < 1 {
            return Err(crate::JumpError::Geometry(format!(
                "block size {block_size} too small for pointer region of {} bytes",
                cfg.pointer_region_bytes()
            )));
        }
        Ok(cfg)
    }

    /// Number of jump levels `⌈log_B N⌉`: the number of distinct exponents
    /// `i` with `0 ≤ i < log_B N`.
    pub fn levels(&self) -> u32 {
        let b = self.branching as u128;
        let n = self.max_key as u128;
        let mut levels = 0u32;
        let mut reach = 1u128;
        while reach < n {
            reach *= b;
            levels += 1;
        }
        levels.max(1)
    }

    /// Number of pointer slots per block: `(B−1)·levels`, saturated at
    /// `u32::MAX` (an adversarial branching factor must not wrap the slot
    /// arithmetic — it merely produces a geometry no block can hold, which
    /// [`JumpConfig::try_new`] then rejects).
    pub fn pointer_slots(&self) -> u32 {
        (self.branching.saturating_sub(1) as u64)
            .saturating_mul(self.levels() as u64)
            .min(u32::MAX as u64) as u32
    }

    /// Bytes reserved for jump pointers per block (4 bytes per slot, the
    /// paper's accounting).
    pub fn pointer_region_bytes(&self) -> usize {
        4 * self.pointer_slots() as usize
    }

    /// Entries per block: `p = (L − 4·(B−1)·⌈log_B N⌉) / 8`.
    pub fn entries_per_block(&self) -> usize {
        self.block_size.saturating_sub(self.pointer_region_bytes()) / 8
    }

    /// The flat slot number of pointer `(i, j)`, ordering slots by
    /// increasing jump range: `(0,1), (0,2), …, (0,B−1), (1,1), …`.
    ///
    /// Ranges are contiguous: slot `(i, j)` covers keys in
    /// `[n_b + j·Bⁱ, n_b + (j+1)·Bⁱ)`, and for `j = B−1` the next slot
    /// `(i+1, 1)` starts exactly at `n_b + B^{i+1}`.
    pub fn flat_slot(&self, i: u32, j: u32) -> u32 {
        debug_assert!(j >= 1 && j < self.branching);
        i * (self.branching - 1) + (j - 1)
    }

    /// Inverse of [`flat_slot`](Self::flat_slot).
    pub fn slot_ij(&self, flat: u32) -> (u32, u32) {
        let i = flat / (self.branching - 1);
        let j = flat % (self.branching - 1) + 1;
        (i, j)
    }

    /// The pointer `(i, j)` responsible for a key at distance
    /// `delta = k − n_b ≥ 1` from a block's largest key: the unique pair
    /// with `j·Bⁱ ≤ delta < (j+1)·Bⁱ`, `1 ≤ j < B`.
    pub fn slot_for_delta(&self, delta: u64) -> (u32, u32) {
        debug_assert!(delta >= 1);
        let b = self.branching as u64;
        let mut i = 0u32;
        let mut power = 1u64;
        // Find i with B^i ≤ delta < B^(i+1).
        while delta / power >= b {
            power *= b;
            i += 1;
        }
        let j = (delta / power) as u32;
        debug_assert!(j >= 1 && j < self.branching);
        (i, j)
    }
}

/// Space overhead of a jump index (Figure 8(a)): the ratio of bytes
/// allocated for pointers to bytes occupied by posting entries,
/// `4·(B−1)·⌈log_B N⌉ / (8·p)`, as a fraction (multiply by 100 for the
/// paper's percentage axis).
pub fn space_overhead(block_size: usize, branching: u32, max_key: u64) -> f64 {
    let cfg = JumpConfig::new(block_size, branching, max_key);
    cfg.pointer_region_bytes() as f64 / (8.0 * cfg.entries_per_block() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_for_paper_parameters() {
        // N = 2^32: log2 = 32 levels; log32 = 6.4 → 7 levels.
        assert_eq!(JumpConfig::new(8192, 2, 1 << 32).levels(), 32);
        assert_eq!(JumpConfig::new(8192, 32, 1 << 32).levels(), 7);
        assert_eq!(JumpConfig::new(8192, 64, 1 << 32).levels(), 6);
        // Exact power: log_4(2^32) = 16.
        assert_eq!(JumpConfig::new(8192, 4, 1 << 32).levels(), 16);
    }

    #[test]
    fn entries_per_block_respects_paper_constraint() {
        for &b in &[2u32, 4, 8, 16, 32, 64, 128] {
            for &l in &[4096usize, 8192, 16384, 32768] {
                let cfg = JumpConfig::new(l, b, 1 << 32);
                let p = cfg.entries_per_block();
                assert!(8 * p + cfg.pointer_region_bytes() <= l);
                // p is maximal: adding one more entry would overflow.
                assert!(8 * (p + 1) + cfg.pointer_region_bytes() > l);
            }
        }
    }

    #[test]
    fn paper_headline_overhead_b32_l8k_is_about_11_percent() {
        let oh = space_overhead(8192, 32, 1 << 32);
        assert!((0.10..=0.13).contains(&oh), "got {oh}");
    }

    #[test]
    fn overhead_for_b2_l8k_is_small() {
        // §4.5: "the slowdown is 1.5% and 11% for B = 2 and B = 32 … for
        // 8 KB blocks" — slowdown equals the space overhead.
        let oh = space_overhead(8192, 2, 1 << 32);
        assert!((0.01..=0.02).contains(&oh), "got {oh}");
    }

    #[test]
    fn overhead_decreases_with_block_size() {
        let o4 = space_overhead(4096, 32, 1 << 32);
        let o32 = space_overhead(32768, 32, 1 << 32);
        assert!(o4 > o32);
    }

    #[test]
    fn flat_slot_roundtrip_and_ordering() {
        let cfg = JumpConfig::new(8192, 32, 1 << 32);
        let mut prev = None;
        for i in 0..cfg.levels() {
            for j in 1..cfg.branching {
                let f = cfg.flat_slot(i, j);
                assert_eq!(cfg.slot_ij(f), (i, j));
                if let Some(p) = prev {
                    assert_eq!(f, p + 1, "flat slots must be dense and ordered");
                }
                prev = Some(f);
            }
        }
    }

    #[test]
    fn slot_for_delta_covers_contract() {
        let cfg = JumpConfig::new(8192, 3, 1 << 20);
        for delta in 1u64..2000 {
            let (i, j) = cfg.slot_for_delta(delta);
            let p = (cfg.branching as u64).pow(i);
            assert!(
                j as u64 * p <= delta && delta < (j as u64 + 1) * p,
                "delta={delta} i={i} j={j}"
            );
            assert!(j >= 1 && j < cfg.branching);
        }
    }

    #[test]
    fn slot_for_delta_binary() {
        let cfg = JumpConfig::new(8192, 2, 1 << 32);
        // For B = 2, j is always 1 and i = floor(log2(delta)).
        assert_eq!(cfg.slot_for_delta(1), (0, 1));
        assert_eq!(cfg.slot_for_delta(2), (1, 1));
        assert_eq!(cfg.slot_for_delta(3), (1, 1));
        assert_eq!(cfg.slot_for_delta(4), (2, 1));
        assert_eq!(cfg.slot_for_delta(1023), (9, 1));
        assert_eq!(cfg.slot_for_delta(1024), (10, 1));
    }
}
