//! # `tks-jump` — trustworthy jump indexes (paper §4)
//!
//! A **jump index** is a fossilized (append-only, tamper-evident) access
//! structure over a *strictly monotonically increasing* sequence of keys —
//! in the paper, the document IDs of a posting list.  It supports
//! `Insert(k)`, `Lookup(k)` and `FindGeq(k)` in `O(log N)` pointer follows,
//! where `N` is the largest key that will ever be indexed (the number of
//! documents, since IDs come from an increasing counter).
//!
//! The critical property — unavailable from B+ trees, even on WORM — is
//! that **the path taken to look up an entry never depends on entries added
//! later**.  A B+ tree on WORM can be subverted by appending a spurious
//! subtree and a new root entry (paper Figure 6); a jump index cannot,
//! because the pointer set followed by `Lookup(k)` is exactly the pointer
//! set written by `Insert(k)`, and WORM storage guarantees those pointers
//! are immutable once written.  The paper states this as:
//!
//! * **Proposition 1** — the jump exponents selected by `Lookup` strictly
//!   decrease, bounding the path by `⌊log₂ k⌋ + 1` follows;
//! * **Proposition 2** — once inserted, an ID can always be looked up;
//! * **Proposition 3** — `FindGeq(k)` never returns a value greater than
//!   any indexed `v ≥ k`, so zigzag joins can never be tricked into
//!   skipping a committed document.
//!
//! All three are enforced as property tests in this crate, and the inline
//! `assert` checks of the paper's pseudocode are realised as
//! [`TamperEvidence`] errors rather than panics: a violated invariant is
//! evidence of attempted malicious activity, to be reported, not a crash.
//!
//! Two variants are provided:
//!
//! * [`BinaryJumpIndex`] — the per-entry, powers-of-two index of §4.1/§4.2
//!   (one node per key, `log₂ N` jump pointers per node);
//! * [`BlockJumpIndex`] — the block-structured index of §4.4 (p entries
//!   per block of size L, `(B−1)·log_B N` pointers per block, jumps in
//!   powers of B), which is what a deployment actually stores: the blocks
//!   *are* the posting-list blocks, with the pointer region reserved at the
//!   end of each block.
//!
//! [`persist::WormJumpIndex`] mirrors a block jump index onto a WORM device
//! using only append operations, supports recovery from the raw device
//! bytes, and audits the recovered structure for tampering.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod binary;
pub mod block;
pub mod config;
pub mod persist;

pub use binary::BinaryJumpIndex;
pub use block::{BlockJumpIndex, Position};
pub use config::{space_overhead, JumpConfig};
pub use persist::{JumpRecovery, WormJumpIndex};

/// Evidence of attempted malicious activity detected by an invariant check.
///
/// The paper: "The pseudocode includes assert checks, violations of which
/// should trigger a report of attempted malicious activity."  We surface
/// them as values so the search engine can alert the investigator instead
/// of crashing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TamperEvidence {
    /// Which invariant was violated.
    pub invariant: &'static str,
    /// Human-readable description for the audit report.
    pub detail: String,
}

impl std::fmt::Display for TamperEvidence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tamper evidence ({}): {}", self.invariant, self.detail)
    }
}

impl std::error::Error for TamperEvidence {}

/// Errors from jump-index operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JumpError {
    /// Keys must be strictly increasing; equal or smaller keys are refused.
    /// (Merged posting lists with several terms per document insert each
    /// distinct doc ID once; duplicates are the caller's to skip.)
    NonMonotonicInsert {
        /// Largest key already in the index.
        last: u64,
        /// The offending key.
        attempted: u64,
    },
    /// The key exceeds the `N` the index was sized for.
    KeyTooLarge {
        /// The offending key.
        key: u64,
        /// Configured maximum.
        max: u64,
    },
    /// An invariant check failed — attempted tampering.
    Tamper(TamperEvidence),
    /// WORM persistence failure.
    Worm(tks_worm::WormError),
    /// The requested geometry cannot hold a single entry per block, or a
    /// parameter is out of range (see [`JumpConfig::try_new`]).
    Geometry(String),
    /// An internal structural invariant failed in a way that is neither
    /// tamper evidence nor caller error — reported instead of aborting.
    Internal(String),
}

impl std::fmt::Display for JumpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JumpError::NonMonotonicInsert { last, attempted } => {
                write!(f, "non-monotonic insert: {attempted} after {last}")
            }
            JumpError::KeyTooLarge { key, max } => {
                write!(f, "key {key} exceeds configured maximum {max}")
            }
            JumpError::Tamper(t) => write!(f, "{t}"),
            JumpError::Worm(e) => write!(f, "worm error: {e}"),
            JumpError::Geometry(msg) => write!(f, "invalid jump geometry: {msg}"),
            JumpError::Internal(msg) => write!(f, "internal invariant failure: {msg}"),
        }
    }
}

impl std::error::Error for JumpError {}

impl From<TamperEvidence> for JumpError {
    fn from(t: TamperEvidence) -> Self {
        JumpError::Tamper(t)
    }
}

impl From<tks_worm::WormError> for JumpError {
    fn from(e: tks_worm::WormError) -> Self {
        JumpError::Worm(e)
    }
}
