//! WORM persistence for block jump indexes.
//!
//! [`WormJumpIndex`] keeps the authoritative [`BlockJumpIndex`] in memory
//! (the paper's §4.5 optimization: "our index code tracks in its own memory
//! the largest document ID and the last pointer for all the blocks on the
//! path from root to the tail block") and mirrors every mutation onto a
//! WORM device using only append operations:
//!
//! * entries are appended to an append-only **data file**; every
//!   `p`-entry run of the file is one index block;
//! * pointer assignments are appended to an append-only **pointer file**
//!   as `(block, flat-slot, target)` records.
//!
//! The paper lays pointers out in a reserved region *inside* each block and
//! argues the assignment order makes them appendable.  We use a sidecar
//! pointer file instead — operationally equivalent (append-only, each slot
//! written at most once, verified at recovery) and simpler to audit.  This
//! does **not** change the experiments: the block geometry (entries per
//! block) follows the paper's `8p + 4(B−1)·log_B N ≤ L` formula, and the
//! I/O accounting for pointer sets still charges a read-modify-write of
//! the *owning* block (see [`Touch::PointerSet`](crate::block::Touch)), as
//! in the paper's simulation.
//!
//! [`WormJumpIndex::recover`] rebuilds the structure from the raw WORM
//! bytes, refusing double-set pointers and auditing the result — so a
//! tampered device yields evidence, never a silently wrong index.

use crate::block::{BlockJumpIndex, JumpEntry, Touch};
use crate::config::JumpConfig;
use crate::{JumpError, TamperEvidence};
use tks_worm::{FileHandle, WormFs};

const NULL: u32 = u32::MAX;
const PTR_RECORD: usize = 12;

/// Decode one little-endian `u32` field of a pointer record.  A short
/// record is tamper evidence (the length check above guarantees whole
/// records, so this cannot fire in legitimate operation) — refused, not
/// panicked on.
fn ptr_field(rec: &[u8], off: usize) -> Result<u32, JumpError> {
    rec.get(off..off + 4)
        .and_then(|s| <[u8; 4]>::try_from(s).ok())
        .map(u32::from_le_bytes)
        .ok_or_else(|| {
            JumpError::Tamper(TamperEvidence {
                invariant: "recover-ptr-record",
                detail: format!("pointer record too short for field at offset {off}"),
            })
        })
}

/// What [`WormJumpIndex::recover_with_report`] quarantined: trailing
/// partial records left behind by a crash mid-append.  A torn tail is an
/// availability event, not tampering — whole records before it are intact
/// and the remainder can never be completed (WORM forbids rewriting), so
/// recovery walls it off and reports the byte counts as evidence.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JumpRecovery {
    /// Bytes of a partial entry at the data-file tail (`len % 8`).
    pub data_tail_bytes: u64,
    /// Bytes of a partial pointer record at the pointer-file tail
    /// (`len % 12`).
    pub ptr_tail_bytes: u64,
}

impl JumpRecovery {
    /// Total quarantined bytes across both files.
    pub fn total_bytes(&self) -> u64 {
        self.data_tail_bytes + self.ptr_tail_bytes
    }

    /// `true` when recovery found no torn-commit residue.
    pub fn is_clean(&self) -> bool {
        self.total_bytes() == 0
    }
}

/// A [`BlockJumpIndex`] durably mirrored onto WORM storage.
///
/// # Example
///
/// ```
/// use tks_jump::{JumpConfig, WormJumpIndex};
/// use tks_worm::{WormDevice, WormFs};
///
/// let fs = WormFs::new(WormDevice::new(4096));
/// let cfg = JumpConfig::new(256, 3, 1 << 16);
/// let mut idx: WormJumpIndex<u64> = WormJumpIndex::create(fs, "postings/0", cfg).unwrap();
/// for k in [5u64, 9, 12, 40] {
///     idx.insert(k).unwrap();
/// }
/// // Recover from the raw WORM bytes and verify nothing is lost.
/// let recovered = WormJumpIndex::<u64>::recover(idx.into_fs(), "postings/0", cfg).unwrap();
/// assert!(recovered.index().lookup(12).unwrap());
/// ```
#[derive(Debug)]
pub struct WormJumpIndex<E> {
    idx: BlockJumpIndex<E>,
    fs: WormFs,
    data: FileHandle,
    ptrs: FileHandle,
}

impl<E: JumpEntry> WormJumpIndex<E> {
    /// Create a fresh persisted index named `name` inside `fs`.
    pub fn create(mut fs: WormFs, name: &str, cfg: JumpConfig) -> Result<Self, JumpError> {
        let data = fs.create(&format!("{name}.data"), u64::MAX)?;
        let ptrs = fs.create(&format!("{name}.ptrs"), u64::MAX)?;
        Ok(Self {
            idx: BlockJumpIndex::new(cfg),
            fs,
            data,
            ptrs,
        })
    }

    /// The in-memory index (all queries run against it).
    pub fn index(&self) -> &BlockJumpIndex<E> {
        &self.idx
    }

    /// The WORM file system (for audits and attack harnesses).
    pub fn fs(&self) -> &WormFs {
        &self.fs
    }

    /// Consume the wrapper, returning the file system (e.g. to recover).
    pub fn into_fs(self) -> WormFs {
        self.fs
    }

    /// Insert an entry: updates the in-memory structure and mirrors the
    /// mutation to WORM.  Touches are reported exactly as by
    /// [`BlockJumpIndex::insert_with`].
    pub fn insert(&mut self, entry: E) -> Result<(), JumpError> {
        self.insert_with(entry, |_| {})
    }

    /// [`insert`](Self::insert) with touch reporting for cache accounting.
    pub fn insert_with<F: FnMut(Touch)>(
        &mut self,
        entry: E,
        mut on_touch: F,
    ) -> Result<(), JumpError> {
        let mut touches: Vec<Touch> = Vec::with_capacity(2);
        self.idx.insert_with(entry, |t| touches.push(t))?;
        // Mirror to WORM: the entry bytes, then any pointer assignment.
        self.fs.append(self.data, &entry.to_bytes())?;
        for t in &touches {
            if let Touch::PointerSet {
                block,
                flat,
                target,
            } = *t
            {
                let mut rec = [0u8; PTR_RECORD];
                rec[0..4].copy_from_slice(&block.to_le_bytes());
                rec[4..8].copy_from_slice(&flat.to_le_bytes());
                rec[8..12].copy_from_slice(&target.to_le_bytes());
                self.fs.append(self.ptrs, &rec)?;
            }
            on_touch(*t);
        }
        Ok(())
    }

    /// Rebuild an index from the raw WORM bytes, verifying write-once
    /// pointer discipline and auditing the recovered structure.  Torn
    /// tails are quarantined silently; use
    /// [`recover_with_report`](Self::recover_with_report) to see them.
    pub fn recover(fs: WormFs, name: &str, cfg: JumpConfig) -> Result<Self, JumpError> {
        Self::recover_with_report(fs, name, cfg).map(|(idx, _)| idx)
    }

    /// [`recover`](Self::recover), also reporting torn-commit residue.
    ///
    /// A trailing partial entry (`data len % 8`) or partial pointer
    /// record (`ptr len % 12`) is the signature of an append killed
    /// mid-record: the whole records before it are trusted, the tail is
    /// quarantined and counted in the returned [`JumpRecovery`].
    /// Anomalies that cannot come from a single torn append — out-of-order
    /// entries, double-set or dangling pointers — still fail with
    /// [`JumpError::Tamper`].
    pub fn recover_with_report(
        fs: WormFs,
        name: &str,
        cfg: JumpConfig,
    ) -> Result<(Self, JumpRecovery), JumpError> {
        let data = fs.open(&format!("{name}.data"))?;
        let ptrs = fs.open(&format!("{name}.ptrs"))?;
        let p = cfg.entries_per_block();
        let slots = cfg.pointer_slots() as usize;

        // Reconstitute blocks from the data file.  The append-only file
        // is a flat record stream, so a non-multiple length can only be
        // a partial record at the tail — torn-commit residue.
        let data_len = fs.len(data);
        let report = JumpRecovery {
            data_tail_bytes: data_len % 8,
            ptr_tail_bytes: fs.len(ptrs) % PTR_RECORD as u64,
        };
        let mut idx = BlockJumpIndex::new(cfg);
        let mut block: Vec<E> = Vec::with_capacity(p);
        // Read the data file one device block at a time instead of one
        // 8-byte entry at a time.  Entries can straddle device blocks
        // (the block size need not divide 8), so undecoded bytes carry
        // over to the next block.
        let mut carry: Vec<u8> = Vec::new();
        for b in 0..fs.num_blocks(data) {
            carry.extend_from_slice(fs.read_block(data, b)?);
            let whole = carry.len() - carry.len() % 8;
            for chunk in carry.get(..whole).unwrap_or(&[]).chunks_exact(8) {
                if let Ok(buf) = <[u8; 8]>::try_from(chunk) {
                    block.push(E::from_bytes(buf));
                    if block.len() == p {
                        idx.push_raw_block(std::mem::take(&mut block), vec![NULL; slots]);
                    }
                }
            }
            carry.drain(..whole);
        }
        if !block.is_empty() {
            idx.push_raw_block(block, vec![NULL; slots]);
        }

        // Apply pointer records, enforcing write-once per slot.  A
        // partial record at the tail was already counted in the report;
        // the carry loop below never decodes it.
        let mut recovered = Self {
            idx,
            fs,
            data,
            ptrs,
        };
        // Same block-batched pattern as the data file; 12-byte records
        // straddle device blocks whenever the block size is not a
        // multiple of 12, so the carry buffer is load-bearing here.
        let mut carry: Vec<u8> = Vec::new();
        for b in 0..recovered.fs.num_blocks(recovered.ptrs) {
            carry.extend_from_slice(recovered.fs.read_block(recovered.ptrs, b)?);
            let whole = carry.len() - carry.len() % PTR_RECORD;
            for rec in carry.get(..whole).unwrap_or(&[]).chunks_exact(PTR_RECORD) {
                let block = ptr_field(rec, 0)?;
                let flat = ptr_field(rec, 4)?;
                let target = ptr_field(rec, 8)?;
                recovered.idx.apply_recovered_pointer(block, flat, target)?;
            }
            carry.drain(..whole);
        }

        recovered.idx.audit()?;
        Ok((recovered, report))
    }
}

impl<E: JumpEntry> BlockJumpIndex<E> {
    /// Apply a pointer record read back from WORM during recovery.
    /// Double-set slots and invalid references are tamper evidence.
    pub(crate) fn apply_recovered_pointer(
        &mut self,
        block: u32,
        flat: u32,
        target: u32,
    ) -> Result<(), JumpError> {
        if block >= self.num_blocks() || target >= self.num_blocks() {
            return Err(JumpError::Tamper(TamperEvidence {
                invariant: "recover-ptr-target",
                detail: format!("pointer record {block}→{target} references a missing block"),
            }));
        }
        if flat >= self.config().pointer_slots() {
            return Err(JumpError::Tamper(TamperEvidence {
                invariant: "recover-ptr-slot",
                detail: format!("pointer record uses invalid slot {flat}"),
            }));
        }
        self.set_recovered_ptr(block, flat, target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tks_worm::WormDevice;

    fn cfg() -> JumpConfig {
        JumpConfig::new(256, 3, 1 << 16)
    }

    fn fresh(name: &str) -> WormJumpIndex<u64> {
        WormJumpIndex::create(WormFs::new(WormDevice::new(4096)), name, cfg()).unwrap()
    }

    #[test]
    fn mirror_and_recover_roundtrip() {
        let mut idx = fresh("pl");
        let keys: Vec<u64> = (0..300).map(|i| i * 7 + i % 5).collect();
        let mut uniq = keys.clone();
        uniq.dedup();
        for &k in &uniq {
            idx.insert(k).unwrap();
        }
        let ptr_count = idx.index().stats().pointers_set;
        let rec = WormJumpIndex::<u64>::recover(idx.into_fs(), "pl", cfg()).unwrap();
        assert_eq!(rec.index().stats().pointers_set, ptr_count);
        for &k in &uniq {
            assert!(rec.index().lookup(k).unwrap(), "lost {k} across recovery");
        }
        assert!(!rec.index().lookup(1 << 15).unwrap());
        // find_geq agrees with a reference scan.
        for probe in [0u64, 13, 500, 2000] {
            let expect = uniq.iter().copied().find(|&v| v >= probe);
            let got = rec
                .index()
                .find_geq(probe)
                .unwrap()
                .map(|p| rec.index().entry_at(p).unwrap());
            assert_eq!(got, expect);
        }
    }

    #[test]
    fn recovery_handles_records_straddling_device_blocks() {
        // 64-byte device blocks: 12-byte pointer records straddle block
        // boundaries (64 % 12 != 0), exercising the carry buffer.
        let fs = WormFs::new(WormDevice::new(64));
        let mut idx: WormJumpIndex<u64> = WormJumpIndex::create(fs, "pl", cfg()).unwrap();
        let keys: Vec<u64> = (0..200u64).map(|i| i * 3 + 1).collect();
        for &k in &keys {
            idx.insert(k).unwrap();
        }
        let ptr_count = idx.index().stats().pointers_set;
        assert!(ptr_count > 0, "need real pointers to exercise the carry");
        let rec = WormJumpIndex::<u64>::recover(idx.into_fs(), "pl", cfg()).unwrap();
        assert_eq!(rec.index().stats().pointers_set, ptr_count);
        for &k in &keys {
            assert!(rec.index().lookup(k).unwrap(), "lost {k} across recovery");
        }
    }

    #[test]
    fn recovery_detects_double_set_pointer() {
        let mut idx = fresh("pl");
        // Enough keys to span several blocks so real pointers get set.
        for k in (0..60u64).map(|i| i * 97 + 1) {
            idx.insert(k).unwrap();
        }
        assert!(idx.index().stats().pointers_set > 0);
        // Mala appends a pointer record that re-targets an already-set
        // slot.  (She can append to the file; she cannot rewrite it.)
        let existing = idx.fs().read(idx.ptrs, 0, PTR_RECORD).unwrap();
        let block = u32::from_le_bytes(existing[0..4].try_into().unwrap());
        let flat = u32::from_le_bytes(existing[4..8].try_into().unwrap());
        let mut evil = [0u8; PTR_RECORD];
        evil[0..4].copy_from_slice(&block.to_le_bytes());
        evil[4..8].copy_from_slice(&flat.to_le_bytes());
        evil[8..12].copy_from_slice(&0u32.to_le_bytes()); // redirect to block 0
        let ptrs = idx.ptrs;
        idx.fs.append(ptrs, &evil).unwrap();
        let err = WormJumpIndex::<u64>::recover(idx.into_fs(), "pl", cfg()).unwrap_err();
        assert!(matches!(err, JumpError::Tamper(_)), "got {err:?}");
    }

    #[test]
    fn recovery_quarantines_truncated_tail_records() {
        // A partial record at the tail is torn-commit residue, not
        // tampering: recovery keeps the whole records and reports the
        // quarantined byte counts.
        let mut idx = fresh("pl");
        idx.insert(3).unwrap();
        let data = idx.data;
        idx.fs.append(data, &[0xAB, 0xCD]).unwrap(); // torn partial entry
        let (rec, report) =
            WormJumpIndex::<u64>::recover_with_report(idx.into_fs(), "pl", cfg()).unwrap();
        assert_eq!(report.data_tail_bytes, 2);
        assert_eq!(report.ptr_tail_bytes, 0);
        assert_eq!(report.total_bytes(), 2);
        assert!(!report.is_clean());
        assert!(rec.index().lookup(3).unwrap());
    }

    #[test]
    fn recovery_quarantines_truncated_pointer_tail() {
        let mut idx = fresh("pl");
        for k in (0..60u64).map(|i| i * 97 + 1) {
            idx.insert(k).unwrap();
        }
        let ptr_count = idx.index().stats().pointers_set;
        assert!(ptr_count > 0);
        let ptrs = idx.ptrs;
        idx.fs.append(ptrs, &[0x01; 5]).unwrap(); // torn partial pointer record
        let (rec, report) =
            WormJumpIndex::<u64>::recover_with_report(idx.into_fs(), "pl", cfg()).unwrap();
        assert_eq!(report.ptr_tail_bytes, 5);
        assert_eq!(rec.index().stats().pointers_set, ptr_count);
    }

    #[test]
    fn recovery_detects_out_of_order_data_appends() {
        let mut idx = fresh("pl");
        idx.insert(100).unwrap();
        idx.insert(200).unwrap();
        // Mala appends an entry with a smaller key directly to the data
        // file.  Recovery audits global order and flags it.
        let data = idx.data;
        idx.fs.append(data, &50u64.to_le_bytes()).unwrap();
        let err = WormJumpIndex::<u64>::recover(idx.into_fs(), "pl", cfg()).unwrap_err();
        assert!(matches!(err, JumpError::Tamper(_)));
    }

    #[test]
    fn touches_pass_through() {
        let mut idx = fresh("pl");
        let mut appends = 0;
        let mut sets = 0;
        for k in 0..200u64 {
            idx.insert_with(k * 3, |t| match t {
                Touch::Append { .. } => appends += 1,
                Touch::PointerSet { .. } => sets += 1,
            })
            .unwrap();
        }
        assert_eq!(appends, 200);
        assert_eq!(sets as u64, idx.index().stats().pointers_set);
    }
}
