//! The block-structured jump index of paper §4.4.
//!
//! Posting entries are stored `p` to a block of size `L`; each block
//! reserves room for `(B−1)·⌈log_B N⌉` jump pointers.  Let `n_b` be the
//! largest key in block `b`; the `(i, j)` pointer of `b` leads to the block
//! containing the smallest key `s` with `n_b + j·Bⁱ ≤ s < n_b + (j+1)·Bⁱ`.
//!
//! The structure is fossilized: inserts only append entries to the tail
//! block and set previously-null pointers — both legal WORM appends — and
//! the path `Lookup(k)` takes is exactly the path `Insert(k)` wired, so
//! entries can never be hidden retroactively (Propositions 2 and 3).
//!
//! I/O accounting follows §4.5: the index code keeps the largest ID and
//! last pointer of every block on the root→tail path in *its own* memory,
//! so following pointers during an insert costs no storage I/O — only
//! appending the entry (tail block) and *setting* a pointer (a
//! read-modify-write of an interior block) touch storage.  Each such touch
//! is reported through the [`Touch`] callback so experiment harnesses can
//! feed a [`StorageCache`](tks_worm::StorageCache).
//!
//! Duplicate keys (the same document appearing under several terms of a
//! merged list) are appended as entries but do not participate in the jump
//! structure; readers reach them by sequential advance, which is safe
//! because blocks are chained in allocation order within an append-only
//! file.

use crate::config::JumpConfig;
use crate::{JumpError, TamperEvidence};

const NULL: u32 = u32::MAX;

/// An 8-byte entry storable in a block jump index.
///
/// The jump key must be non-decreasing over the insertion sequence (doc
/// IDs from the commit counter).  Implemented for `u64` (key = value) and
/// for [`tks_postings::Posting`] (key = document ID).
pub trait JumpEntry: Copy + std::fmt::Debug {
    /// The monotone key the jump structure is organised around.
    fn jump_key(&self) -> u64;
    /// On-WORM encoding (8 bytes, like the paper's postings).
    fn to_bytes(&self) -> [u8; 8];
    /// Decode from the on-WORM representation.
    fn from_bytes(bytes: [u8; 8]) -> Self;
}

impl JumpEntry for u64 {
    fn jump_key(&self) -> u64 {
        *self
    }
    fn to_bytes(&self) -> [u8; 8] {
        self.to_le_bytes()
    }
    fn from_bytes(bytes: [u8; 8]) -> Self {
        u64::from_le_bytes(bytes)
    }
}

impl JumpEntry for tks_postings::Posting {
    fn jump_key(&self) -> u64 {
        self.doc.0
    }
    fn to_bytes(&self) -> [u8; 8] {
        tks_postings::encode_posting(*self)
    }
    fn from_bytes(bytes: [u8; 8]) -> Self {
        tks_postings::decode_posting(bytes)
    }
}

/// A storage touch performed by an index mutation, for cache-simulation
/// accounting.  Block numbers are indices into this index's block chain;
/// the caller maps them to device-wide [`BlockId`](tks_worm::BlockId)s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Touch {
    /// An entry was appended to the (tail) block.
    Append {
        /// Chain index of the block.
        block: u32,
        /// The block held no entries before this append.
        was_empty: bool,
        /// The append filled the block's entry area to capacity `p`.
        fills: bool,
    },
    /// A jump pointer was set in the block (read-modify-write).
    PointerSet {
        /// Chain index of the block whose pointer was set.
        block: u32,
        /// Flat slot number of the pointer (see [`JumpConfig::flat_slot`]).
        flat: u32,
        /// Chain index of the target block.
        target: u32,
    },
}

/// A location in the index: block `block` of the chain, entry `slot`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Position {
    /// Index of the block in the chain (allocation order).
    pub block: u32,
    /// Entry index within the block.
    pub slot: u32,
}

#[derive(Debug, Clone)]
struct JBlock<E> {
    entries: Vec<E>,
    /// Flat pointer slots (see [`JumpConfig::flat_slot`]); `NULL` = unset.
    ptrs: Vec<u32>,
}

impl<E: JumpEntry> JBlock<E> {
    /// Largest key in the block; `None` only for an empty block, which
    /// legitimate operation never produces (blocks are created non-empty)
    /// and which callers therefore treat as tamper evidence.
    fn largest(&self) -> Option<u64> {
        self.entries.last().map(|e| e.jump_key())
    }
}

/// Tamper evidence for an empty block encountered mid-walk: legitimate
/// operation creates every block with at least one entry.
fn empty_block_evidence(invariant: &'static str, b: u32) -> TamperEvidence {
    TamperEvidence {
        invariant,
        detail: format!("block {b} holds no entries"),
    }
}

/// Running mutation statistics, used by the update-cost experiments.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct UpdateStats {
    /// Entries appended (including duplicates).
    pub entries: u64,
    /// Jump pointers set.
    pub pointers_set: u64,
    /// Blocks allocated.
    pub blocks_allocated: u64,
}

/// Block-structured jump index (paper §4.4), generic over the 8-byte entry
/// type.
///
/// # Example
///
/// ```
/// use tks_jump::{BlockJumpIndex, JumpConfig};
///
/// // Tiny blocks for the example: B = 3 over keys < 2¹⁶ needs 88 bytes of
/// // pointer region, leaving room for p = 4 entries per 120-byte block.
/// let mut idx: BlockJumpIndex<u64> = BlockJumpIndex::new(JumpConfig::new(120, 3, 1 << 16));
/// for k in [1u64, 2, 5, 7, 8, 10, 15, 19, 21, 22, 25] {
///     idx.insert(k).unwrap();
/// }
/// assert!(idx.lookup(8).unwrap());
/// assert!(!idx.lookup(9).unwrap());
/// let pos = idx.find_geq(9).unwrap().unwrap();
/// assert_eq!(idx.entry_at(pos).unwrap(), 10);
/// ```
#[derive(Debug, Clone)]
pub struct BlockJumpIndex<E> {
    cfg: JumpConfig,
    blocks: Vec<JBlock<E>>,
    last_key: Option<u64>,
    stats: UpdateStats,
}

impl<E: JumpEntry> BlockJumpIndex<E> {
    /// Create an empty index with the given geometry.
    pub fn new(cfg: JumpConfig) -> Self {
        Self {
            cfg,
            blocks: Vec::new(),
            last_key: None,
            stats: UpdateStats::default(),
        }
    }

    /// The geometry this index was built with.
    pub fn config(&self) -> JumpConfig {
        self.cfg
    }

    /// Number of entries (including duplicate keys).
    pub fn len(&self) -> u64 {
        self.stats.entries
    }

    /// Whether the index holds no entries.
    pub fn is_empty(&self) -> bool {
        self.stats.entries == 0
    }

    /// Number of blocks in the chain.
    pub fn num_blocks(&self) -> u32 {
        self.blocks.len() as u32
    }

    /// The largest key inserted so far.
    pub fn last_key(&self) -> Option<u64> {
        self.last_key
    }

    /// Mutation statistics.
    pub fn stats(&self) -> UpdateStats {
        self.stats
    }

    /// Insert an entry, reporting no storage touches.
    pub fn insert(&mut self, entry: E) -> Result<(), JumpError> {
        self.insert_with(entry, |_| {})
    }

    /// Insert an entry (paper: `Insert_block(k)`), reporting each storage
    /// touch to `on_touch` for cache-simulation accounting.
    ///
    /// Keys must be non-decreasing; an equal key is a duplicate entry
    /// (merged-list case) that bypasses the jump-pointer walk.
    pub fn insert_with<F: FnMut(Touch)>(
        &mut self,
        entry: E,
        mut on_touch: F,
    ) -> Result<(), JumpError> {
        let k = entry.jump_key();
        if k >= self.cfg.max_key {
            return Err(JumpError::KeyTooLarge {
                key: k,
                max: self.cfg.max_key,
            });
        }
        if let Some(last) = self.last_key {
            if k < last {
                return Err(JumpError::NonMonotonicInsert { last, attempted: k });
            }
        }
        let duplicate = self.last_key == Some(k);
        let p = self.cfg.entries_per_block();

        // Steps 1–3: append the entry to the tail block, allocating a new
        // one if the tail is full (or the index is empty).
        let tail_full = self.blocks.last().is_none_or(|b| b.entries.len() >= p);
        if tail_full {
            self.blocks.push(JBlock {
                entries: Vec::with_capacity(p),
                ptrs: vec![NULL; self.cfg.pointer_slots() as usize],
            });
            self.stats.blocks_allocated += 1;
        }
        let tail_idx = self.blocks.len() as u32 - 1;
        let Some(tail) = self.blocks.last_mut() else {
            return Err(JumpError::Internal(
                "tail block missing after allocation".into(),
            ));
        };
        let was_empty = tail.entries.is_empty();
        tail.entries.push(entry);
        let fills = tail.entries.len() >= p;
        on_touch(Touch::Append {
            block: tail_idx,
            was_empty,
            fills,
        });
        self.stats.entries += 1;
        self.last_key = Some(k);

        // Duplicate keys are reachable by sequential advance; they take no
        // part in the jump structure (no block's `largest` grows, and the
        // walk's `n_b < k` assertion would reject them).
        if duplicate {
            return Ok(());
        }

        // Steps 4–19: walk from the first block, following pointers; set
        // the first null pointer encountered to the tail block.  Following
        // costs no I/O (in-memory path memo, §4.5); setting does.
        let mut b = 0u32;
        loop {
            if b == tail_idx {
                return Ok(());
            }
            let Some(nb) = self.blocks[b as usize].largest() else {
                return Err(JumpError::Tamper(empty_block_evidence("insert-walk", b)));
            };
            // Step 10 assert.
            if nb >= k {
                return Err(JumpError::Tamper(TamperEvidence {
                    invariant: "insert-walk",
                    detail: format!("block {b} has largest {nb} ≥ inserted key {k}"),
                }));
            }
            let (i, j) = self.cfg.slot_for_delta(k - nb);
            let flat = self.cfg.flat_slot(i, j) as usize;
            let target = self.blocks[b as usize].ptrs[flat];
            if target == NULL {
                self.blocks[b as usize].ptrs[flat] = tail_idx;
                self.stats.pointers_set += 1;
                on_touch(Touch::PointerSet {
                    block: b,
                    flat: flat as u32,
                    target: tail_idx,
                });
                return Ok(());
            }
            b = target;
        }
    }

    /// Whether `k` was inserted (paper: `Lookup_block(k)`), reporting each
    /// block visited to `on_visit` (query-time block reads).
    pub fn lookup_with<F: FnMut(u32)>(
        &self,
        k: u64,
        mut on_visit: F,
    ) -> Result<bool, TamperEvidence> {
        if self.blocks.is_empty() {
            return Ok(false);
        }
        let mut b = 0u32;
        loop {
            on_visit(b);
            let blk = &self.blocks[b as usize];
            let Some(nb) = blk.largest() else {
                return Err(empty_block_evidence("lookup-walk", b));
            };
            if k <= nb {
                // Step 5: search within the block.
                return Ok(blk.entries.iter().any(|e| e.jump_key() == k));
            }
            let (i, j) = self.cfg.slot_for_delta(k - nb);
            let flat = self.cfg.flat_slot(i, j) as usize;
            let target = blk.ptrs[flat];
            if target == NULL {
                return Ok(false);
            }
            let smallest_next = self.blocks[target as usize].entries[0].jump_key();
            // The target block must hold keys no smaller than anything in
            // the chain before it; a reversal is tamper evidence.
            if smallest_next < blk.entries[0].jump_key() {
                return Err(TamperEvidence {
                    invariant: "lookup-order",
                    detail: format!(
                        "pointer from block {b} reaches block {target} with smaller keys"
                    ),
                });
            }
            b = target;
        }
    }

    /// Whether `k` was inserted.
    pub fn lookup(&self, k: u64) -> Result<bool, TamperEvidence> {
        self.lookup_with(k, |_| {})
    }

    /// Position of the first entry with key ≥ `k`, or `None`
    /// (paper: `FindGeq(k)`, generalised from the binary pseudocode).
    pub fn find_geq(&self, k: u64) -> Result<Option<Position>, TamperEvidence> {
        self.find_geq_with(k, |_| {})
    }

    /// [`find_geq`](Self::find_geq), reporting visited blocks.
    pub fn find_geq_with<F: FnMut(u32)>(
        &self,
        k: u64,
        mut on_visit: F,
    ) -> Result<Option<Position>, TamperEvidence> {
        if self.blocks.is_empty() {
            return Ok(None);
        }
        self.find_geq_rec(0, k, &mut on_visit)
    }

    fn find_geq_rec<F: FnMut(u32)>(
        &self,
        b: u32,
        k: u64,
        on_visit: &mut F,
    ) -> Result<Option<Position>, TamperEvidence> {
        on_visit(b);
        let blk = &self.blocks[b as usize];
        let Some(nb) = blk.largest() else {
            return Err(empty_block_evidence("find-geq-walk", b));
        };
        if k <= nb {
            // Blocks hold contiguous runs of the global sequence, so the
            // first in-block entry ≥ k is the global successor.
            let slot = blk.entries.partition_point(|e| e.jump_key() < k) as u32;
            debug_assert!((slot as usize) < blk.entries.len());
            return Ok(Some(Position { block: b, slot }));
        }
        let (i, j) = self.cfg.slot_for_delta(k - nb);
        let flat = self.cfg.flat_slot(i, j);
        let target = blk.ptrs[flat as usize];
        if target != NULL {
            // Unlike the binary variant, the result may legitimately exceed
            // the pointer's range end: the target block stores a contiguous
            // run of the global sequence, so when no committed key lies in
            // [k, range-end) the in-block successor is the global one.  The
            // paper's step-10 range assert therefore does not carry over;
            // structural tampering is caught by `audit` and the per-jump
            // order check in `lookup_with` instead.
            if let Some(pos) = self.find_geq_rec(target, k, on_visit)? {
                debug_assert!(self.entry_at(pos).is_some_and(|e| e.jump_key() >= k));
                return Ok(Some(pos));
            }
        }
        // No key ≥ k under pointer (i, j); the first later non-null
        // pointer leads to the next larger committed key.
        for f in flat + 1..self.cfg.pointer_slots() {
            let t = blk.ptrs[f as usize];
            if t != NULL {
                return self.find_geq_rec(t, k, on_visit);
            }
        }
        Ok(None)
    }

    /// The entry at `pos`, if valid.
    pub fn entry_at(&self, pos: Position) -> Option<E> {
        self.blocks
            .get(pos.block as usize)?
            .entries
            .get(pos.slot as usize)
            .copied()
    }

    /// Advance to the next entry in key order (sequential chain traversal),
    /// reporting a block visit when crossing into the next block.
    pub fn advance<F: FnMut(u32)>(&self, pos: Position, mut on_visit: F) -> Option<Position> {
        let blk = self.blocks.get(pos.block as usize)?;
        if ((pos.slot + 1) as usize) < blk.entries.len() {
            return Some(Position {
                block: pos.block,
                slot: pos.slot + 1,
            });
        }
        let next = pos.block + 1;
        if (next as usize) < self.blocks.len() {
            on_visit(next);
            Some(Position {
                block: next,
                slot: 0,
            })
        } else {
            None
        }
    }

    /// Iterate all entries in key order, starting at `pos`.
    pub fn iter_from(&self, pos: Position) -> impl Iterator<Item = E> + '_ {
        let mut cur = Some(pos);
        std::iter::from_fn(move || {
            let pos = cur?;
            let e = self.entry_at(pos)?;
            cur = self.advance(pos, |_| {});
            Some(e)
        })
    }

    /// Iterate all entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = E> + '_ {
        self.blocks.iter().flat_map(|b| b.entries.iter().copied())
    }

    /// Full-structure audit: global key order, pointer-target validity and
    /// pointer-range containment.  Any violation is tamper evidence,
    /// because legitimate operation cannot produce one and WORM appends
    /// cannot remove one.
    pub fn audit(&self) -> Result<(), TamperEvidence> {
        let mut prev: Option<u64> = None;
        for (bi, blk) in self.blocks.iter().enumerate() {
            if blk.entries.is_empty() {
                return Err(TamperEvidence {
                    invariant: "audit-empty-block",
                    detail: format!("block {bi} holds no entries"),
                });
            }
            for e in &blk.entries {
                let k = e.jump_key();
                if let Some(p) = prev {
                    if k < p {
                        return Err(TamperEvidence {
                            invariant: "audit-order",
                            detail: format!("key {k} in block {bi} follows larger key {p}"),
                        });
                    }
                }
                prev = Some(k);
            }
        }
        for (bi, blk) in self.blocks.iter().enumerate() {
            let Some(nb) = blk.largest() else {
                return Err(empty_block_evidence("audit-empty-block", bi as u32));
            };
            for flat in 0..self.cfg.pointer_slots() {
                let t = blk.ptrs[flat as usize];
                if t == NULL {
                    continue;
                }
                if t as usize >= self.blocks.len() || t as usize <= bi {
                    return Err(TamperEvidence {
                        invariant: "audit-target",
                        detail: format!("block {bi} pointer {flat} targets invalid block {t}"),
                    });
                }
                let (i, j) = self.cfg.slot_ij(flat);
                let power = (self.cfg.branching as u64).pow(i);
                let lo = nb.saturating_add(j as u64 * power);
                let hi = nb.saturating_add((j as u64 + 1) * power);
                let target = &self.blocks[t as usize];
                let has_in_range = target
                    .entries
                    .iter()
                    .any(|e| (lo..hi).contains(&e.jump_key()));
                if !has_in_range {
                    return Err(TamperEvidence {
                        invariant: "audit-range",
                        detail: format!(
                            "block {bi} pointer ({i},{j}) targets block {t} with no key in [{lo},{hi})"
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Internal access for the persistence layer.
    // ------------------------------------------------------------------

    /// The entries stored in chain block `b` (diagnostics).
    pub fn block_entries(&self, b: u32) -> &[E] {
        &self.blocks[b as usize].entries
    }

    /// The flat pointer slots of chain block `b`, `u32::MAX` meaning unset
    /// (diagnostics).
    pub fn block_ptrs(&self, b: u32) -> &[u32] {
        &self.blocks[b as usize].ptrs
    }

    pub(crate) fn set_recovered_ptr(
        &mut self,
        block: u32,
        flat: u32,
        target: u32,
    ) -> Result<(), JumpError> {
        let slot = &mut self.blocks[block as usize].ptrs[flat as usize];
        if *slot != NULL {
            return Err(JumpError::Tamper(TamperEvidence {
                invariant: "recover-double-set",
                detail: format!(
                    "pointer slot {flat} of block {block} assigned twice ({} then {target})",
                    *slot
                ),
            }));
        }
        *slot = target;
        self.stats.pointers_set += 1;
        Ok(())
    }

    pub(crate) fn push_raw_block(&mut self, entries: Vec<E>, ptrs: Vec<u32>) {
        self.stats.entries += entries.len() as u64;
        self.stats.blocks_allocated += 1;
        self.stats.pointers_set += ptrs.iter().filter(|&&p| p != NULL).count() as u64;
        self.last_key = entries.last().map(|e| e.jump_key()).or(self.last_key);
        self.blocks.push(JBlock { entries, ptrs });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tiny(branching: u32) -> JumpConfig {
        // Small blocks so tests exercise multi-block behaviour: pointer
        // region + a handful of entries.
        let ptr_bytes = {
            let probe = JumpConfig::new(1 << 14, branching, 1 << 16);
            probe.pointer_region_bytes()
        };
        JumpConfig::new(ptr_bytes + 8 * 4, branching, 1 << 16) // p = 4
    }

    #[test]
    fn paper_figure_7b_example() {
        // Figure 7(b): p = 4, B = 3, entries 1,2,5,7 | 8,10,15,19 | 21,22,25.
        let cfg = tiny(3);
        assert_eq!(cfg.entries_per_block(), 4);
        let mut idx: BlockJumpIndex<u64> = BlockJumpIndex::new(cfg);
        for k in [1u64, 2, 5, 7, 8, 10, 15, 19, 21, 22, 25] {
            idx.insert(k).unwrap();
        }
        assert_eq!(idx.num_blocks(), 3);
        // "The (0,1) pointer [of block 0] points to block 1 because the
        // latter contains 8 and 7 + 1·3⁰ ≤ 8 < 7 + 1·3¹" — n_b = 7.
        let flat01 = cfg.flat_slot(0, 1) as usize;
        assert_eq!(idx.block_ptrs(0)[flat01], 1);
        // "the (2,2) pointer of block 0 points to block 2, because block 2
        // contains 25 and 7 + 2·3² ≤ 25 < 7 + 3·3²".
        let flat22 = cfg.flat_slot(2, 2) as usize;
        assert_eq!(idx.block_ptrs(0)[flat22], 2);
        idx.audit().unwrap();
    }

    #[test]
    fn lookup_and_find_geq_across_blocks() {
        let mut idx: BlockJumpIndex<u64> = BlockJumpIndex::new(tiny(3));
        let keys = [1u64, 2, 5, 7, 8, 10, 15, 19, 21, 22, 25];
        for &k in &keys {
            idx.insert(k).unwrap();
        }
        for &k in &keys {
            assert!(idx.lookup(k).unwrap(), "lost {k}");
        }
        for miss in [0u64, 3, 9, 20, 26, 1000] {
            assert!(!idx.lookup(miss).unwrap(), "phantom {miss}");
        }
        for probe in 0..=26u64 {
            let expect = keys.iter().copied().find(|&v| v >= probe);
            let got = idx
                .find_geq(probe)
                .unwrap()
                .map(|p| idx.entry_at(p).unwrap());
            assert_eq!(got, expect, "probe {probe}");
        }
    }

    #[test]
    fn duplicates_are_stored_and_scannable() {
        let mut idx: BlockJumpIndex<u64> = BlockJumpIndex::new(tiny(3));
        for k in [1u64, 1, 1, 1, 1, 2, 2, 7] {
            idx.insert(k).unwrap();
        }
        assert_eq!(idx.len(), 8);
        // Duplicates span a block boundary (p = 4) and stay reachable via
        // sequential advance from the first occurrence.
        let pos = idx.find_geq(1).unwrap().unwrap();
        let run: Vec<u64> = idx.iter_from(pos).collect();
        assert_eq!(run, vec![1, 1, 1, 1, 1, 2, 2, 7]);
        assert!(idx.lookup(1).unwrap());
        assert!(idx.lookup(7).unwrap());
        idx.audit().unwrap();
    }

    #[test]
    fn non_monotonic_and_oversized_rejected() {
        let mut idx: BlockJumpIndex<u64> = BlockJumpIndex::new(tiny(3));
        idx.insert(10).unwrap();
        assert!(matches!(
            idx.insert(9),
            Err(JumpError::NonMonotonicInsert { .. })
        ));
        assert!(matches!(
            idx.insert(1 << 16),
            Err(JumpError::KeyTooLarge { .. })
        ));
    }

    #[test]
    fn touches_report_fills_and_pointer_sets() {
        let mut touches = Vec::new();
        let mut idx: BlockJumpIndex<u64> = BlockJumpIndex::new(tiny(3)); // p = 4
        for k in 0..9u64 {
            idx.insert_with(k * 3 + 1, |t| touches.push(t)).unwrap();
        }
        let fills = touches
            .iter()
            .filter(|t| matches!(t, Touch::Append { fills: true, .. }))
            .count();
        assert_eq!(fills, 2, "two blocks filled after 9 inserts with p=4");
        let sets = touches
            .iter()
            .filter(|t| matches!(t, Touch::PointerSet { .. }))
            .count();
        assert_eq!(sets as u64, idx.stats().pointers_set);
        assert!(sets >= 2, "pointers must be set once later blocks exist");
    }

    #[test]
    fn insert_walk_terminates_at_tail_without_setting() {
        // Keys landing in the same block as their predecessor chain reuse
        // existing pointers; pointers_set stays bounded by inserts.
        let mut idx: BlockJumpIndex<u64> = BlockJumpIndex::new(tiny(3));
        for k in 0..200u64 {
            idx.insert(k).unwrap();
        }
        assert!(idx.stats().pointers_set <= 200);
        idx.audit().unwrap();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Proposition 2 for the block variant, at several branching
        /// factors: everything inserted stays visible.
        #[test]
        fn prop2_block_everything_findable(mut raw in proptest::collection::vec(0u64..10_000, 1..250),
                                           b in prop_oneof![Just(2u32), Just(3), Just(8), Just(32)]) {
            raw.sort_unstable();
            raw.dedup();
            let cfg = JumpConfig::new(JumpConfig::new(1 << 14, b, 1 << 14).pointer_region_bytes() + 8 * 4, b, 1 << 14);
            let mut idx: BlockJumpIndex<u64> = BlockJumpIndex::new(cfg);
            for &k in &raw {
                if k < (1 << 14) {
                    idx.insert(k).unwrap();
                }
            }
            for &k in &raw {
                if k < (1 << 14) {
                    prop_assert!(idx.lookup(k).unwrap());
                }
            }
            idx.audit().unwrap();
        }

        /// Proposition 3 for the block variant: find_geq returns exactly
        /// the successor, so zigzag joins can never skip a committed ID.
        #[test]
        fn prop3_block_findgeq_exact(mut raw in proptest::collection::vec(0u64..8000, 1..200),
                                     probes in proptest::collection::vec(0u64..8200, 1..80),
                                     b in prop_oneof![Just(2u32), Just(5), Just(32)]) {
            raw.sort_unstable();
            raw.dedup();
            let cfg = JumpConfig::new(JumpConfig::new(1 << 13, b, 1 << 13).pointer_region_bytes() + 8 * 3, b, 1 << 13);
            let mut idx: BlockJumpIndex<u64> = BlockJumpIndex::new(cfg);
            let raw: Vec<u64> = raw.into_iter().filter(|&k| k < (1 << 13)).collect();
            for &k in &raw {
                idx.insert(k).unwrap();
            }
            for &q in &probes {
                let expect = raw.iter().copied().find(|&v| v >= q);
                let got = idx.find_geq(q).unwrap().map(|p| idx.entry_at(p).unwrap());
                prop_assert_eq!(got, expect, "probe {}", q);
            }
        }

        /// §4.4 complexity claim: "one can show that if the lookup proceeds
        /// by following pointers i₁, …, i_k, then i₁ < · · · < i_k.  This
        /// gives a bound of log_B(N) jumps for Lookup()" — so a lookup
        /// visits at most levels + 1 blocks.
        #[test]
        fn prop_lookup_block_visits_bounded_by_levels(
            mut raw in proptest::collection::vec(0u64..16_000, 1..300),
            probes in proptest::collection::vec(0u64..16_000, 1..50),
            b in prop_oneof![Just(2u32), Just(4), Just(16)],
        ) {
            raw.sort_unstable();
            raw.dedup();
            let cfg = JumpConfig::new(
                JumpConfig::new(1 << 14, b, 1 << 14).pointer_region_bytes() + 8 * 4,
                b,
                1 << 14,
            );
            let mut idx: BlockJumpIndex<u64> = BlockJumpIndex::new(cfg);
            for &k in &raw {
                idx.insert(k).unwrap();
            }
            let bound = cfg.levels() as usize + 1;
            for &q in probes.iter().chain(raw.iter()) {
                let mut visits = 0usize;
                idx.lookup_with(q, |_| visits += 1).unwrap();
                prop_assert!(
                    visits <= bound,
                    "lookup({}) visited {} blocks, bound {} (B={})",
                    q, visits, bound, b
                );
            }
        }

        /// Entries with duplicates: iteration from find_geq yields the
        /// whole tail of the sequence, in order.
        #[test]
        fn iteration_yields_sorted_tail(mut raw in proptest::collection::vec(0u64..4000, 1..150)) {
            raw.sort_unstable();
            let cfg = JumpConfig::new(JumpConfig::new(1 << 13, 4, 1 << 13).pointer_region_bytes() + 8 * 4, 4, 1 << 13);
            let mut idx: BlockJumpIndex<u64> = BlockJumpIndex::new(cfg);
            for &k in &raw {
                idx.insert(k).unwrap();
            }
            let q = raw[raw.len() / 2];
            let pos = idx.find_geq(q).unwrap().unwrap();
            let tail: Vec<u64> = idx.iter_from(pos).collect();
            let expect: Vec<u64> = raw.iter().copied().filter(|&v| v >= q).collect();
            prop_assert_eq!(tail, expect);
        }
    }
}
