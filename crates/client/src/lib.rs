//! # `tks-client` — blocking client for the archive server
//!
//! A small, dependency-free client for
//! [`tks_server`](tks_server)'s length-prefixed wire protocol.  One
//! [`Client`] owns one TCP connection — and therefore one pinned
//! `QuerySession` on the server side:
//! repeated queries see a frozen snapshot until [`Client::refresh`]
//! advances it.
//!
//! Failures are typed end to end: server-side errors arrive as
//! [`WireError`] values (inspect
//! [`code`](tks_server::wire::WireError::code) to branch on
//! `Overloaded` vs `DeadlineExceeded` vs `Degraded`), and transport
//! failures surface as [`ClientError::Frame`]/[`ClientError::Io`].
//!
//! ```no_run
//! use tks_client::Client;
//! use tks_server::wire::{WireQuery, WireTerms};
//!
//! let mut client = Client::connect("127.0.0.1:7045").expect("connect");
//! let resp = client
//!     .query(WireQuery::Disjunctive {
//!         terms: WireTerms::Text("retention audit".into()),
//!         top_k: 10,
//!     })
//!     .expect("query");
//! for hit in &resp.hits {
//!     println!("doc {} score {:.3} (trusted={})", hit.doc, hit.score, resp.trusted);
//! }
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use tks_server::wire::{
    self, FrameError, WireError, WireQuery, WireQueryResponse, WireRequest, WireResponse,
    WireStatus,
};

/// Failures of one client call.
#[derive(Debug)]
pub enum ClientError {
    /// Connecting or configuring the socket failed.
    Io(std::io::Error),
    /// The frame codec failed (transport-level: truncated stream,
    /// oversized frame, version mismatch, garbage payload).
    Frame(FrameError),
    /// The server answered with a typed error value.
    Server(WireError),
    /// The server answered with a response shape this call did not
    /// expect (a server bug or a protocol drift).
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "client I/O: {e}"),
            ClientError::Frame(e) => write!(f, "client transport: {e}"),
            ClientError::Server(e) => write!(f, "server error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Frame(e) => Some(e),
            ClientError::Server(e) => Some(e),
            ClientError::Protocol(_) => None,
        }
    }
}

/// What the caller should do about a failed call.
///
/// The server's failure classes ([`WireErrorCode`]) are designed so an
/// operator can branch on them; this is the client-side reading of every
/// one of them (plus the transport failures), so retry loops don't have
/// to re-derive the taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorDisposition {
    /// Transient pushback (queue full, deadline missed): retry the same
    /// call on the same connection after a backoff.
    RetryAfterBackoff,
    /// The archive — or a slice of it the call needs — cannot serve
    /// right now (degraded shard, drain in progress): retry later or
    /// against another replica; hammering this connection won't help.
    RetryLater,
    /// The connection itself is unusable (closed, truncated, I/O
    /// failure): reconnect before retrying.
    Reconnect,
    /// The request (or this client build) is at fault — malformed
    /// payload, frame over the server's limit, protocol-version or
    /// shape mismatch, or a server-side bug: retrying unchanged cannot
    /// succeed.
    Fatal,
}

impl ClientError {
    /// The typed server-side error, when this is one.
    pub fn as_wire(&self) -> Option<&WireError> {
        match self {
            ClientError::Server(e) => Some(e),
            _ => None,
        }
    }

    /// Classify this failure for a retry loop.  Matches every
    /// [`WireErrorCode`] and [`FrameError`] variant exhaustively, so a
    /// new server-side failure class is a compile error here instead of
    /// an "unknown error" at the operator console.
    pub fn disposition(&self) -> ErrorDisposition {
        use wire::WireErrorCode;
        match self {
            ClientError::Io(_) => ErrorDisposition::Reconnect,
            ClientError::Frame(e) => match e {
                FrameError::Closed | FrameError::Truncated | FrameError::Io(_) => {
                    ErrorDisposition::Reconnect
                }
                // The stream survives an idle poll tick; the same call
                // can simply be issued again.
                FrameError::IdleTimeout => ErrorDisposition::RetryAfterBackoff,
                FrameError::TooLarge { .. }
                | FrameError::UnsupportedVersion(_)
                | FrameError::Malformed(_) => ErrorDisposition::Fatal,
            },
            ClientError::Server(e) => match e.code {
                WireErrorCode::Overloaded | WireErrorCode::DeadlineExceeded => {
                    ErrorDisposition::RetryAfterBackoff
                }
                WireErrorCode::Degraded
                | WireErrorCode::NoHealthyShards
                | WireErrorCode::ShuttingDown => ErrorDisposition::RetryLater,
                // A digest mismatch means the response's trust fields
                // were altered (or forged); re-asking the same endpoint
                // cannot make the evidence trustworthy.
                WireErrorCode::Engine
                | WireErrorCode::Malformed
                | WireErrorCode::FrameTooLarge
                | WireErrorCode::UnsupportedVersion
                | WireErrorCode::DigestMismatch
                | WireErrorCode::Internal => ErrorDisposition::Fatal,
            },
            ClientError::Protocol(_) => ErrorDisposition::Fatal,
        }
    }
}

/// One connection to an archive server.
pub struct Client {
    stream: TcpStream,
    max_frame_bytes: usize,
}

impl Client {
    /// Connect to a server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr).map_err(ClientError::Io)?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream,
            max_frame_bytes: wire::DEFAULT_MAX_FRAME_BYTES,
        })
    }

    /// Override the response frame-size ceiling (default 1 MiB).
    pub fn with_max_frame_bytes(mut self, max: usize) -> Client {
        self.max_frame_bytes = max;
        self
    }

    /// Set a socket read timeout for responses (`None` blocks forever).
    /// The server already bounds queries by their deadline; this guards
    /// against a vanished server.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.stream
            .set_read_timeout(timeout)
            .map_err(ClientError::Io)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&WireRequest::Ping)? {
            WireResponse::Pong => Ok(()),
            other => Err(unexpected("Pong", &other)),
        }
    }

    /// Archive status: shard count, this session's watermarks, degraded
    /// shards.
    pub fn status(&mut self) -> Result<WireStatus, ClientError> {
        match self.call(&WireRequest::Status)? {
            WireResponse::Status(s) => Ok(s),
            other => Err(unexpected("Status", &other)),
        }
    }

    /// Re-pin this connection's server-side session at the current
    /// commit frontier; returns the new per-shard watermark vector.
    pub fn refresh(&mut self) -> Result<Vec<u64>, ClientError> {
        match self.call(&WireRequest::Refresh)? {
            WireResponse::Refreshed { watermarks } => Ok(watermarks),
            other => Err(unexpected("Refreshed", &other)),
        }
    }

    /// Execute a query under the server's default deadline.
    pub fn query(&mut self, query: WireQuery) -> Result<WireQueryResponse, ClientError> {
        self.query_inner(query, None)
    }

    /// Execute a query with an explicit deadline.  A query that misses
    /// it fails with a [`WireError`] whose code is
    /// [`DeadlineExceeded`](tks_server::wire::WireErrorCode::DeadlineExceeded).
    pub fn query_with_deadline(
        &mut self,
        query: WireQuery,
        deadline_ms: u64,
    ) -> Result<WireQueryResponse, ClientError> {
        self.query_inner(query, Some(deadline_ms))
    }

    /// Execute a query and verify the response digest binds its
    /// watermark and per-shard chain heads before returning it.  A
    /// response whose trust fields were altered in flight (or that
    /// comes from a server predating the digest) fails with a
    /// [`DigestMismatch`](tks_server::wire::WireErrorCode::DigestMismatch)
    /// error, whose [`disposition`](ClientError::disposition) is
    /// `Fatal`.
    ///
    /// To additionally prove the response was computed over an archive
    /// prefix whose head the caller holds out-of-band, follow up with
    /// [`WireQueryResponse::verify_shard_head`].
    pub fn query_verified(&mut self, query: WireQuery) -> Result<WireQueryResponse, ClientError> {
        let resp = self.query_inner(query, None)?;
        resp.verify_digest().map_err(ClientError::Server)?;
        Ok(resp)
    }

    fn query_inner(
        &mut self,
        query: WireQuery,
        deadline_ms: Option<u64>,
    ) -> Result<WireQueryResponse, ClientError> {
        match self.call(&WireRequest::Query { query, deadline_ms })? {
            WireResponse::Query(r) => Ok(r),
            other => Err(unexpected("Query", &other)),
        }
    }

    /// One request/response exchange.  Typed server errors become
    /// [`ClientError::Server`] here, so the per-method matches above
    /// only see success shapes.
    fn call(&mut self, req: &WireRequest) -> Result<WireResponse, ClientError> {
        wire::write_request(&mut self.stream, req).map_err(ClientError::Frame)?;
        match wire::read_response(&mut self.stream, self.max_frame_bytes) {
            Ok(WireResponse::Error(e)) => Err(ClientError::Server(e)),
            Ok(resp) => Ok(resp),
            Err(e) => Err(ClientError::Frame(e)),
        }
    }
}

fn unexpected(wanted: &str, got: &WireResponse) -> ClientError {
    ClientError::Protocol(format!("expected {wanted}, got {got:?}"))
}
