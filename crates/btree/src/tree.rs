//! Bottom-up append-only B+ tree over a strictly increasing key sequence.
//!
//! Paper §4: "One can create a B+ tree for an increasing sequence of
//! document IDs without any node splits or merges, by building the tree
//! from the bottom up … New elements are added at the leaf (posting list)
//! level.  When a leaf node fills up, a new leaf is created and an entry is
//! added to the parent that points to the new leaf. … When the root fills
//! up, a new level can be introduced, with a new root.  These steps only
//! require append and create operations on nodes and can be implemented in
//! WORM storage."
//!
//! Internal nodes hold `(separator, child)` entries where the separator is
//! the *smallest* key of the child's subtree; a lookup descends to the last
//! entry whose separator is ≤ the probe — the routing rule that Figure 6's
//! attack exploits, because a *later-appended* separator can capture probes
//! for *earlier-committed* keys.
//!
//! Every mutating method performs only operations legal on WORM storage:
//! creating a node, or appending an entry to a node with free space.

/// Identifier of a tree node (one node per disk block).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// Node capacities, derived from the disk block size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BTreeConfig {
    /// Max keys per leaf node (8-byte postings: `L / 8`).
    pub leaf_capacity: usize,
    /// Max `(separator, child)` entries per internal node
    /// (8-byte key + 4-byte pointer: `L / 12`).
    pub internal_capacity: usize,
}

impl BTreeConfig {
    /// Capacities for a given block size in bytes (the paper uses 8 KB).
    pub fn for_block_size(block_size: usize) -> Self {
        Self {
            leaf_capacity: (block_size / 8).max(2),
            internal_capacity: (block_size / 12).max(2),
        }
    }

    /// Tiny nodes for tests and worked examples.
    pub fn tiny(leaf: usize, internal: usize) -> Self {
        assert!(leaf >= 2 && internal >= 2);
        Self {
            leaf_capacity: leaf,
            internal_capacity: internal,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        keys: Vec<u64>,
        /// Set once, when the successor leaf is created (write-once).
        next: Option<NodeId>,
    },
    Internal {
        /// `(smallest key of child subtree, child)`, in append order.
        entries: Vec<(u64, NodeId)>,
    },
}

/// Append-only bottom-up B+ tree (see module docs).
///
/// # Example
///
/// ```
/// use tks_btree::{AppendOnlyBPlusTree, BTreeConfig};
///
/// let mut t = AppendOnlyBPlusTree::new(BTreeConfig::tiny(3, 3));
/// for k in [2u64, 4, 7, 11, 13, 19, 23, 29, 31] {
///     t.insert(k).unwrap();
/// }
/// assert!(t.lookup(31, &mut |_| {}));
/// assert_eq!(t.find_geq(28, &mut |_| {}), Some(29));
/// assert_eq!(t.find_geq(32, &mut |_| {}), None);
/// ```
#[derive(Debug, Clone)]
pub struct AppendOnlyBPlusTree {
    cfg: BTreeConfig,
    nodes: Vec<Node>,
    root: NodeId,
    /// Rightmost path from the root (exclusive) down to the current leaf;
    /// the spine along which bottom-up building appends.
    last_key: Option<u64>,
    len: u64,
}

impl AppendOnlyBPlusTree {
    /// Create an empty tree.
    pub fn new(cfg: BTreeConfig) -> Self {
        let nodes = vec![Node::Leaf {
            keys: Vec::new(),
            next: None,
        }];
        Self {
            cfg,
            nodes,
            root: NodeId(0),
            last_key: None,
            len: 0,
        }
    }

    /// Number of keys inserted through the legitimate path.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether no keys have been inserted.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of nodes (≈ disk blocks) in the tree.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Tree height (1 = root is a leaf).
    pub fn height(&self) -> u32 {
        let mut h = 1;
        let mut n = self.root;
        while let Node::Internal { entries } = &self.nodes[n.0 as usize] {
            n = entries.last().expect("internal nodes are never empty").1;
            h += 1;
        }
        h
    }

    /// The root node.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Insert the next key of the increasing sequence.
    ///
    /// # Errors
    ///
    /// Returns the offending key if it is not strictly greater than the
    /// previous one.
    pub fn insert(&mut self, k: u64) -> Result<(), u64> {
        if let Some(last) = self.last_key {
            if k <= last {
                return Err(k);
            }
        }
        // Find the rightmost leaf by walking last-children.
        let mut path = Vec::new();
        let mut n = self.root;
        while let Node::Internal { entries } = &self.nodes[n.0 as usize] {
            path.push(n);
            n = entries.last().expect("internal nodes are never empty").1;
        }
        let leaf_cap = self.cfg.leaf_capacity;
        let leaf_full = match &self.nodes[n.0 as usize] {
            Node::Leaf { keys, .. } => keys.len() >= leaf_cap,
            Node::Internal { .. } => unreachable!("walk ends at a leaf"),
        };
        if !leaf_full {
            match &mut self.nodes[n.0 as usize] {
                Node::Leaf { keys, .. } => keys.push(k), // append to WORM block
                Node::Internal { .. } => unreachable!(),
            }
        } else {
            // Create a new leaf and link it into the parent chain,
            // creating new ancestors (and possibly a new root) as needed.
            let new_leaf = self.alloc(Node::Leaf {
                keys: vec![k],
                next: None,
            });
            match &mut self.nodes[n.0 as usize] {
                Node::Leaf { next, .. } => {
                    debug_assert!(next.is_none(), "next pointer is write-once");
                    *next = Some(new_leaf); // one-time append of the chain pointer
                }
                Node::Internal { .. } => unreachable!(),
            }
            self.attach(&path, k, new_leaf);
        }
        self.last_key = Some(k);
        self.len += 1;
        Ok(())
    }

    /// Attach `(sep, child)` to the deepest spine node with space,
    /// creating ancestors/a new root as required.
    fn attach(&mut self, path: &[NodeId], sep: u64, child: NodeId) {
        let mut sep = sep;
        let mut child = child;
        for &anc in path.iter().rev() {
            let cap = self.cfg.internal_capacity;
            match &mut self.nodes[anc.0 as usize] {
                Node::Internal { entries } => {
                    if entries.len() < cap {
                        entries.push((sep, child)); // append to WORM block
                        return;
                    }
                    // Ancestor full: create a sibling internal node holding
                    // the new entry and propagate upward.
                    let min = sep;
                    let sibling = self.alloc(Node::Internal {
                        entries: vec![(sep, child)],
                    });
                    sep = min;
                    child = sibling;
                }
                Node::Leaf { .. } => unreachable!("spine is internal"),
            }
        }
        // Reached above the root: introduce a new root level.
        let old_root = self.root;
        let old_min = self.subtree_min(old_root);
        let new_root = self.alloc(Node::Internal {
            entries: vec![(old_min, old_root), (sep, child)],
        });
        self.root = new_root;
    }

    fn subtree_min(&self, n: NodeId) -> u64 {
        match &self.nodes[n.0 as usize] {
            Node::Leaf { keys, .. } => *keys.first().expect("non-empty leaf"),
            Node::Internal { entries } => entries.first().expect("non-empty internal").0,
        }
    }

    fn alloc(&mut self, node: Node) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    /// Whether `k` is reachable through the tree.  `on_visit` receives
    /// every node (block) read.
    ///
    /// Note the *reachable*: after Figure 6's attack, committed keys stop
    /// being reachable even though their bytes are still on WORM — the
    /// vulnerability that motivates jump indexes.
    pub fn lookup(&self, k: u64, on_visit: &mut dyn FnMut(NodeId)) -> bool {
        let mut n = self.root;
        loop {
            on_visit(n);
            match &self.nodes[n.0 as usize] {
                Node::Leaf { keys, .. } => return keys.binary_search(&k).is_ok(),
                Node::Internal { entries } => {
                    // Routing rule: last entry with separator ≤ k.  Entries
                    // are scanned in reverse append order, so an appended
                    // (malicious) separator takes precedence — exactly the
                    // behaviour of a B+ tree whose node entries are kept
                    // sorted by key with later inserts shadowing the range.
                    match entries.iter().rev().find(|(sep, _)| *sep <= k) {
                        Some(&(_, child)) => n = child,
                        None => return false,
                    }
                }
            }
        }
    }

    /// Smallest reachable key ≥ `k` (used by zigzag joins).  Subject to the
    /// same attack as [`lookup`](Self::lookup) — Figure 6: after the
    /// attack, `find_geq(28)` returns Mala's 30 instead of the committed
    /// 29.
    pub fn find_geq(&self, k: u64, on_visit: &mut dyn FnMut(NodeId)) -> Option<u64> {
        let mut n = self.root;
        loop {
            on_visit(n);
            match &self.nodes[n.0 as usize] {
                Node::Leaf { keys, next } => {
                    let i = keys.partition_point(|&key| key < k);
                    if i < keys.len() {
                        return Some(keys[i]);
                    }
                    // Exhausted this leaf: follow the chain.
                    let mut cur = *next;
                    while let Some(nx) = cur {
                        on_visit(nx);
                        match &self.nodes[nx.0 as usize] {
                            Node::Leaf { keys, next } => {
                                if let Some(&key) = keys.first() {
                                    if key >= k {
                                        return Some(key);
                                    }
                                    let j = keys.partition_point(|&key| key < k);
                                    if j < keys.len() {
                                        return Some(keys[j]);
                                    }
                                }
                                cur = *next;
                            }
                            Node::Internal { .. } => return None, // corrupted chain
                        }
                    }
                    return None;
                }
                Node::Internal { entries } => {
                    match entries.iter().rev().find(|(sep, _)| *sep <= k) {
                        Some(&(_, child)) => n = child,
                        None => {
                            // k is below the smallest separator: descend to
                            // the first child, whose subtree holds the
                            // smallest keys.
                            n = entries.first()?.1;
                        }
                    }
                }
            }
        }
    }

    /// All keys reachable via the leaf chain from the leftmost leaf
    /// (diagnostics; note that Figure 6's attack does *not* remove keys
    /// from the chain — it misdirects the *descent*).
    pub fn leaf_chain_keys(&self) -> Vec<u64> {
        let mut n = self.root;
        while let Node::Internal { entries } = &self.nodes[n.0 as usize] {
            n = entries.first().expect("non-empty internal").1;
        }
        let mut out = Vec::new();
        let mut cur = Some(n);
        while let Some(id) = cur {
            match &self.nodes[id.0 as usize] {
                Node::Leaf { keys, next } => {
                    out.extend_from_slice(keys);
                    cur = *next;
                }
                Node::Internal { .. } => break,
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Adversary interface: legal WORM mutations available to Mala.
    // ------------------------------------------------------------------

    /// Adversarially create a node (a legal WORM block allocation).
    /// Returns its id.  `keys` need not relate to committed data.
    pub fn adversary_create_leaf(&mut self, keys: Vec<u64>) -> NodeId {
        self.alloc(Node::Leaf { keys, next: None })
    }

    /// Adversarially create an internal node.
    pub fn adversary_create_internal(&mut self, entries: Vec<(u64, NodeId)>) -> NodeId {
        self.alloc(Node::Internal { entries })
    }

    /// Adversarially append `(sep, child)` to an existing internal node —
    /// a legal WORM append when the node has free space.
    ///
    /// # Errors
    ///
    /// Fails (like the device would) when the node is full or a leaf.
    pub fn adversary_append_entry(
        &mut self,
        node: NodeId,
        sep: u64,
        child: NodeId,
    ) -> Result<(), &'static str> {
        let cap = self.cfg.internal_capacity;
        match &mut self.nodes[node.0 as usize] {
            Node::Internal { entries } => {
                if entries.len() >= cap {
                    Err("node full: WORM refuses the append")
                } else {
                    entries.push((sep, child));
                    Ok(())
                }
            }
            Node::Leaf { .. } => Err("cannot append routing entries to a leaf"),
        }
    }

    /// Adversarially append keys to an existing leaf with space (the
    /// binary-search attack of §4: "appending smaller numbers at the
    /// tail").
    pub fn adversary_append_leaf_keys(
        &mut self,
        node: NodeId,
        keys: &[u64],
    ) -> Result<(), &'static str> {
        let cap = self.cfg.leaf_capacity;
        match &mut self.nodes[node.0 as usize] {
            Node::Leaf { keys: existing, .. } => {
                if existing.len() + keys.len() > cap {
                    Err("leaf full: WORM refuses the append")
                } else {
                    existing.extend_from_slice(keys);
                    Ok(())
                }
            }
            Node::Internal { .. } => Err("not a leaf"),
        }
    }

    /// The rightmost leaf (where Figure 6's binary-search attack appends).
    pub fn rightmost_leaf(&self) -> NodeId {
        let mut n = self.root;
        while let Node::Internal { entries } = &self.nodes[n.0 as usize] {
            n = entries.last().expect("non-empty internal").1;
        }
        n
    }

    /// Free routing slots in the root (what Mala needs for her subtree).
    pub fn root_free_slots(&self) -> usize {
        match &self.nodes[self.root.0 as usize] {
            Node::Internal { entries } => self.cfg.internal_capacity - entries.len(),
            Node::Leaf { keys, .. } => self.cfg.leaf_capacity - keys.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(keys: &[u64], leaf: usize, internal: usize) -> AppendOnlyBPlusTree {
        let mut t = AppendOnlyBPlusTree::new(BTreeConfig::tiny(leaf, internal));
        for &k in keys {
            t.insert(k).unwrap();
        }
        t
    }

    #[test]
    fn paper_figure_6a_sequence() {
        // Figure 6(a): 2, 4, 7, 11, 13, 19, 23, 29, 31 in a small tree.
        let keys = [2u64, 4, 7, 11, 13, 19, 23, 29, 31];
        let t = build(&keys, 2, 3);
        for &k in &keys {
            assert!(t.lookup(k, &mut |_| {}), "missing {k}");
        }
        for miss in [1u64, 3, 12, 24, 32] {
            assert!(!t.lookup(miss, &mut |_| {}), "phantom {miss}");
        }
        assert!(t.height() >= 3, "nine keys with 2-key leaves need 3 levels");
        assert_eq!(t.leaf_chain_keys(), keys.to_vec());
    }

    #[test]
    fn insert_rejects_non_increasing() {
        let mut t = AppendOnlyBPlusTree::new(BTreeConfig::tiny(2, 2));
        t.insert(5).unwrap();
        assert_eq!(t.insert(5), Err(5));
        assert_eq!(t.insert(4), Err(4));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn find_geq_matches_reference() {
        let keys: Vec<u64> = (0..500).map(|i| i * 3 + (i % 2)).collect();
        let t = build(&keys, 4, 4);
        for probe in 0..1520u64 {
            let expect = keys.iter().copied().find(|&v| v >= probe);
            assert_eq!(t.find_geq(probe, &mut |_| {}), expect, "probe {probe}");
        }
    }

    #[test]
    fn lookup_cost_is_logarithmic() {
        let keys: Vec<u64> = (0..10_000).collect();
        let t = build(&keys, 64, 64);
        let mut reads = 0usize;
        assert!(t.lookup(9_999, &mut |_| reads += 1));
        assert!(
            reads <= 3,
            "expected ≤3 block reads for 10k keys at fanout 64, got {reads}"
        );
    }

    #[test]
    fn large_block_config_shapes() {
        let cfg = BTreeConfig::for_block_size(8192);
        assert_eq!(cfg.leaf_capacity, 1024);
        assert_eq!(cfg.internal_capacity, 682);
    }

    #[test]
    fn bottom_up_build_never_overfills_nodes() {
        let keys: Vec<u64> = (0..2_000).collect();
        let t = build(&keys, 3, 3);
        for node in &t.nodes {
            match node {
                Node::Leaf { keys, .. } => assert!(keys.len() <= 3),
                Node::Internal { entries } => assert!(entries.len() <= 3 && !entries.is_empty()),
            }
        }
        assert_eq!(t.leaf_chain_keys().len(), 2_000);
    }

    #[test]
    fn single_leaf_tree_works() {
        let t = build(&[10, 20], 4, 4);
        assert!(t.lookup(10, &mut |_| {}));
        assert!(!t.lookup(15, &mut |_| {}));
        assert_eq!(t.find_geq(11, &mut |_| {}), Some(20));
        assert_eq!(t.height(), 1);
        assert_eq!(t.root_free_slots(), 2);
    }
}
