//! # `tks-btree` — the untrustworthy baseline: append-only B+ trees on WORM
//!
//! Paper §4 (Figure 6) shows that B+ trees, even when every node lives in
//! WORM storage and is only ever *appended* to, are **not trustworthy**:
//!
//! > "Mala can hide entry 31 by creating a separate subtree that does not
//! > contain 31, and adding an entry 25 at the root to lead to the new
//! > subtree.  A subsequent lookup on 31 will be directed to Mala's
//! > subtree. … Mala's attack works because in a B+ tree, the path taken
//! > to look up entry 31 depends on entries that were added to the index
//! > *after* entry 31 was added."
//!
//! This crate implements exactly that baseline:
//!
//! * [`AppendOnlyBPlusTree`] — a B+ tree built bottom-up over a strictly
//!   increasing key sequence using only node-create and node-append
//!   operations (no splits or merges), as described in §4 and used as the
//!   paper's "ideal" performance baseline in Figure 8(c);
//! * [`attack`] — Mala's hiding attack (spurious subtree + misdirecting
//!   separator), plus the binary-search variant ("appending smaller
//!   numbers at the tail"), both composed solely of legal WORM appends;
//!   the attack *succeeds silently* here, which is the motivation for jump
//!   indexes.
//!
//! The tree also serves as the performance baseline: `lookup`/`find_geq`
//! take a visit callback that counts block reads, used by the Figure 8(c)
//! harness for the "unmerged + B+ tree" ideal curve.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// tks-btree models the paper's *vulnerable baseline* index (Figure 6), not
// the production no-panic surface: structural invariants may use expect.
// The four production crates are gated by clippy + `cargo xtask audit`.
#![allow(clippy::unwrap_used, clippy::expect_used)]

pub mod attack;
pub mod tree;

pub use attack::{binary_search_leaves, hide_keys_above, HidingAttack};
pub use tree::{AppendOnlyBPlusTree, BTreeConfig, NodeId};
