//! Mala's hiding attacks on WORM-resident B+ trees (paper §4, Figure 6).
//!
//! Everything here is composed of *legal WORM operations* — allocating new
//! nodes and appending to nodes with free space — which the threat model
//! grants the adversary, since she can assume any identity including
//! superuser.  The attacks demonstrate that WORM residency alone does not
//! make an index trustworthy; detection requires structural invariants
//! like the jump index's monotonicity, which a B+ tree does not have.

use crate::tree::{AppendOnlyBPlusTree, NodeId};

/// Outcome of a hiding attack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HidingAttack {
    /// The spurious subtree root Mala created.
    pub evil_subtree: NodeId,
    /// The separator she appended at the root.
    pub separator: u64,
    /// Committed keys that became unreachable through `lookup`.
    pub hidden_keys: Vec<u64>,
}

/// Execute Figure 6(b): hide every committed key greater than `separator`
/// by appending a spurious subtree at the root whose decoy keys are
/// `decoys`.
///
/// After the attack, `lookup(k)` for hidden keys is misdirected into the
/// decoy subtree and returns `false` — *silently*; the committed keys are
/// still physically on WORM (see
/// [`leaf_chain_keys`](AppendOnlyBPlusTree::leaf_chain_keys)) but the
/// index no longer reaches them.
///
/// Returns `Err` if the root has no free slot (Mala would then target a
/// lower internal node on the rightmost path; the paper's example uses the
/// root for clarity, and so do we).
pub fn hide_keys_above(
    tree: &mut AppendOnlyBPlusTree,
    separator: u64,
    decoys: &[u64],
) -> Result<HidingAttack, &'static str> {
    if tree.root_free_slots() == 0 {
        return Err("root full; attack would target a lower node");
    }
    let committed = tree.leaf_chain_keys();
    let evil_leaf = tree.adversary_create_leaf(decoys.to_vec());
    // A one-leaf subtree suffices; for taller trees Mala would build a
    // deeper spine, which changes nothing about the mechanism.
    let root = tree.root();
    tree.adversary_append_entry(root, separator, evil_leaf)?;
    let hidden_keys = committed
        .iter()
        .copied()
        .filter(|&k| k > separator && !tree.lookup(k, &mut |_| {}))
        .collect();
    Ok(HidingAttack {
        evil_subtree: evil_leaf,
        separator,
        hidden_keys,
    })
}

/// Binary search over the keys of the leaf chain, as a naive reader might
/// implement it.  Paper §4: "binary search on the leaves of the tree in
/// Figure 6(b) would miss 31 because of the malicious entry 30 at the
/// end" — appending out-of-order keys at the tail breaks the sortedness
/// assumption binary search relies on.
pub fn binary_search_leaves(tree: &AppendOnlyBPlusTree, k: u64) -> bool {
    let keys = tree.leaf_chain_keys();
    keys.binary_search(&k).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::BTreeConfig;

    fn figure6_tree() -> AppendOnlyBPlusTree {
        let mut t = AppendOnlyBPlusTree::new(BTreeConfig::tiny(3, 4));
        for k in [2u64, 4, 7, 11, 13, 19, 23, 29, 31] {
            t.insert(k).unwrap();
        }
        t
    }

    #[test]
    fn figure_6b_hiding_attack_succeeds_silently() {
        let mut t = figure6_tree();
        assert!(t.lookup(31, &mut |_| {}), "31 visible before the attack");
        // Mala: separator 25, decoy subtree containing 25, 26, 30.
        let attack = hide_keys_above(&mut t, 25, &[25, 26, 30]).unwrap();
        assert!(attack.hidden_keys.contains(&29));
        assert!(attack.hidden_keys.contains(&31));
        // The lookup fails *silently* — no error, no tamper evidence.
        assert!(!t.lookup(31, &mut |_| {}));
        assert!(!t.lookup(29, &mut |_| {}));
        // Keys at or below the separator are untouched.
        for k in [2u64, 4, 7, 11, 13, 19, 23] {
            assert!(t.lookup(k, &mut |_| {}), "{k} must survive");
        }
        // Mala's decoys are now "in" the index.
        assert!(t.lookup(26, &mut |_| {}));
        // The committed bytes are still physically on WORM:
        assert!(t.leaf_chain_keys().contains(&31));
    }

    #[test]
    fn figure_6b_findgeq_returns_wrong_answer() {
        let mut t = figure6_tree();
        assert_eq!(t.find_geq(28, &mut |_| {}), Some(29));
        hide_keys_above(&mut t, 25, &[25, 26, 30]).unwrap();
        // Paper: "the call FindGeq(28) will return 30 instead of 29."
        assert_eq!(t.find_geq(28, &mut |_| {}), Some(30));
    }

    #[test]
    fn binary_search_attack_on_leaf_tail() {
        let mut t = AppendOnlyBPlusTree::new(BTreeConfig::tiny(12, 8));
        for k in [2u64, 4, 7, 11, 13, 19, 23] {
            t.insert(k).unwrap();
        }
        assert!(binary_search_leaves(&t, 23));
        // Mala appends *smaller* keys at the tail of the last leaf — a
        // legal append to a non-full WORM block.
        let leaf = t.rightmost_leaf();
        t.adversary_append_leaf_keys(leaf, &[3, 3, 3]).unwrap();
        // Binary search now misses the committed key 23: the probe
        // sequence 19 → 3 → 3 walks into the unsorted tail.
        assert!(
            !binary_search_leaves(&t, 23),
            "binary search must be fooled"
        );
        // The key is still physically present.
        assert!(t.leaf_chain_keys().contains(&23));
    }

    #[test]
    fn attack_requires_root_space() {
        // Fill the root completely, then the attack as-written fails (Mala
        // would descend to a lower node; out of scope for the demo).
        let mut t = AppendOnlyBPlusTree::new(BTreeConfig::tiny(2, 2));
        for k in 0..32u64 {
            t.insert(k).unwrap();
        }
        if t.root_free_slots() == 0 {
            assert!(hide_keys_above(&mut t, 10, &[11]).is_err());
        }
    }

    #[test]
    fn attack_with_no_targets_hides_nothing() {
        let mut t = figure6_tree();
        let attack = hide_keys_above(&mut t, 40, &[41]).unwrap();
        assert!(attack.hidden_keys.is_empty());
        assert!(t.lookup(31, &mut |_| {}));
    }
}
