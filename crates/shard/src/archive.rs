//! The sharded archive: per-shard engines, per-shard crash recovery,
//! and explicit degraded-shard isolation.
//!
//! Each shard is a complete [`SearchEngine`] with its own WORM devices.
//! [`ShardedArchive::recover`] runs the engine's crash recovery on every
//! shard independently; a shard whose recovery fails (interior damage —
//! real tamper evidence, not a torn tail) is **isolated** into a
//! degraded state with the typed error preserved as its reason, instead
//! of failing the whole archive.  The healthy shards keep serving, and
//! every query response names the shards it could not consult — a
//! regulator sees exactly what is missing, and a torn commit on one
//! shard can never flip the `trusted` verdict of results from another.

use crate::error::ShardError;
use crate::router::ShardRouter;
use crate::service::{ReplicaReader, ShardedSearcher, ShardedWriter, WriterSlot};
use tks_core::engine::EngineParts;
use tks_core::{EngineConfig, RecoveryReport, SearchEngine};
use tks_replica::ReplicaVerdict;

/// One shard's state inside the archive (the engine is boxed: a
/// degraded shard's reason should not cost a whole engine's footprint
/// per slot).
enum ShardState {
    Live(Box<SearchEngine>),
    Degraded(String),
}

/// What per-shard crash recovery found on one shard.
#[derive(Debug, Clone)]
pub struct ShardRecovery {
    /// The shard id.
    pub shard: u32,
    /// Torn-commit residue quarantined on this shard, in bytes.
    pub quarantined_bytes: u64,
    /// The engine's recovery report (`None` when recovery refused).
    pub report: Option<RecoveryReport>,
    /// The typed recovery error, rendered (`Some` ⇔ the shard is
    /// degraded).
    pub error: Option<String>,
    /// `Some(r)` when replica `r` was promoted over this shard's primary
    /// (replicated recovery only).
    pub promoted_from: Option<usize>,
    /// Per-replica recovery verdicts (replicated recovery only).
    pub replicas: Vec<ReplicaVerdict>,
}

impl ShardRecovery {
    /// Recovery succeeded with nothing to quarantine.
    pub fn is_clean(&self) -> bool {
        self.error.is_none() && self.quarantined_bytes == 0
    }
}

/// A set of hash-partitioned WORM shards behind one router.
pub struct ShardedArchive {
    config: EngineConfig,
    router: ShardRouter,
    states: Vec<ShardState>,
    /// Per-shard verified standby engines (replicated recovery only):
    /// replicas whose recovered trust state exactly matched the shard's
    /// chosen engine.  Consumed by [`into_service`](Self::into_service)
    /// as read-scaling standbys, or taken whole by
    /// [`take_standbys`](Self::take_standbys) for write-path
    /// re-replication.
    standbys: Vec<Vec<(usize, Box<SearchEngine>)>>,
}

/// One shard's images for replicated recovery: the primary's devices
/// plus any number of replica images (a candidate whose devices could
/// not be loaded arrives as `Err(reason)`).
pub struct ReplicatedShardParts {
    /// The primary's devices (or why they could not be loaded).
    pub primary: Result<EngineParts, String>,
    /// Replica images, in replica order.
    pub replicas: Vec<Result<EngineParts, String>>,
}

impl ShardedArchive {
    /// Create a fresh archive of `shards` empty engines, each configured
    /// with its own copy of `config`.
    pub fn create(config: EngineConfig, shards: u32) -> Result<Self, ShardError> {
        let router = ShardRouter::new(shards)?;
        let mut states = Vec::with_capacity(shards as usize);
        for _ in 0..shards {
            let engine =
                SearchEngine::new(config.clone()).map_err(|e| ShardError::Config(e.to_string()))?;
            states.push(ShardState::Live(Box::new(engine)));
        }
        let standbys = (0..states.len()).map(|_| Vec::new()).collect();
        Ok(ShardedArchive {
            config,
            router,
            states,
            standbys,
        })
    }

    /// Assemble an archive from pre-built engines (shard id = position).
    /// All engines must share the archive's configuration; the first
    /// engine's is taken as canonical.
    pub fn from_engines(engines: Vec<SearchEngine>) -> Result<Self, ShardError> {
        let router = ShardRouter::new(engines.len() as u32)?;
        let config = match engines.first() {
            Some(e) => e.config().clone(),
            None => return Err(ShardError::Config("an archive needs ≥ 1 shard".to_string())),
        };
        let states: Vec<ShardState> = engines
            .into_iter()
            .map(|e| ShardState::Live(Box::new(e)))
            .collect();
        let standbys = (0..states.len()).map(|_| Vec::new()).collect();
        Ok(ShardedArchive {
            config,
            router,
            states,
            standbys,
        })
    }

    /// Recover every shard from its raw WORM devices (shard id =
    /// position in `parts`).
    ///
    /// Torn tails are quarantined per shard exactly as in the unsharded
    /// engine.  A shard whose recovery **fails** — interior damage, i.e.
    /// genuine tamper evidence — is isolated as degraded rather than
    /// failing the archive: the error is preserved in the returned
    /// [`ShardRecovery`] and in every future response's shard status.
    /// Callers that simulated a crash must run the per-device reboot
    /// steps (`disarm_faults`/`crash_recover`) before calling this.
    pub fn recover(
        parts: Vec<EngineParts>,
        config: EngineConfig,
    ) -> Result<(Self, Vec<ShardRecovery>), ShardError> {
        Self::recover_loaded(parts.into_iter().map(Ok).collect(), config)
    }

    /// [`recover`](Self::recover) for callers that load each shard's
    /// devices from external storage (image files, object stores): a
    /// shard whose devices could not even be *loaded* arrives as
    /// `Err(reason)` and is isolated as degraded immediately — an
    /// unreadable shard is a dead shard, not a dead archive.
    pub fn recover_loaded(
        parts: Vec<Result<EngineParts, String>>,
        config: EngineConfig,
    ) -> Result<(Self, Vec<ShardRecovery>), ShardError> {
        let router = ShardRouter::new(parts.len() as u32)?;
        let mut states = Vec::with_capacity(parts.len());
        let mut recoveries = Vec::with_capacity(parts.len());
        for (sid, loaded) in parts.into_iter().enumerate() {
            let shard = sid as u32;
            let shard_parts = match loaded {
                Ok(p) => p,
                Err(reason) => {
                    recoveries.push(ShardRecovery {
                        shard,
                        quarantined_bytes: 0,
                        report: None,
                        error: Some(reason.clone()),
                        promoted_from: None,
                        replicas: Vec::new(),
                    });
                    states.push(ShardState::Degraded(reason));
                    continue;
                }
            };
            match SearchEngine::recover(shard_parts, config.clone()) {
                Ok(engine) => {
                    let report = engine.recovery_report().clone();
                    recoveries.push(ShardRecovery {
                        shard,
                        quarantined_bytes: report.total_quarantined_bytes(),
                        report: Some(report),
                        error: None,
                        promoted_from: None,
                        replicas: Vec::new(),
                    });
                    states.push(ShardState::Live(Box::new(engine)));
                }
                Err(e) => {
                    let reason = e.to_string();
                    recoveries.push(ShardRecovery {
                        shard,
                        quarantined_bytes: 0,
                        report: None,
                        error: Some(reason.clone()),
                        promoted_from: None,
                        replicas: Vec::new(),
                    });
                    states.push(ShardState::Degraded(reason));
                }
            }
        }
        let standbys = (0..states.len()).map(|_| Vec::new()).collect();
        Ok((
            ShardedArchive {
                config,
                router,
                states,
                standbys,
            },
            recoveries,
        ))
    }

    /// Recover a **replicated** archive: each shard arrives as its
    /// primary image plus N replica images, and per-shard recovery may
    /// **promote** a replica over the primary (see
    /// [`tks_replica::recover_shard`] for the rule: longest verified
    /// chain prefix wins; a replica is never promoted over a primary
    /// that recovered more documents).  A shard only degrades when *no*
    /// candidate — primary or replica — recovers with a verified chain.
    ///
    /// Replicas that recover with the chosen engine's exact trust state
    /// become read-scaling standbys (see
    /// [`into_service`](Self::into_service)); each shard's
    /// [`ShardRecovery`] reports the per-replica verdicts and the
    /// promotion, if one happened.
    pub fn recover_replicated(
        shards: Vec<ReplicatedShardParts>,
        config: EngineConfig,
    ) -> Result<(Self, Vec<ShardRecovery>), ShardError> {
        let router = ShardRouter::new(shards.len() as u32)?;
        let mut states = Vec::with_capacity(shards.len());
        let mut standbys = Vec::with_capacity(shards.len());
        let mut recoveries = Vec::with_capacity(shards.len());
        for (sid, shard_parts) in shards.into_iter().enumerate() {
            let shard = sid as u32;
            let outcome =
                tks_replica::recover_shard(shard_parts.primary, shard_parts.replicas, &config);
            match outcome.engine {
                Some(engine) => {
                    let report = engine.recovery_report().clone();
                    recoveries.push(ShardRecovery {
                        shard,
                        quarantined_bytes: report.total_quarantined_bytes(),
                        report: Some(report),
                        error: None,
                        promoted_from: outcome.promoted_from,
                        replicas: outcome.replicas,
                    });
                    states.push(ShardState::Live(engine));
                    standbys.push(outcome.standbys);
                }
                None => {
                    let reason = outcome
                        .degraded_reason
                        .unwrap_or_else(|| "no recoverable image".to_string());
                    recoveries.push(ShardRecovery {
                        shard,
                        quarantined_bytes: 0,
                        report: None,
                        error: Some(reason.clone()),
                        promoted_from: None,
                        replicas: outcome.replicas,
                    });
                    states.push(ShardState::Degraded(reason));
                    standbys.push(Vec::new());
                }
            }
        }
        Ok((
            ShardedArchive {
                config,
                router,
                states,
                standbys,
            },
            recoveries,
        ))
    }

    /// Take the per-shard standby engines out of the archive (leaving it
    /// standby-less).  Write-path callers re-seed a live
    /// [`tks_replica::ReplicaSet`] from these engines' devices instead
    /// of serving reads from them.
    pub fn take_standbys(&mut self) -> Vec<Vec<(usize, Box<SearchEngine>)>> {
        let n = self.states.len();
        std::mem::replace(&mut self.standbys, (0..n).map(|_| Vec::new()).collect())
    }

    /// Per-shard standby counts (replica engines that will serve reads).
    pub fn standby_counts(&self) -> Vec<usize> {
        self.standbys.iter().map(Vec::len).collect()
    }

    /// The archive's per-shard engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Number of shards (healthy or degraded).
    pub fn shards(&self) -> u32 {
        self.router.shards()
    }

    /// The archive's router.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// One shard's engine (`None` when degraded or out of range).
    pub fn engine(&self, shard: u32) -> Option<&SearchEngine> {
        match self.states.get(shard as usize) {
            Some(ShardState::Live(e)) => Some(e.as_ref()),
            _ => None,
        }
    }

    /// Total documents across healthy shards.
    pub fn num_docs(&self) -> u64 {
        self.states
            .iter()
            .map(|s| match s {
                ShardState::Live(e) => e.num_docs(),
                ShardState::Degraded(_) => 0,
            })
            .sum()
    }

    /// Degraded shards, with reasons.
    pub fn degraded(&self) -> Vec<(u32, &str)> {
        self.states
            .iter()
            .enumerate()
            .filter_map(|(s, state)| match state {
                ShardState::Live(_) => None,
                ShardState::Degraded(reason) => Some((s as u32, reason.as_str())),
            })
            .collect()
    }

    /// Split the archive into its reader/writer service: a
    /// [`ShardedWriter`] owning one per-shard writer per healthy shard,
    /// and a [`ShardedSearcher`] over the matching snapshots.
    pub fn into_service(self) -> (ShardedWriter, ShardedSearcher) {
        let mut standbys = self.standbys;
        standbys.resize_with(self.states.len(), Vec::new);
        let mut readers = Vec::with_capacity(self.states.len());
        let slots = self
            .states
            .into_iter()
            .zip(standbys)
            .map(|(state, sbs)| match state {
                ShardState::Live(engine) => {
                    readers.push(
                        sbs.into_iter()
                            .map(|(_, e)| ReplicaReader::from_engine(*e))
                            .collect(),
                    );
                    WriterSlot::Live(tks_core::service(*engine).0)
                }
                ShardState::Degraded(reason) => {
                    readers.push(Vec::new());
                    WriterSlot::Degraded(reason)
                }
            })
            .collect();
        let writer = ShardedWriter::from_slots(self.router, slots).with_replica_readers(readers);
        let searcher = writer.searcher();
        (writer, searcher)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::shard_of;
    use tks_core::{MergeAssignment, Query};
    use tks_postings::Timestamp;

    fn config() -> EngineConfig {
        EngineConfig {
            block_size: 64,
            cache_bytes: 1 << 16,
            assignment: MergeAssignment::uniform(4),
            positional: true,
            ..Default::default()
        }
    }

    const CORPUS: &[(&str, u64)] = &[
        ("alpha beta gamma", 100),
        ("beta delta", 101),
        ("gamma delta epsilon alpha", 102),
        ("alpha zeta beta", 103),
        ("beta epsilon zeta gamma alpha", 104),
        ("delta zeta", 105),
        ("epsilon alpha beta", 106),
        ("gamma zeta delta", 107),
    ];

    /// Scatter-gathered boolean results must equal an unsharded engine's
    /// on the same corpus, modulo the id mapping.
    #[test]
    fn sharded_results_match_unsharded_reference() {
        let mut reference = SearchEngine::new(config()).unwrap();
        for &(text, ts) in CORPUS {
            reference.add_document(text, Timestamp(ts)).unwrap();
        }

        let (mut writer, _) = ShardedArchive::create(config(), 3).unwrap().into_service();
        // Remember where each corpus position landed so reference local
        // ids can be translated into expected global ids.
        let mut globals = Vec::new();
        for &(text, ts) in CORPUS {
            globals.push(writer.commit(text, Timestamp(ts)).unwrap());
        }
        let searcher = writer.searcher();
        assert_eq!(searcher.visible_docs(), CORPUS.len() as u64);

        for query in [
            Query::conjunctive("beta"),
            Query::conjunctive("alpha beta"),
            Query::conjunctive("delta zeta"),
            Query::phrase("beta gamma"),
            Query::time_range(Timestamp(101), Timestamp(105)),
        ] {
            let want: Vec<_> = reference
                .execute(&query)
                .unwrap()
                .hits
                .iter()
                .map(|h| globals[h.doc.0 as usize])
                .collect();
            let mut want_sorted = want.clone();
            want_sorted.sort_unstable_by_key(|d| d.0);
            let resp = searcher.execute(query.clone()).unwrap();
            assert_eq!(resp.docs(), want_sorted, "query {query:?}");
            assert!(resp.trusted);
            assert_eq!(resp.quarantined_bytes, 0);
            assert_eq!(resp.visible_docs, CORPUS.len() as u64);
            assert_eq!(resp.shards.len(), 3);
            assert!(resp.shards.iter().all(|s| s.consulted && s.trusted));
        }

        // Ranked disjunction: same hit *set* for a cutoff covering all
        // matches (scores are per-shard, so order may differ).
        let want: std::collections::BTreeSet<u64> = reference
            .execute(&Query::disjunctive("alpha epsilon", 10))
            .unwrap()
            .hits
            .iter()
            .map(|h| globals[h.doc.0 as usize].0)
            .collect();
        let resp = searcher
            .execute(Query::disjunctive("alpha epsilon", 10))
            .unwrap();
        let got: std::collections::BTreeSet<u64> = resp.hits.iter().map(|h| h.doc.0).collect();
        assert_eq!(got, want);
        // And top_k truncation holds after the cross-shard re-rank.
        let top2 = searcher
            .execute(Query::disjunctive("alpha epsilon", 2))
            .unwrap();
        assert_eq!(top2.hits.len(), 2);
    }

    #[test]
    fn batch_commit_routes_like_singles_and_keeps_input_order() {
        let (mut singles, _) = ShardedArchive::create(config(), 4).unwrap().into_service();
        let mut one_by_one = Vec::new();
        for &(text, ts) in CORPUS {
            one_by_one.push(singles.commit(text, Timestamp(ts)).unwrap());
        }

        let (mut batched, _) = ShardedArchive::create(config(), 4).unwrap().into_service();
        let ids = batched
            .commit_batch(CORPUS.iter().map(|&(t, ts)| (t, Timestamp(ts))))
            .unwrap();
        assert_eq!(ids, one_by_one, "batch routing must match single commits");
        assert_eq!(batched.committed_docs(), CORPUS.len() as u64);
        assert_eq!(
            batched.watermarks(),
            singles.watermarks(),
            "same per-shard distribution"
        );
        // Ids encode their shard.
        let router = *batched.router();
        for (i, &(text, _)) in CORPUS.iter().enumerate() {
            assert_eq!(shard_of(ids[i]), router.route_text(text));
        }
    }

    #[test]
    fn session_freezes_the_watermark_vector() {
        let (mut writer, searcher) = ShardedArchive::create(config(), 2).unwrap().into_service();
        for &(text, ts) in &CORPUS[..4] {
            writer.commit(text, Timestamp(ts)).unwrap();
        }
        let session = crate::session::QuerySession::open(&writer.searcher());
        let vector = session.watermarks().to_vec();
        let hits_before = session.execute(Query::conjunctive("beta")).unwrap().hits;
        for &(text, ts) in &CORPUS[4..] {
            writer.commit(text, Timestamp(ts)).unwrap();
        }
        assert_eq!(
            session.watermarks(),
            vector,
            "a session must freeze every shard"
        );
        assert_eq!(
            session.execute(Query::conjunctive("beta")).unwrap().hits,
            hits_before,
            "session reads are repeatable"
        );
        // The live searcher moved on.
        assert_eq!(searcher.visible_docs(), CORPUS.len() as u64);
    }

    /// A shard with interior damage (not a torn tail) must be isolated:
    /// recovery degrades it, the rest of the archive keeps serving with
    /// `trusted == true`, and responses name the degraded shard.
    #[test]
    fn interior_damage_isolates_one_shard_and_spares_the_rest() {
        let mut engines: Vec<SearchEngine> = (0..3)
            .map(|_| SearchEngine::new(config()).unwrap())
            .collect();
        for (i, &(text, ts)) in CORPUS.iter().enumerate() {
            engines[i % 3].add_document(text, Timestamp(ts)).unwrap();
        }
        // Tamper with shard 1's posting store: misaligned garbage
        // followed by a whole posting — interior damage, not a tail.
        let victim = &mut engines[1];
        let f = victim.list_store().fs().open("lists/0").unwrap();
        victim
            .list_store_mut()
            .fs_mut()
            .append(f, &[0xFF, 0xFF])
            .unwrap();
        let whole = tks_postings::encode_posting(tks_postings::Posting {
            doc: tks_postings::DocId(9),
            term_tag: 0,
            tf: 1,
        });
        let f = victim.list_store().fs().open("lists/0").unwrap();
        victim.list_store_mut().fs_mut().append(f, &whole).unwrap();

        let parts: Vec<EngineParts> = engines.into_iter().map(|e| e.into_parts()).collect();
        let (archive, recoveries) = ShardedArchive::recover(parts, config()).unwrap();
        assert_eq!(archive.degraded().len(), 1);
        assert_eq!(archive.degraded()[0].0, 1);
        assert!(recoveries[0].error.is_none());
        assert!(recoveries[1].error.is_some(), "shard 1 must be refused");
        assert!(recoveries[2].error.is_none());

        let (mut writer, searcher) = archive.into_service();
        let resp = searcher.execute(Query::conjunctive("beta")).unwrap();
        assert!(
            resp.trusted,
            "healthy shards' verdict must not be tainted by shard 1"
        );
        let degraded = resp.degraded();
        assert_eq!(degraded.len(), 1);
        assert_eq!(degraded[0].shard, 1);
        assert!(degraded[0].degraded.is_some());
        // Writes routed to the degraded shard are refused with a typed
        // error; other shards still accept.
        let mut hit_degraded = false;
        for i in 0..50 {
            let text = format!("omega record {i}");
            let ts = Timestamp(1_000 + i);
            match writer.commit(&text, ts) {
                Ok(_) => {}
                Err(ShardError::Degraded { shard, .. }) => {
                    assert_eq!(shard, 1);
                    hit_degraded = true;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(hit_degraded, "hash routing never touched the dead shard");
    }

    #[test]
    fn all_shards_degraded_is_a_typed_error() {
        let searcher = {
            let mut engine = SearchEngine::new(config()).unwrap();
            engine.add_document("alpha", Timestamp(1)).unwrap();
            let f = engine.list_store().fs().open("lists/0").unwrap();
            engine
                .list_store_mut()
                .fs_mut()
                .append(f, &[0xFF, 0xFF])
                .unwrap();
            let whole = tks_postings::encode_posting(tks_postings::Posting {
                doc: tks_postings::DocId(9),
                term_tag: 0,
                tf: 1,
            });
            let f = engine.list_store().fs().open("lists/0").unwrap();
            engine.list_store_mut().fs_mut().append(f, &whole).unwrap();
            let (archive, _) =
                ShardedArchive::recover(vec![engine.into_parts()], config()).unwrap();
            archive.into_service().1
        };
        match searcher.execute(Query::conjunctive("alpha")) {
            Err(ShardError::NoHealthyShards) => {}
            other => panic!("expected NoHealthyShards, got {other:?}"),
        }
    }
}
