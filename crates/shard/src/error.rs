//! The sharded layer's error taxonomy.
//!
//! Per-shard failures carry the shard id so an investigator can tell
//! *which* archive misbehaved; whole-archive failures (`NoHealthyShards`)
//! are distinct from per-shard ones because they mean the query had no
//! trustworthy data source at all.

use tks_core::SearchError;

/// Errors surfaced by the sharded engine.
#[derive(Debug)]
pub enum ShardError {
    /// The archive could not be configured (shard count out of range,
    /// invalid per-shard engine configuration, …).
    Config(String),
    /// A caller addressed a shard that does not exist.
    UnknownShard {
        /// The shard the caller asked for.
        shard: u32,
        /// How many shards the archive has.
        shards: u32,
    },
    /// The shard is in the degraded state: its recovery failed and it
    /// serves neither reads nor writes until re-provisioned.
    Degraded {
        /// The degraded shard.
        shard: u32,
        /// Why recovery refused it (the typed error, rendered).
        reason: String,
    },
    /// A per-shard engine operation failed; the underlying typed error is
    /// preserved as the source.
    Engine {
        /// The shard whose engine failed.
        shard: u32,
        /// The engine's own error.
        source: SearchError,
    },
    /// Every shard of the archive is degraded — there is no trustworthy
    /// data source left to consult.
    NoHealthyShards,
    /// An internal invariant of the sharded layer failed (never expected;
    /// indicates a bug, not bad data).
    Internal(String),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Config(msg) => write!(f, "sharded archive configuration: {msg}"),
            ShardError::UnknownShard { shard, shards } => {
                write!(f, "shard {shard} does not exist (archive has {shards})")
            }
            ShardError::Degraded { shard, reason } => {
                write!(f, "shard {shard} is degraded: {reason}")
            }
            ShardError::Engine { shard, source } => write!(f, "shard {shard}: {source}"),
            ShardError::NoHealthyShards => write!(f, "every shard is degraded"),
            ShardError::Internal(msg) => write!(f, "sharding invariant failure: {msg}"),
        }
    }
}

impl std::error::Error for ShardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShardError::Engine { source, .. } => Some(source),
            _ => None,
        }
    }
}
