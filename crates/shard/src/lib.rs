//! # `tks-shard` — hash-partitioned WORM shards with scatter-gather queries
//!
//! The paper's single-archive design caps ingest and query throughput at
//! one WORM device's bandwidth.  This crate scales the archive *without
//! weakening its trust story* by running `N` fully independent
//! [`SearchEngine`](tks_core::SearchEngine)s — each with its own WORM
//! devices, merged lists, caches, and recovery state — behind one
//! sharded service:
//!
//! * [`ShardRouter`] — a stable FNV-1a hash of the document key picks the
//!   shard, and a **global document-id namespace** encodes
//!   `(shard_id, local_id)` in one [`DocId`](tks_postings::DocId) so
//!   merged responses stay meaningful;
//! * [`ShardedWriter`] — routes `commit`/`commit_batch` to per-shard
//!   [`IndexWriter`](tks_core::IndexWriter)s, committing shards in
//!   parallel with per-shard torn-tail accounting
//!   ([`ShardedBatchError`]);
//! * [`ShardedSearcher`] — scatter-gathers
//!   [`Query`](tks_core::Query) execution across per-shard
//!   [`Searcher`](tks_core::Searcher) snapshots and merges the responses:
//!   result union in global-id order (ranked queries re-rank across
//!   shards), summed I/O and decoded-cache statistics, `trusted` = AND
//!   over the shards actually consulted, quarantined bytes reported per
//!   shard and in aggregate;
//! * [`ShardedArchive`] — per-shard crash recovery that **isolates** a
//!   dead or tampered shard into an explicit degraded state instead of
//!   failing the whole archive: queries keep serving from healthy shards
//!   (their `trusted` verdict is unaffected) while every response names
//!   the shards it could not consult.
//!
//! Everything here goes through the per-shard service API
//! (`tks_core::service`); `cargo xtask audit` rule `shard-isolation`
//! denies direct storage-layer access (`WormFs`, `ListStore`, …) from
//! this crate, so a shard's WORM discipline cannot be bypassed from the
//! routing layer.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod archive;
pub mod error;
pub mod router;
pub mod service;
pub mod session;

pub use archive::{ReplicatedShardParts, ShardRecovery, ShardedArchive};
pub use error::ShardError;
pub use router::{local_of, shard_of, ShardRouter, MAX_SHARDS, SHARD_ID_SHIFT};
pub use service::{
    DegradedShard, ReplicaReader, ShardBatchFailure, ShardStatus, ShardedBatchError,
    ShardedResponse, ShardedSearcher, ShardedWriter,
};
pub use session::QuerySession;
