//! Stable document routing and the global document-id namespace.
//!
//! Routing must be a pure function of the document key: re-opening an
//! archive (or recovering it after a crash) must send the same keys to
//! the same shards forever, because WORM shards cannot be rebalanced —
//! committed postings are immutable.  FNV-1a over the key bytes is
//! stable across processes and platforms and has no seed to lose.
//!
//! The global namespace packs `(shard_id, local_id)` into one
//! [`DocId`]: the shard in the top [`SHARD_ID_SHIFT`]-shifted 16 bits,
//! the shard-local document ordinal below.  Local ids stay below `2^32`
//! (the engine's commit-time index packs them alongside a timestamp), so
//! the encodings can never collide; shard 0's global ids equal its local
//! ids, which keeps single-shard archives bit-compatible with the
//! unsharded engine.

use crate::error::ShardError;
use tks_postings::DocId;

/// Bit position of the shard id inside a global [`DocId`].
pub const SHARD_ID_SHIFT: u32 = 48;

/// Maximum shard count: the global namespace reserves 16 bits.
pub const MAX_SHARDS: u32 = 1 << 16;

const LOCAL_MASK: u64 = (1u64 << SHARD_ID_SHIFT) - 1;

/// FNV-1a 64-bit: small, dependency-free, stable across runs.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Shard id encoded in a global [`DocId`].
pub fn shard_of(global: DocId) -> u32 {
    (global.0 >> SHARD_ID_SHIFT) as u32
}

/// Shard-local [`DocId`] encoded in a global one.
pub fn local_of(global: DocId) -> DocId {
    DocId(global.0 & LOCAL_MASK)
}

/// Stable hash router over a fixed shard count.
///
/// The shard count is part of the archive's identity: opening an archive
/// with a different count would route the same keys elsewhere, so the
/// count is persisted with the archive layout and validated on open.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    shards: u32,
}

impl ShardRouter {
    /// A router over `shards` shards (`1..=MAX_SHARDS`).
    pub fn new(shards: u32) -> Result<Self, ShardError> {
        if shards == 0 || shards > MAX_SHARDS {
            return Err(ShardError::Config(format!(
                "shard count must be in 1..={MAX_SHARDS}, got {shards}"
            )));
        }
        Ok(ShardRouter { shards })
    }

    /// Number of shards this router distributes over.
    pub fn shards(&self) -> u32 {
        self.shards
    }

    /// Route an opaque document key to its shard.
    pub fn route_key(&self, key: &[u8]) -> u32 {
        (fnv1a(key) % self.shards as u64) as u32
    }

    /// Route a document by its text (the key when no external id exists).
    pub fn route_text(&self, text: &str) -> u32 {
        self.route_key(text.as_bytes())
    }

    /// Encode a shard-local id into the global namespace.
    pub fn global_id(&self, shard: u32, local: DocId) -> Result<DocId, ShardError> {
        if shard >= self.shards {
            return Err(ShardError::UnknownShard {
                shard,
                shards: self.shards,
            });
        }
        if local.0 > LOCAL_MASK {
            return Err(ShardError::Internal(format!(
                "local document id {} exceeds the {SHARD_ID_SHIFT}-bit namespace",
                local.0
            )));
        }
        Ok(DocId(((shard as u64) << SHARD_ID_SHIFT) | local.0))
    }

    /// Decode a global id into `(shard, local id)`, validating the shard.
    pub fn split_id(&self, global: DocId) -> Result<(u32, DocId), ShardError> {
        let shard = shard_of(global);
        if shard >= self.shards {
            return Err(ShardError::UnknownShard {
                shard,
                shards: self.shards,
            });
        }
        Ok((shard, local_of(global)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_is_stable_and_in_range() {
        let r = ShardRouter::new(4).unwrap();
        for i in 0..1000u32 {
            let key = format!("doc {i} body text");
            let s = r.route_text(&key);
            assert!(s < 4);
            assert_eq!(s, r.route_text(&key), "routing must be deterministic");
        }
    }

    #[test]
    fn routing_spreads_across_shards() {
        let r = ShardRouter::new(8).unwrap();
        let mut seen = [0u32; 8];
        for i in 0..4000u32 {
            seen[r.route_text(&format!("record {i}")) as usize] += 1;
        }
        for (s, &n) in seen.iter().enumerate() {
            assert!(n > 200, "shard {s} starved: {seen:?}");
        }
    }

    #[test]
    fn global_ids_round_trip_and_shard_zero_is_identity() {
        let r = ShardRouter::new(16).unwrap();
        for shard in 0..16u32 {
            for local in [0u64, 1, 77, (1 << 32) - 1] {
                let g = r.global_id(shard, DocId(local)).unwrap();
                assert_eq!(r.split_id(g).unwrap(), (shard, DocId(local)));
                assert_eq!(shard_of(g), shard);
                assert_eq!(local_of(g), DocId(local));
            }
        }
        assert_eq!(r.global_id(0, DocId(42)).unwrap(), DocId(42));
    }

    #[test]
    fn invalid_counts_and_shards_are_typed_errors() {
        assert!(ShardRouter::new(0).is_err());
        assert!(ShardRouter::new(MAX_SHARDS + 1).is_err());
        let r = ShardRouter::new(2).unwrap();
        assert!(r.global_id(2, DocId(0)).is_err());
        assert!(r.split_id(DocId(5 << SHARD_ID_SHIFT)).is_err());
        assert!(r.global_id(0, DocId(1 << SHARD_ID_SHIFT)).is_err());
    }
}
