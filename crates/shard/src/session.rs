//! Snapshot-scoped query sessions over the sharded archive.
//!
//! A [`QuerySession`] unifies the snapshot/pin lifecycle behind one
//! handle: opening a session pins the live [`ShardedSearcher`] at a
//! consistent per-shard watermark vector, every query the session
//! executes sees exactly that frozen prefix, and [`refresh`]
//! re-pins at the current commit frontier when the caller wants to
//! observe newer documents.  Long-lived consumers (server connections,
//! interactive CLI loops) hold one session instead of re-snapshotting
//! per request, which keeps repeated reads repeatable *and* avoids the
//! per-query cost of deriving a fresh watermark vector.
//!
//! [`refresh`]: QuerySession::refresh

use tks_core::Query;

use crate::error::ShardError;
use crate::service::{DegradedShard, ShardedResponse, ShardedSearcher};

/// A pinned, repeatable-read view of the sharded archive.
///
/// The session owns two searchers: the **live** handle it was opened
/// from (whose snapshots advance as writers commit) and a **pinned**
/// derivative frozen at the watermark vector observed at open (or last
/// [`refresh`](Self::refresh)).  All query execution goes through the
/// pinned handle, so two identical queries inside one session always
/// agree even while ingest continues underneath.
///
/// ```no_run
/// # use tks_shard::{ShardedArchive, QuerySession};
/// # use tks_core::{EngineConfig, Query};
/// let (_writer, searcher) = ShardedArchive::create(EngineConfig::default(), 2)
///     .expect("create")
///     .into_service();
/// let mut session = QuerySession::open(&searcher);
/// let q = Query::disjunctive("audit", 10);
/// let first = session.execute(q.clone());
/// let again = session.execute(q); // same snapshot, same answer
/// session.refresh();              // advance to the current commit frontier
/// ```
pub struct QuerySession {
    live: ShardedSearcher,
    pinned: ShardedSearcher,
    watermarks: Vec<u64>,
}

impl QuerySession {
    /// Open a session pinned at `searcher`'s current watermark vector.
    pub fn open(searcher: &ShardedSearcher) -> QuerySession {
        let pinned = searcher.pin();
        let watermarks = pinned.watermarks();
        QuerySession {
            live: searcher.clone(),
            pinned,
            watermarks,
        }
    }

    /// Execute one query against the session's pinned snapshot.
    pub fn execute(&self, query: Query) -> Result<ShardedResponse, ShardError> {
        self.pinned.execute(query)
    }

    /// Execute a batch against the same pinned snapshot, preserving
    /// order.  Each query still scatter-gathers across shards in
    /// parallel internally; per-query failures are reported in place so
    /// one degraded term cannot hide the rest of the batch.
    pub fn execute_many(&self, queries: Vec<Query>) -> Vec<Result<ShardedResponse, ShardError>> {
        queries.into_iter().map(|q| self.execute(q)).collect()
    }

    /// Re-pin at the live searcher's current commit frontier.
    ///
    /// Returns the new watermark vector.  Queries issued after a
    /// refresh see every document committed before the refresh; queries
    /// issued before it are unaffected.
    pub fn refresh(&mut self) -> &[u64] {
        self.pinned = self.live.pin();
        self.watermarks = self.pinned.watermarks();
        &self.watermarks
    }

    /// The per-shard watermark vector this session is pinned at
    /// (0 for degraded shards).
    pub fn watermarks(&self) -> &[u64] {
        &self.watermarks
    }

    /// Total documents visible to this session (sum of watermarks).
    pub fn visible_docs(&self) -> u64 {
        self.watermarks.iter().sum()
    }

    /// Shards this session cannot consult.
    pub fn degraded(&self) -> &[DegradedShard] {
        self.pinned.degraded()
    }

    /// The pinned searcher backing this session, for callers that need
    /// the lower-level API (e.g. per-shard inspection).
    pub fn searcher(&self) -> &ShardedSearcher {
        &self.pinned
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::ShardedArchive;
    use tks_core::EngineConfig;
    use tks_postings::Timestamp;

    fn query(text: &str) -> Query {
        Query::disjunctive(text, 100)
    }

    #[test]
    fn session_is_repeatable_while_writer_commits() {
        let (mut writer, searcher) = ShardedArchive::create(EngineConfig::default(), 2)
            .expect("create")
            .into_service();
        for i in 0..8 {
            writer
                .commit(&format!("alpha beta k{i}"), Timestamp(i))
                .expect("commit");
        }
        let mut session = QuerySession::open(&searcher);
        let before = session.execute(query("alpha")).expect("query");
        assert_eq!(before.hits.len(), 8);
        assert_eq!(session.visible_docs(), 8);

        for i in 8..12 {
            writer
                .commit(&format!("alpha gamma k{i}"), Timestamp(i))
                .expect("commit");
        }
        // Pinned: still sees exactly the snapshot from open().
        let during = session.execute(query("alpha")).expect("query");
        assert_eq!(during.hits.len(), 8, "session must be repeatable");

        // Refresh advances to the new frontier.
        let marks: Vec<u64> = session.refresh().to_vec();
        assert_eq!(marks.iter().sum::<u64>(), 12);
        let after = session.execute(query("alpha")).expect("query");
        assert_eq!(after.hits.len(), 12);
    }

    #[test]
    fn execute_many_preserves_order_on_one_snapshot() {
        let (mut writer, searcher) = ShardedArchive::create(EngineConfig::default(), 3)
            .expect("create")
            .into_service();
        writer.commit("red green", Timestamp(1)).expect("commit");
        writer.commit("green blue", Timestamp(2)).expect("commit");
        let session = QuerySession::open(&searcher);
        let out = session.execute_many(vec![query("red"), query("green"), query("blue")]);
        assert_eq!(out.len(), 3);
        let counts: Vec<usize> = out
            .into_iter()
            .map(|r| r.expect("query").hits.len())
            .collect();
        assert_eq!(counts, vec![1, 2, 1]);
    }

    #[test]
    fn session_reports_degraded_shards() {
        let (_writer, searcher) = ShardedArchive::create(EngineConfig::default(), 2)
            .expect("create")
            .into_service();
        let session = QuerySession::open(&searcher);
        assert!(session.degraded().is_empty());
        assert_eq!(session.watermarks(), &[0, 0]);
    }
}
