//! The sharded reader/writer split: parallel per-shard commits and
//! scatter-gather queries over per-shard snapshots.
//!
//! A [`ShardedWriter`] owns one [`IndexWriter`] per healthy shard and
//! routes every commit through the [`ShardRouter`]; batch commits fan
//! out across shards in parallel, and a failure on one shard never
//! blocks or poisons the others — [`ShardedBatchError`] reports, per
//! shard, what committed and what tore.
//!
//! A [`ShardedSearcher`] holds one [`Searcher`] snapshot per healthy
//! shard.  [`execute`](ShardedSearcher::execute) scatters the query,
//! gathers per-shard [`QueryResponse`]s, and merges them into a
//! [`ShardedResponse`]: hits in the global id namespace (ranked queries
//! re-rank across shards; boolean shapes stay in ascending global-id
//! order), summed I/O, `trusted` = AND over the shards consulted, and
//! quarantined bytes both per shard and in aggregate.  Degraded shards
//! are never silently skipped: every response lists them.
//!
//! Timestamps: each shard's engine requires non-decreasing commit
//! timestamps.  Routing splits one input stream into per-shard
//! subsequences, so feeding the sharded writer a globally non-decreasing
//! stream preserves the invariant on every shard.

use crate::error::ShardError;
use crate::router::ShardRouter;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use tks_core::engine::SearchHit;
use tks_core::{IndexWriter, Query, QueryResponse, SearchEngine, SearchError, Searcher};
use tks_postings::{DecodedCacheStats, DocId, TermId, Timestamp};
use tks_worm::{ChainHead, IoStats};

/// One scatter unit: execute `query` on `searcher` (shard `sid`) and
/// report back.
struct ScatterTask {
    sid: u32,
    query: Query,
    searcher: Searcher,
    reply: mpsc::Sender<(u32, Result<QueryResponse, SearchError>)>,
}

/// A persistent scatter-gather worker pool, shared by every searcher of
/// one archive (clones and pins included), so per-query fan-out costs a
/// channel send instead of a thread spawn.
///
/// Sized to `min(shards, available_parallelism) - 1`: the calling
/// thread always executes one shard itself, so on a single-core host
/// the pool is empty and queries run sequentially with zero scatter
/// overhead.  Workers exit when the pool (and with it the sender side)
/// is dropped.
struct ScatterPool {
    tx: Option<mpsc::Sender<ScatterTask>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ScatterPool {
    fn new(shards: usize) -> ScatterPool {
        let parallelism = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1);
        let workers = shards.min(parallelism).saturating_sub(1);
        let (tx, rx) = mpsc::channel::<ScatterTask>();
        let rx = Arc::new(Mutex::new(rx));
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let rx = Arc::clone(&rx);
            let spawned = std::thread::Builder::new()
                .name("tks-shard-scatter".to_string())
                .spawn(move || loop {
                    let task = {
                        let guard = rx.lock().unwrap_or_else(|p| p.into_inner());
                        guard.recv()
                    };
                    let Ok(t) = task else { break };
                    let outcome = t.searcher.execute(t.query);
                    let _ = t.reply.send((t.sid, outcome));
                });
            // A host that cannot spawn a worker simply gets a smaller
            // pool; queries still complete on the calling thread.
            if let Ok(h) = spawned {
                handles.push(h);
            }
        }
        ScatterPool {
            tx: Some(tx),
            handles,
        }
    }

    fn workers(&self) -> usize {
        self.handles.len()
    }

    /// Queue a task; `false` means the pool is unavailable and the
    /// caller should execute inline.
    fn submit(&self, task: ScatterTask) -> bool {
        match &self.tx {
            Some(tx) => tx.send(task).is_ok(),
            None => false,
        }
    }
}

impl Drop for ScatterPool {
    fn drop(&mut self) {
        self.tx.take(); // closes the channel: workers drain and exit
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// A verified standby replica serving reads for one shard.
///
/// The reader holds a **pinned** snapshot of a replica engine whose
/// recovery-time trust state (watermark, chain head, quarantine count)
/// exactly matched the shard's primary.  It is only consulted while the
/// primary's visible watermark still equals the replica's — once the
/// primary commits past the snapshot, the replica silently drops out of
/// rotation rather than serve a stale (and chain-head-mismatched) view.
#[derive(Clone)]
pub struct ReplicaReader {
    searcher: Searcher,
    watermark: u64,
}

impl ReplicaReader {
    /// Wrap a recovered standby engine in a pinned read snapshot.
    pub(crate) fn from_engine(engine: SearchEngine) -> ReplicaReader {
        let (_writer, searcher) = tks_core::service(engine);
        let pinned = searcher.pin();
        ReplicaReader {
            watermark: pinned.visible_docs(),
            searcher: pinned,
        }
    }

    /// The snapshot watermark this replica serves at.
    pub fn watermark(&self) -> u64 {
        self.watermark
    }
}

/// A shard the archive can no longer serve: recovery refused it.
#[derive(Debug, Clone)]
pub struct DegradedShard {
    /// The shard id.
    pub shard: u32,
    /// The recovery error, rendered.
    pub reason: String,
}

/// One shard's writer slot: live, or explicitly out of service.
pub(crate) enum WriterSlot {
    Live(IndexWriter),
    Degraded(String),
}

/// Routes commits to per-shard [`IndexWriter`]s.
pub struct ShardedWriter {
    router: ShardRouter,
    slots: Vec<WriterSlot>,
    pool: Arc<ScatterPool>,
    replicas: Arc<Vec<Vec<ReplicaReader>>>,
}

/// One shard's contribution to a failed batch commit.
#[derive(Debug)]
pub struct ShardBatchFailure {
    /// The shard that failed.
    pub shard: u32,
    /// Bytes the failing document tore onto that shard's WORM devices
    /// before the error (dead weight behind the commit point).
    pub torn_tail_bytes: u64,
    /// Why that shard stopped.
    pub error: ShardError,
}

/// A sharded batch commit that failed on at least one shard.
///
/// Unlike the single-engine
/// [`BatchError`](tks_core::service::BatchError), this is not fail-stop
/// for the archive: shards are independent, so every healthy shard's
/// slice of the batch still committed and is published.  `committed`
/// holds the global ids that landed, in input order; `failures` holds
/// one entry per shard that stopped, with its torn-tail accounting.
#[derive(Debug)]
pub struct ShardedBatchError {
    /// Global ids of the documents that did commit, in input order.
    pub committed: Vec<DocId>,
    /// Per-shard failures (sorted by shard id).
    pub failures: Vec<ShardBatchFailure>,
}

impl std::fmt::Display for ShardedBatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sharded batch stopped on {} shard(s) after {} documents committed:",
            self.failures.len(),
            self.committed.len(),
        )?;
        for fail in &self.failures {
            write!(
                f,
                " [shard {}: {} ({} torn bytes)]",
                fail.shard, fail.error, fail.torn_tail_bytes
            )?;
        }
        Ok(())
    }
}

impl std::error::Error for ShardedBatchError {}

impl ShardedWriter {
    pub(crate) fn from_slots(router: ShardRouter, slots: Vec<WriterSlot>) -> Self {
        let pool = Arc::new(ScatterPool::new(slots.len()));
        ShardedWriter {
            router,
            slots,
            pool,
            replicas: Arc::new(Vec::new()),
        }
    }

    /// Attach per-shard standby readers (indexed by shard id) for
    /// searchers derived from this writer to round-robin over.
    pub(crate) fn with_replica_readers(mut self, readers: Vec<Vec<ReplicaReader>>) -> Self {
        self.replicas = Arc::new(readers);
        self
    }

    /// The router (for callers that need to know a document's shard
    /// before committing, e.g. to colocate related records).
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Number of shards (healthy or degraded).
    pub fn shards(&self) -> u32 {
        self.router.shards()
    }

    /// Degraded shards, with reasons.
    pub fn degraded(&self) -> Vec<DegradedShard> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(s, slot)| match slot {
                WriterSlot::Live(_) => None,
                WriterSlot::Degraded(reason) => Some(DegradedShard {
                    shard: s as u32,
                    reason: reason.clone(),
                }),
            })
            .collect()
    }

    fn live_mut(&mut self, shard: u32) -> Result<&mut IndexWriter, ShardError> {
        let shards = self.router.shards();
        match self.slots.get_mut(shard as usize) {
            Some(WriterSlot::Live(w)) => Ok(w),
            Some(WriterSlot::Degraded(reason)) => Err(ShardError::Degraded {
                shard,
                reason: reason.clone(),
            }),
            None => Err(ShardError::UnknownShard { shard, shards }),
        }
    }

    /// Tokenize, route by text hash, commit to the owning shard, and
    /// return the document's **global** id.
    pub fn commit(&mut self, text: &str, ts: Timestamp) -> Result<DocId, ShardError> {
        self.commit_to(self.router.route_text(text), text, ts)
    }

    /// Commit to an explicit shard (callers that route by an external
    /// key should pass `router().route_key(key)`).
    pub fn commit_to(
        &mut self,
        shard: u32,
        text: &str,
        ts: Timestamp,
    ) -> Result<DocId, ShardError> {
        let router = self.router;
        let local = self
            .live_mut(shard)?
            .commit(text, ts)
            .map_err(|source| ShardError::Engine { shard, source })?;
        router.global_id(shard, local)
    }

    /// Commit a pre-tokenized document to an explicit shard.
    pub fn commit_terms_to(
        &mut self,
        shard: u32,
        terms: &[(TermId, u32)],
        ts: Timestamp,
        raw_text: Option<&str>,
    ) -> Result<DocId, ShardError> {
        let router = self.router;
        let local = self
            .live_mut(shard)?
            .commit_terms(terms, ts, raw_text)
            .map_err(|source| ShardError::Engine { shard, source })?;
        router.global_id(shard, local)
    }

    /// Route a batch across shards and commit the per-shard slices **in
    /// parallel**.  On success the returned global ids are in input
    /// order.  On failure, shards are independent: every shard that did
    /// not fail has still committed (and published) its whole slice —
    /// see [`ShardedBatchError`].
    pub fn commit_batch<'a, I>(&mut self, docs: I) -> Result<Vec<DocId>, ShardedBatchError>
    where
        I: IntoIterator<Item = (&'a str, Timestamp)>,
    {
        let router = self.router;
        let n = router.shards() as usize;
        let mut buckets: Vec<Vec<BatchItem<'a>>> = (0..n).map(|_| Vec::new()).collect();
        for (i, (text, ts)) in docs.into_iter().enumerate() {
            let s = router.route_text(text) as usize;
            if let Some(bucket) = buckets.get_mut(s) {
                bucket.push((i, text, ts));
            }
        }

        // Fan out across at most `available_parallelism` scoped threads
        // (shard slices are chunked; the calling thread takes the first
        // chunk).  On a single core no thread is spawned at all — the
        // slices commit sequentially with zero scatter overhead.
        let mut work: Vec<ShardWork<'a, '_>> = self
            .slots
            .iter_mut()
            .enumerate()
            .zip(buckets)
            .filter(|(_, bucket)| !bucket.is_empty())
            .map(|((sid, slot), bucket)| (sid as u32, slot, bucket))
            .collect();
        if work.is_empty() {
            return Ok(Vec::new());
        }
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(work.len())
            .max(1);
        let chunk = work.len().div_ceil(workers);
        let mut outcomes: Vec<ShardOutcome> = Vec::new();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            let mut own: Option<Vec<ShardWork<'a, '_>>> = None;
            while !work.is_empty() {
                let tail = work.split_off(chunk.min(work.len()));
                let batch = std::mem::replace(&mut work, tail);
                if own.is_none() {
                    own = Some(batch);
                } else {
                    handles.push(scope.spawn(move || {
                        batch
                            .into_iter()
                            .map(|(sid, slot, bucket)| commit_bucket(router, sid, slot, bucket))
                            .collect::<Vec<_>>()
                    }));
                }
            }
            if let Some(batch) = own {
                outcomes.extend(
                    batch
                        .into_iter()
                        .map(|(sid, slot, bucket)| commit_bucket(router, sid, slot, bucket)),
                );
            }
            for h in handles {
                match h.join() {
                    Ok(batch_outcomes) => outcomes.extend(batch_outcomes),
                    Err(_) => outcomes.push((
                        Vec::new(),
                        Some(ShardBatchFailure {
                            shard: u32::MAX,
                            torn_tail_bytes: 0,
                            error: ShardError::Internal(
                                "a shard commit thread panicked".to_string(),
                            ),
                        }),
                    )),
                }
            }
        });

        let mut committed: Vec<(usize, DocId)> = Vec::new();
        let mut failures: Vec<ShardBatchFailure> = Vec::new();
        for (ids, failure) in outcomes {
            committed.extend(ids);
            failures.extend(failure);
        }
        committed.sort_unstable_by_key(|&(i, _)| i);
        let committed: Vec<DocId> = committed.into_iter().map(|(_, d)| d).collect();
        if failures.is_empty() {
            Ok(committed)
        } else {
            failures.sort_by_key(|f| f.shard);
            Err(ShardedBatchError {
                committed,
                failures,
            })
        }
    }

    /// Total documents committed across live shards (degraded shards'
    /// documents are unreachable and not counted).
    pub fn committed_docs(&self) -> u64 {
        self.watermarks().iter().sum()
    }

    /// Per-shard committed-document watermarks (0 for degraded shards).
    pub fn watermarks(&self) -> Vec<u64> {
        self.slots
            .iter()
            .map(|slot| match slot {
                WriterSlot::Live(w) => w.committed_docs(),
                WriterSlot::Degraded(_) => 0,
            })
            .collect()
    }

    /// A sharded searcher over the current per-shard snapshots.
    pub fn searcher(&self) -> ShardedSearcher {
        let degraded: Vec<DegradedShard> = self.degraded();
        ShardedSearcher {
            router: self.router,
            slots: self
                .slots
                .iter()
                .map(|slot| match slot {
                    WriterSlot::Live(w) => Some(w.searcher()),
                    WriterSlot::Degraded(_) => None,
                })
                .collect(),
            degraded: degraded.into(),
            pool: Arc::clone(&self.pool),
            replicas: Arc::clone(&self.replicas),
            rr: Arc::new(AtomicUsize::new(0)),
        }
    }

    /// Run `f` against one shard's engine (maintenance hooks, fault
    /// injection in tests).  The shard's searchers see the result.
    pub fn with_engine<R>(
        &mut self,
        shard: u32,
        f: impl FnOnce(&mut SearchEngine) -> R,
    ) -> Result<R, ShardError> {
        Ok(self.live_mut(shard)?.with_engine(f))
    }

    /// Tear the service down into per-shard engines (`None` for degraded
    /// shards), for persistence.  Fails like
    /// [`IndexWriter::try_into_engine`] if any shard still has other
    /// live handles; the writer is returned intact.
    // audit:allow(error-taxonomy) — the Err payload is the writer itself, handed back.
    pub fn try_into_engines(self) -> Result<Vec<Option<SearchEngine>>, ShardedWriter> {
        // The engine is boxed so a slot holding only a degraded reason
        // does not pay an engine-sized variant.
        enum Got {
            Engine(Box<SearchEngine>),
            Writer(IndexWriter),
            Degraded(String),
        }
        let router = self.router;
        let pool = self.pool;
        let replicas = self.replicas;
        let mut failed = false;
        let got: Vec<Got> = self
            .slots
            .into_iter()
            .map(|slot| match slot {
                WriterSlot::Live(w) => match w.try_into_engine() {
                    Ok(e) => Got::Engine(Box::new(e)),
                    Err(w) => {
                        failed = true;
                        Got::Writer(w)
                    }
                },
                WriterSlot::Degraded(reason) => Got::Degraded(reason),
            })
            .collect();
        if failed {
            // Hand the writer back: re-wrap any engines already torn
            // down (their watermark re-derives from the document count).
            let slots = got
                .into_iter()
                .map(|g| match g {
                    Got::Engine(e) => WriterSlot::Live(tks_core::service(*e).0),
                    Got::Writer(w) => WriterSlot::Live(w),
                    Got::Degraded(reason) => WriterSlot::Degraded(reason),
                })
                .collect();
            return Err(ShardedWriter {
                router,
                slots,
                pool,
                replicas,
            });
        }
        Ok(got
            .into_iter()
            .map(|g| match g {
                Got::Engine(e) => Some(*e),
                _ => None,
            })
            .collect())
    }
}

/// One routed document in a shard's batch slice: `(input index, text,
/// timestamp)`.
type BatchItem<'a> = (usize, &'a str, Timestamp);

/// One shard's unit of parallel batch-commit work.
type ShardWork<'a, 'w> = (u32, &'w mut WriterSlot, Vec<BatchItem<'a>>);

/// One shard's batch outcome: committed `(input index, global id)`
/// pairs plus the shard's failure, if any.
type ShardOutcome = (Vec<(usize, DocId)>, Option<ShardBatchFailure>);

fn commit_bucket(
    router: ShardRouter,
    shard: u32,
    slot: &mut WriterSlot,
    bucket: Vec<(usize, &str, Timestamp)>,
) -> (Vec<(usize, DocId)>, Option<ShardBatchFailure>) {
    let writer = match slot {
        WriterSlot::Live(w) => w,
        WriterSlot::Degraded(reason) => {
            return (
                Vec::new(),
                Some(ShardBatchFailure {
                    shard,
                    torn_tail_bytes: 0,
                    error: ShardError::Degraded {
                        shard,
                        reason: reason.clone(),
                    },
                }),
            )
        }
    };
    let indices: Vec<usize> = bucket.iter().map(|&(i, _, _)| i).collect();
    let (locals, failure) = match writer.commit_batch(bucket.iter().map(|&(_, t, ts)| (t, ts))) {
        Ok(locals) => (locals, None),
        Err(batch) => (
            batch.committed,
            Some(ShardBatchFailure {
                shard,
                torn_tail_bytes: batch.torn_tail_bytes,
                error: ShardError::Engine {
                    shard,
                    source: batch.error,
                },
            }),
        ),
    };
    let mut out = Vec::with_capacity(locals.len());
    for (&i, local) in indices.iter().zip(locals) {
        match router.global_id(shard, local) {
            Ok(g) => out.push((i, g)),
            Err(e) => {
                return (
                    out,
                    Some(ShardBatchFailure {
                        shard,
                        torn_tail_bytes: 0,
                        error: e,
                    }),
                )
            }
        }
    }
    (out, failure)
}

/// One shard's slice of a merged [`ShardedResponse`].
#[derive(Debug, Clone)]
pub struct ShardStatus {
    /// The shard id.
    pub shard: u32,
    /// Whether this execution consulted the shard (false ⇔ degraded).
    pub consulted: bool,
    /// The shard's snapshot watermark (0 if not consulted).
    pub visible_docs: u64,
    /// The shard's own trust verdict (false if not consulted).
    pub trusted: bool,
    /// Torn-commit residue quarantined on this shard, in bytes.
    pub quarantined_bytes: u64,
    /// The shard's commit-chain head at its snapshot watermark (genesis
    /// if not consulted).  A client holding per-shard heads out-of-band
    /// can verify each shard's slice of the response independently.
    pub chain_head: ChainHead,
    /// Why the shard was not consulted, when degraded.
    pub degraded: Option<String>,
}

/// A merged response from scatter-gathering one [`Query`].
///
/// Hits carry **global** document ids; ranked (disjunctive) queries are
/// re-ranked across shards and re-truncated to `top_k`, boolean shapes
/// are merged in ascending global-id order.  `trusted` is the AND over
/// the shards actually consulted — a degraded shard withholds data but
/// does not manufacture tamper evidence against the healthy shards;
/// `shards` names every shard and what it contributed, so an
/// investigator always sees *which* part of the archive answered.
#[derive(Debug, Clone)]
pub struct ShardedResponse {
    /// Matching documents under global ids.
    pub hits: Vec<SearchHit>,
    /// Total distinct index blocks read across shards.
    pub blocks_read: u64,
    /// Total index blocks skipped by block-max early termination across
    /// shards (consulted via cache-resident summaries, never read — not
    /// part of `blocks_read`).
    pub blocks_skipped: u64,
    /// Summed per-query I/O across shards.
    pub io: IoStats,
    /// Summed snapshot watermarks of the consulted shards.
    pub visible_docs: u64,
    /// AND of the consulted shards' trust verdicts.
    pub trusted: bool,
    /// Total quarantined torn-commit residue across consulted shards.
    pub quarantined_bytes: u64,
    /// Per-shard breakdown, indexed by shard id.
    pub shards: Vec<ShardStatus>,
}

impl ShardedResponse {
    /// Just the global document ids, in result order.
    pub fn docs(&self) -> Vec<DocId> {
        self.hits.iter().map(|h| h.doc).collect()
    }

    /// Shards that were not consulted (degraded), with reasons.
    pub fn degraded(&self) -> Vec<&ShardStatus> {
        self.shards.iter().filter(|s| !s.consulted).collect()
    }
}

/// Scatter-gather query execution over per-shard snapshots.
///
/// Cloning is cheap (per-shard handles are `Arc`-backed); a clone shares
/// snapshots with its source, and [`pin`](Self::pin) derives a searcher
/// whose per-shard watermark vector is frozen for repeatable reads.
#[derive(Clone)]
pub struct ShardedSearcher {
    router: ShardRouter,
    slots: Vec<Option<Searcher>>,
    degraded: Arc<[DegradedShard]>,
    pool: Arc<ScatterPool>,
    /// Per-shard verified standby readers (indexed by shard id; empty
    /// for archives recovered without replicas).
    replicas: Arc<Vec<Vec<ReplicaReader>>>,
    /// Round-robin cursor over `primary + eligible replicas`, shared by
    /// clones so concurrent readers spread across the replica engines.
    rr: Arc<AtomicUsize>,
}

impl ShardedSearcher {
    /// The router, for mapping global ids back to shards.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Number of shards (healthy or degraded).
    pub fn shards(&self) -> u32 {
        self.router.shards()
    }

    /// Degraded shards this searcher cannot consult.
    pub fn degraded(&self) -> &[DegradedShard] {
        &self.degraded
    }

    /// One shard's searcher (`None` when degraded or out of range).
    pub fn shard(&self, shard: u32) -> Option<&Searcher> {
        self.slots.get(shard as usize).and_then(|s| s.as_ref())
    }

    fn degraded_reason(&self, shard: u32) -> Option<String> {
        self.degraded
            .iter()
            .find(|d| d.shard == shard)
            .map(|d| d.reason.clone())
    }

    /// Standby readers provisioned for one shard (eligible or not).
    pub fn replica_readers(&self, shard: u32) -> usize {
        self.replicas.get(shard as usize).map_or(0, Vec::len)
    }

    /// Standby readers currently eligible to serve one shard's reads:
    /// their pinned watermark equals the shard's visible watermark, so
    /// they return byte-identical responses with the same chain head.
    pub fn eligible_replicas(&self, shard: u32) -> usize {
        let Some(primary) = self.shard(shard) else {
            return 0;
        };
        let wm = primary.visible_docs();
        self.replicas
            .get(shard as usize)
            .map_or(0, |rs| rs.iter().filter(|r| r.watermark == wm).count())
    }

    /// Pick the reader serving this shard for one execution: the
    /// primary, or — round-robin — a verified standby whose snapshot
    /// watermark equals the primary's current visible watermark.  The
    /// verified-read invariant: a replica is only ever consulted at a
    /// watermark where recovery proved its chain head equal to the
    /// primary's, so substituting it cannot change any response field.
    fn route_read<'a>(&'a self, sid: usize, primary: &'a Searcher) -> &'a Searcher {
        let Some(candidates) = self.replicas.get(sid) else {
            return primary;
        };
        if candidates.is_empty() {
            return primary;
        }
        let wm = primary.visible_docs();
        let eligible: Vec<&ReplicaReader> =
            candidates.iter().filter(|r| r.watermark == wm).collect();
        if eligible.is_empty() {
            return primary;
        }
        let k = self.rr.fetch_add(1, Ordering::Relaxed) % (eligible.len() + 1);
        match k.checked_sub(1).and_then(|i| eligible.get(i)) {
            Some(r) => &r.searcher,
            None => primary,
        }
    }

    /// Scatter `query` across every healthy shard, gather, and merge.
    ///
    /// A typed error from any consulted shard fails the whole query:
    /// mid-query tamper evidence must never be downgraded into a
    /// silently smaller result set.  If *no* shard is healthy the query
    /// fails with [`ShardError::NoHealthyShards`].
    pub fn execute(&self, query: Query) -> Result<ShardedResponse, ShardError> {
        let n = self.slots.len();
        let live: Vec<(usize, &Searcher)> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(sid, slot)| slot.as_ref().map(|s| (sid, self.route_read(sid, s))))
            .collect();
        if live.is_empty() {
            return Err(ShardError::NoHealthyShards);
        }

        // Scatter over the archive's persistent worker pool.  On a
        // single-core host the pool is empty and the calling thread
        // drains every shard sequentially with zero scatter overhead; on
        // a multi-core host the tail shards are queued to workers while
        // the calling thread always executes the first shard itself.
        let mut pairs: Vec<(usize, Result<QueryResponse, SearchError>)> =
            Vec::with_capacity(live.len());
        if self.pool.workers() == 0 || live.len() == 1 {
            for &(sid, searcher) in &live {
                pairs.push((sid, searcher.execute(query.clone())));
            }
        } else {
            let (rtx, rrx) = mpsc::channel();
            let mut dispatched = 0usize;
            for &(sid, searcher) in &live[1..] {
                let task = ScatterTask {
                    sid: sid as u32,
                    query: query.clone(),
                    searcher: searcher.clone(),
                    reply: rtx.clone(),
                };
                if self.pool.submit(task) {
                    dispatched += 1;
                } else {
                    pairs.push((sid, searcher.execute(query.clone())));
                }
            }
            let (sid0, searcher0) = live[0];
            pairs.push((sid0, searcher0.execute(query.clone())));
            drop(rtx); // a worker panic now surfaces as a recv error
            for _ in 0..dispatched {
                match rrx.recv() {
                    Ok((sid, outcome)) => pairs.push((sid as usize, outcome)),
                    Err(_) => {
                        return Err(ShardError::Internal(
                            "a shard query worker panicked".to_string(),
                        ))
                    }
                }
            }
        }
        let mut gathered: Vec<Option<Result<QueryResponse, ShardError>>> =
            (0..n).map(|_| None).collect();
        for (sid, outcome) in pairs {
            if let Some(cell) = gathered.get_mut(sid) {
                *cell = Some(outcome.map_err(|source| ShardError::Engine {
                    shard: sid as u32,
                    source,
                }));
            }
        }

        // Gather + merge.  The merged hit vector is sized once from the
        // gathered responses — per-shard result slices land in a single
        // allocation instead of regrowing the accumulator shard by shard.
        let gathered_hits: usize = gathered
            .iter()
            .map(|cell| match cell {
                Some(Ok(resp)) => resp.hits.len(),
                _ => 0,
            })
            .sum();
        let mut hits: Vec<SearchHit> = Vec::with_capacity(gathered_hits);
        let mut blocks_read = 0u64;
        let mut blocks_skipped = 0u64;
        let mut io = IoStats::default();
        let mut visible_docs = 0u64;
        // Identity element of the conjunction below: every consulted
        // shard's verdict is `&&`-ed in, so this `true` never survives
        // past a single untrusted shard.
        // audit:allow(trusted-conjunction)
        let mut trusted = true;
        let mut quarantined_bytes = 0u64;
        let mut shards = Vec::with_capacity(n);
        let mut consulted = 0u32;
        for (sid, cell) in gathered.into_iter().enumerate() {
            let shard = sid as u32;
            match cell {
                Some(Ok(resp)) => {
                    for h in &resp.hits {
                        hits.push(SearchHit {
                            doc: self.router.global_id(shard, h.doc)?,
                            score: h.score,
                        });
                    }
                    blocks_read += resp.blocks_read;
                    blocks_skipped += resp.blocks_skipped;
                    io += resp.io;
                    visible_docs += resp.visible_docs;
                    trusted &= resp.trusted;
                    quarantined_bytes += resp.quarantined_bytes;
                    consulted += 1;
                    shards.push(ShardStatus {
                        shard,
                        consulted: true,
                        visible_docs: resp.visible_docs,
                        trusted: resp.trusted,
                        quarantined_bytes: resp.quarantined_bytes,
                        chain_head: resp.chain_head,
                        degraded: None,
                    });
                }
                Some(Err(e)) => return Err(e),
                None => shards.push(ShardStatus {
                    shard,
                    consulted: false,
                    visible_docs: 0,
                    trusted: false,
                    quarantined_bytes: 0,
                    chain_head: ChainHead::genesis(),
                    degraded: self.degraded_reason(shard),
                }),
            }
        }
        if consulted == 0 {
            return Err(ShardError::NoHealthyShards);
        }

        match &query {
            Query::Disjunctive { top_k, .. } => {
                // Re-rank across shards.  Scores are per-shard (each
                // shard ranks against its own collection statistics);
                // ties break on global id for determinism.
                hits.sort_by(|a, b| {
                    b.score
                        .total_cmp(&a.score)
                        .then_with(|| a.doc.0.cmp(&b.doc.0))
                });
                hits.truncate(*top_k);
            }
            _ => hits.sort_by_key(|h| h.doc.0),
        }

        Ok(ShardedResponse {
            hits,
            blocks_read,
            blocks_skipped,
            io,
            visible_docs,
            trusted,
            quarantined_bytes,
            shards,
        })
    }

    /// A searcher pinned at a **consistent watermark vector**: every
    /// shard's snapshot is frozen at its current watermark, so repeated
    /// executions see identical per-shard prefixes even while writers
    /// keep committing.
    ///
    /// Crate-internal: the public path is
    /// [`QuerySession::open`](crate::session::QuerySession::open), which
    /// bundles the pin, its watermark vector, and batch execution behind
    /// one handle (and can
    /// [`refresh`](crate::session::QuerySession::refresh) in place).
    /// The long-deprecated public `pin()` was removed; sessions are the
    /// only supported way to hold a repeatable-read snapshot.
    pub(crate) fn pin(&self) -> ShardedSearcher {
        ShardedSearcher {
            router: self.router,
            slots: self
                .slots
                .iter()
                .map(|slot| slot.as_ref().map(Searcher::pin))
                .collect(),
            degraded: Arc::clone(&self.degraded),
            pool: Arc::clone(&self.pool),
            replicas: Arc::clone(&self.replicas),
            rr: Arc::clone(&self.rr),
        }
    }

    /// Sum of the per-shard snapshot watermarks.
    pub fn visible_docs(&self) -> u64 {
        self.watermarks().iter().sum()
    }

    /// The per-shard watermark vector (0 for degraded shards).
    pub fn watermarks(&self) -> Vec<u64> {
        self.slots
            .iter()
            .map(|slot| slot.as_ref().map_or(0, Searcher::visible_docs))
            .collect()
    }

    /// Summed per-query I/O across live shards.
    pub fn query_io_stats(&self) -> IoStats {
        let mut total = IoStats::default();
        for slot in self.slots.iter().flatten() {
            total += slot.query_io_stats();
        }
        total
    }

    /// Field-wise sum of the per-shard decoded-block cache statistics.
    pub fn decoded_cache_stats(&self) -> DecodedCacheStats {
        let mut total = DecodedCacheStats::default();
        for slot in self.slots.iter().flatten() {
            let s = slot.decoded_cache_stats();
            total.hits += s.hits;
            total.misses += s.misses;
            total.invalidations += s.invalidations;
            total.resident += s.resident;
        }
        total
    }
}
