//! Deterministic synthetic query log.
//!
//! The paper's 300,000 logged intranet queries have three properties the
//! experiments depend on (§3.3, Figures 3(b)–3(c)):
//!
//! 1. per-term query frequency `qi` is itself heavy-tailed;
//! 2. "the most common terms in the queries (high qi) are also very
//!    common in the documents (high ti) … people generally query on terms
//!    that they know about";
//! 3. "some terms (like 'following') are common in documents but rarely
//!    queried" — the reason the TF-ranked cumulative cost curve of
//!    Figure 3(c) peaks more slowly than the QF-ranked one.
//!
//! [`QueryGenerator`] models this by giving term `t` (document rank `t`)
//! the query weight `(t+1)^(−θ_q) · jitter`, where `jitter` is log-normal
//! (property 2 with noise), and *muting* a random fraction of terms by a
//! large factor (property 3).  Query lengths follow a short-query
//! distribution (mean ≈ 2.3 terms, as in web/intranet logs — the paper
//! cites Silverstein et al.).  Query `j` is a pure function of
//! `(seed, j)`.

use rand::{rngs::SmallRng, Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tks_postings::TermId;

/// Shape parameters of the synthetic query log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueryConfig {
    /// Number of queries (the paper: 300,000).
    pub num_queries: u64,
    /// Terms eligible to appear in queries: the `query_vocab` most
    /// document-frequent terms (users query words they know).
    pub query_vocab: u32,
    /// Zipf exponent of query-term popularity.
    pub zipf_exponent: f64,
    /// σ of the log-normal jitter decorrelating query rank from document
    /// rank.
    pub jitter_sigma: f64,
    /// Fraction of terms that are document-popular but query-rare
    /// (the paper's 'following' effect).
    pub muted_fraction: f64,
    /// Weight multiplier applied to muted terms (≪ 1).
    pub mute_factor: f64,
    /// Probability of each query length 1, 2, 3, … (normalised
    /// internally).
    pub len_weights: Vec<f64>,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for QueryConfig {
    fn default() -> Self {
        Self {
            num_queries: 10_000,
            query_vocab: 10_000,
            zipf_exponent: 1.0,
            jitter_sigma: 1.0,
            muted_fraction: 0.10,
            mute_factor: 1e-3,
            // Mean ≈ 2.3 terms/query, like intranet/web logs.
            len_weights: vec![0.28, 0.36, 0.20, 0.09, 0.04, 0.02, 0.01],
            seed: 0xBEEF,
        }
    }
}

impl QueryConfig {
    /// The paper's full-scale query log: 300,000 queries over the head of
    /// a >1M-term vocabulary.
    pub fn paper_scale() -> Self {
        Self {
            num_queries: 300_000,
            query_vocab: 60_000,
            ..Self::default()
        }
    }
}

/// One multi-keyword query (distinct terms).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// 0-based position in the log.
    pub id: u64,
    /// Distinct query terms.
    pub terms: Vec<TermId>,
}

/// Deterministic query-log generator (see module docs).
///
/// # Example
///
/// ```
/// use tks_corpus::{QueryConfig, QueryGenerator};
///
/// let gen = QueryGenerator::new(QueryConfig::default());
/// let q = gen.query(42);
/// assert!(!q.terms.is_empty() && q.terms.len() <= 7);
/// assert_eq!(q, gen.query(42), "queries are pure functions of (seed, id)");
/// ```
#[derive(Debug, Clone)]
pub struct QueryGenerator {
    config: QueryConfig,
    /// CDF over the query vocabulary (term id = index).
    cdf: Vec<f64>,
    len_cdf: Vec<f64>,
}

impl QueryGenerator {
    /// Build the generator: term weights (power law × jitter × muting) are
    /// drawn once from `seed`, then normalised into a CDF.
    pub fn new(config: QueryConfig) -> Self {
        assert!(config.num_queries >= 1);
        assert!(config.query_vocab >= 1);
        assert!(!config.len_weights.is_empty());
        let mut rng = SmallRng::seed_from_u64(crate::item_seed(config.seed, u64::MAX));
        let mut cdf = Vec::with_capacity(config.query_vocab as usize);
        let mut acc = 0.0f64;
        for t in 0..config.query_vocab as usize {
            let base = ((t + 1) as f64).powf(-config.zipf_exponent);
            let jitter = if config.jitter_sigma > 0.0 {
                let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let u2: f64 = rng.gen();
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                (config.jitter_sigma * z).exp()
            } else {
                1.0
            };
            let mute = if rng.gen::<f64>() < config.muted_fraction {
                config.mute_factor
            } else {
                1.0
            };
            acc += base * jitter * mute;
            cdf.push(acc);
        }
        for v in &mut cdf {
            *v /= acc;
        }
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        let mut len_cdf = Vec::with_capacity(config.len_weights.len());
        let mut lacc = 0.0;
        for &w in &config.len_weights {
            assert!(w >= 0.0);
            lacc += w;
            len_cdf.push(lacc);
        }
        for v in &mut len_cdf {
            *v /= lacc;
        }
        if let Some(last) = len_cdf.last_mut() {
            *last = 1.0;
        }
        Self {
            config,
            cdf,
            len_cdf,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &QueryConfig {
        &self.config
    }

    /// Generate query `id` with a sampled length.
    pub fn query(&self, id: u64) -> Query {
        let mut rng = SmallRng::seed_from_u64(crate::item_seed(self.config.seed, id));
        let u: f64 = rng.gen();
        let len = self.len_cdf.partition_point(|&c| c < u) + 1;
        self.query_of_len(id, len)
    }

    /// Generate query `id` with exactly `len` distinct terms (used by the
    /// Figure 8(c) harness, which sweeps query length 2–7).
    pub fn query_of_len(&self, id: u64, len: usize) -> Query {
        let len = len.min(self.config.query_vocab as usize);
        let mut rng = SmallRng::seed_from_u64(crate::item_seed(self.config.seed ^ 0xA11CE, id));
        let mut terms: Vec<TermId> = Vec::with_capacity(len);
        let mut guard = 0;
        while terms.len() < len && guard < len * 100 + 100 {
            let u: f64 = rng.gen();
            let t = TermId(self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1) as u32);
            if !terms.contains(&t) {
                terms.push(t);
            }
            guard += 1;
        }
        // Pathological configs (vocab smaller than len) fall back to the
        // first few terms to stay total.
        let mut fill = 0u32;
        while terms.len() < len {
            let t = TermId(fill);
            if !terms.contains(&t) {
                terms.push(t);
            }
            fill += 1;
        }
        Query { id, terms }
    }

    /// Iterate queries `range` in log order.
    pub fn queries(&self, range: std::ops::Range<u64>) -> impl Iterator<Item = Query> + '_ {
        range.map(move |id| self.query(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen() -> QueryGenerator {
        QueryGenerator::new(QueryConfig {
            query_vocab: 2_000,
            ..Default::default()
        })
    }

    #[test]
    fn deterministic_and_distinct_terms() {
        let g = gen();
        for id in 0..50 {
            let q = g.query(id);
            assert_eq!(q, g.query(id));
            let mut t = q.terms.clone();
            t.sort_unstable();
            t.dedup();
            assert_eq!(t.len(), q.terms.len(), "terms must be distinct");
        }
    }

    #[test]
    fn lengths_follow_configured_support() {
        let g = gen();
        let max_len = g.config().len_weights.len();
        let mut seen = vec![0u64; max_len + 1];
        for q in g.queries(0..3_000) {
            assert!((1..=max_len).contains(&q.terms.len()));
            seen[q.terms.len()] += 1;
        }
        // One- and two-term queries dominate.
        assert!(seen[1] + seen[2] > seen[3..].iter().sum::<u64>());
    }

    #[test]
    fn fixed_length_queries() {
        let g = gen();
        for len in 2..=7 {
            let q = g.query_of_len(5, len);
            assert_eq!(q.terms.len(), len);
        }
    }

    #[test]
    fn popular_terms_queried_more() {
        let g = gen();
        let mut counts = vec![0u64; 2_000];
        for q in g.queries(0..20_000) {
            for t in &q.terms {
                counts[t.0 as usize] += 1;
            }
        }
        let head: u64 = counts[..20].iter().sum();
        let tail: u64 = counts[1_900..].iter().sum();
        assert!(head > tail * 5, "head {head} should dominate tail {tail}");
    }

    #[test]
    fn muting_creates_doc_popular_query_rare_terms() {
        // With heavy muting, some of the top-50 document-rank terms must
        // be queried (almost) never — the 'following' effect.
        let g = QueryGenerator::new(QueryConfig {
            query_vocab: 500,
            muted_fraction: 0.3,
            mute_factor: 1e-6,
            ..Default::default()
        });
        let mut counts = vec![0u64; 500];
        for q in g.queries(0..30_000) {
            for t in &q.terms {
                counts[t.0 as usize] += 1;
            }
        }
        let median_head = {
            let mut head: Vec<u64> = counts[..50].to_vec();
            head.sort_unstable();
            head[25]
        };
        let muted_in_head = counts[..50]
            .iter()
            .filter(|&&c| (c as f64) < median_head as f64 * 0.01)
            .count();
        assert!(
            muted_in_head >= 5,
            "expected several muted head terms, got {muted_in_head} (median {median_head})"
        );
    }
}
