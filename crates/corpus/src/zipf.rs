//! Rank-frequency Zipf sampling.
//!
//! The paper (citing Zipf \[30\]) relies on the Zipfian distribution of
//! keywords in document databases: "most words occur in very few
//! documents" (§3), which is why caching alone cannot make unmerged
//! posting-list updates cheap (Figure 2) and why uniform merging works so
//! well (§3.4).
//!
//! [`ZipfSampler`] samples ranks `0..n` with `P(rank r) ∝ (r+1)^(−θ)` via
//! a precomputed CDF and binary search — O(n) memory, O(log n) per draw,
//! deterministic given the caller's RNG.

use rand::Rng;

/// Sampler for the Zipf(θ) distribution over ranks `0..n`.
///
/// # Example
///
/// ```
/// use rand::{rngs::SmallRng, SeedableRng};
/// use tks_corpus::ZipfSampler;
///
/// let z = ZipfSampler::new(1000, 1.0);
/// let mut rng = SmallRng::seed_from_u64(7);
/// let r = z.sample(&mut rng);
/// assert!(r < 1000);
/// // Rank 0 is the most likely outcome.
/// assert!(z.pmf(0) > z.pmf(1));
/// ```
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
    exponent: f64,
}

impl ZipfSampler {
    /// Build a sampler over `n` ranks with exponent `exponent` (θ ≈ 1 for
    /// natural-language vocabularies).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `exponent` is not finite and non-negative.
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n > 0, "need at least one rank");
        assert!(
            exponent.is_finite() && exponent >= 0.0,
            "exponent must be finite and ≥ 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for r in 0..n {
            acc += ((r + 1) as f64).powf(-exponent);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating-point shortfall at the top.
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        Self { cdf, exponent }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler has zero ranks (never true — see `new`).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// The configured exponent θ.
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Probability of drawing `rank`.
    pub fn pmf(&self, rank: usize) -> f64 {
        let hi = self.cdf[rank];
        let lo = if rank == 0 { 0.0 } else { self.cdf[rank - 1] };
        hi - lo
    }

    /// Draw a rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Expected number of *distinct* ranks seen in `draws` independent
    /// draws (used to calibrate document length targets):
    /// `Σ_r (1 − (1 − p_r)^draws)`.
    pub fn expected_distinct(&self, draws: u64) -> f64 {
        (0..self.len())
            .map(|r| 1.0 - (1.0 - self.pmf(r)).powi(draws as i32))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::SmallRng, SeedableRng};

    #[test]
    fn pmf_sums_to_one() {
        let z = ZipfSampler::new(500, 1.0);
        let total: f64 = (0..500).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pmf_is_monotone_decreasing() {
        let z = ZipfSampler::new(100, 1.2);
        for r in 1..100 {
            assert!(z.pmf(r) < z.pmf(r - 1));
        }
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = ZipfSampler::new(10, 0.0);
        for r in 0..10 {
            assert!((z.pmf(r) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn empirical_frequencies_match_pmf() {
        let z = ZipfSampler::new(50, 1.0);
        let mut rng = SmallRng::seed_from_u64(42);
        let mut counts = vec![0u64; 50];
        let n = 200_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (r, &count) in counts.iter().enumerate().take(10) {
            let emp = count as f64 / n as f64;
            let exp = z.pmf(r);
            assert!(
                (emp - exp).abs() < 0.01,
                "rank {r}: empirical {emp:.4} vs pmf {exp:.4}"
            );
        }
        // Head dominates: rank 0 drawn far more than rank 49.
        assert!(counts[0] > counts[49] * 10);
    }

    #[test]
    fn sample_never_out_of_range() {
        let z = ZipfSampler::new(3, 2.0);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 3);
        }
    }

    #[test]
    fn expected_distinct_is_sane() {
        let z = ZipfSampler::new(1000, 1.0);
        let d1 = z.expected_distinct(10);
        let d2 = z.expected_distinct(100);
        let d3 = z.expected_distinct(10_000);
        assert!(d1 < d2 && d2 < d3);
        assert!(d1 <= 10.0 + 1e-9);
        assert!(d3 <= 1000.0 + 1e-9);
        // With vastly more draws than ranks, nearly all ranks appear.
        assert!(d3 > 900.0);
    }
}
