//! Deterministic synthetic document stream.
//!
//! Documents mimic the paper's IBM intranet crawl: each document contains
//! a Zipf-distributed bag of keywords with a configurable mean number of
//! *distinct* terms (the paper's corpus averages ~500, i.e. "500 8-byte
//! postings per document"), document IDs come from a strictly increasing
//! counter, and commit timestamps are non-decreasing.
//!
//! Document `i` is a pure function of `(seed, i)`, so experiments can
//! re-stream the corpus per parameter setting instead of materialising
//! hundreds of millions of postings.

use crate::zipf::ZipfSampler;
use rand::{rngs::SmallRng, Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use tks_postings::{DocId, TermId, Timestamp};

/// Shape parameters of the synthetic corpus.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// Number of documents (the paper: 1,000,000).
    pub num_docs: u64,
    /// Vocabulary size (the paper: "more than 1,000,000 terms").
    pub vocab_size: u32,
    /// Zipf exponent of term selection (θ ≈ 1 for natural language).
    pub zipf_exponent: f64,
    /// Target mean number of *distinct* terms per document (the paper:
    /// ~500).
    pub mean_distinct_terms: u32,
    /// Log-normal spread (σ of the underlying normal) of per-document
    /// length; 0 makes every document the same length.
    pub doc_len_sigma: f64,
    /// Base RNG seed; the corpus is a pure function of this.
    pub seed: u64,
    /// Commit timestamp of document 0.
    pub base_timestamp: u64,
    /// Timestamp increment per document (commit times are non-decreasing).
    pub timestamp_step: u64,
}

impl Default for CorpusConfig {
    /// A laptop-sized default; the figure harnesses scale it up or down
    /// with command-line flags (see `tks-bench`).
    fn default() -> Self {
        Self {
            num_docs: 10_000,
            vocab_size: 50_000,
            zipf_exponent: 1.0,
            mean_distinct_terms: 100,
            doc_len_sigma: 0.4,
            seed: 0xC0FFEE,
            base_timestamp: 1_100_000_000, // ~Nov 2004, arbitrary
            timestamp_step: 60,
        }
    }
}

impl CorpusConfig {
    /// The paper's full-scale evaluation corpus: 1M documents, ~500
    /// distinct terms each, >1M-term vocabulary.  Streaming it is feasible
    /// (nothing is materialised) but takes a while; the default scaled
    /// corpus preserves the distributional shape.
    pub fn paper_scale() -> Self {
        Self {
            num_docs: 1_000_000,
            vocab_size: 1_200_000,
            mean_distinct_terms: 500,
            ..Self::default()
        }
    }
}

/// One synthetic document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    /// Strictly increasing document ID (commit order).
    pub id: DocId,
    /// Non-decreasing commit timestamp.
    pub timestamp: Timestamp,
    /// Distinct terms with in-document frequency, sorted by term ID.
    pub terms: Vec<(TermId, u32)>,
}

impl Document {
    /// Number of distinct terms (= postings this document contributes).
    pub fn num_distinct_terms(&self) -> usize {
        self.terms.len()
    }

    /// Total token count (sum of term frequencies).
    pub fn num_tokens(&self) -> u64 {
        self.terms.iter().map(|&(_, tf)| tf as u64).sum()
    }

    /// Render the document as whitespace-separated synthetic tokens
    /// (`kw<N>`), for feeding text-oriented APIs.
    pub fn text(&self) -> String {
        let mut out = String::with_capacity(self.num_tokens() as usize * 8);
        for &(t, tf) in &self.terms {
            for _ in 0..tf {
                out.push_str("kw");
                out.push_str(&t.0.to_string());
                out.push(' ');
            }
        }
        out
    }
}

/// Deterministic document generator (see module docs).
///
/// # Example
///
/// ```
/// use tks_corpus::{CorpusConfig, DocumentGenerator};
///
/// let gen = DocumentGenerator::new(CorpusConfig { num_docs: 100, ..Default::default() });
/// let d0 = gen.doc(0);
/// let d0_again = gen.doc(0);
/// assert_eq!(d0, d0_again, "documents are pure functions of (seed, id)");
/// assert!(d0.num_distinct_terms() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct DocumentGenerator {
    config: CorpusConfig,
    zipf: ZipfSampler,
}

impl DocumentGenerator {
    /// Build a generator; the Zipf CDF over the vocabulary is precomputed
    /// once (O(vocab) memory).
    pub fn new(config: CorpusConfig) -> Self {
        assert!(config.num_docs >= 1);
        assert!(config.vocab_size >= 1);
        assert!(config.mean_distinct_terms >= 1);
        let zipf = ZipfSampler::new(config.vocab_size as usize, config.zipf_exponent);
        Self { config, zipf }
    }

    /// The configuration.
    pub fn config(&self) -> &CorpusConfig {
        &self.config
    }

    /// Generate document `id` (0-based; must be `< num_docs`).
    pub fn doc(&self, id: u64) -> Document {
        assert!(id < self.config.num_docs, "document id out of range");
        let mut rng = SmallRng::seed_from_u64(crate::item_seed(self.config.seed, id));
        let target = self.sample_target_distinct(&mut rng);
        let mut counts: HashMap<u32, u32> = HashMap::with_capacity(target * 2);
        // Draw until `target` distinct terms accumulate; cap total draws so
        // a target close to the vocabulary size cannot stall on the
        // coupon-collector tail.
        let max_draws = target as u64 * 20 + 64;
        let mut draws = 0u64;
        while counts.len() < target && draws < max_draws {
            let term = self.zipf.sample(&mut rng) as u32;
            *counts.entry(term).or_insert(0) += 1;
            draws += 1;
        }
        let mut terms: Vec<(TermId, u32)> =
            counts.into_iter().map(|(t, c)| (TermId(t), c)).collect();
        terms.sort_unstable_by_key(|&(t, _)| t);
        Document {
            id: DocId(id),
            timestamp: Timestamp(self.config.base_timestamp + id * self.config.timestamp_step),
            terms,
        }
    }

    /// Iterate documents `range` in commit order.
    pub fn docs(&self, range: std::ops::Range<u64>) -> impl Iterator<Item = Document> + '_ {
        range.map(move |id| self.doc(id))
    }

    fn sample_target_distinct(&self, rng: &mut SmallRng) -> usize {
        let mean = self.config.mean_distinct_terms as f64;
        let sigma = self.config.doc_len_sigma;
        let target = if sigma <= 0.0 {
            mean
        } else {
            // Log-normal with the requested mean: E[e^(μ+σZ)] = e^(μ+σ²/2).
            let mu = mean.ln() - sigma * sigma / 2.0;
            let z: f64 = sample_standard_normal(rng);
            (mu + sigma * z).exp()
        };
        (target.round() as usize).clamp(1, self.config.vocab_size as usize)
    }
}

/// Standard normal via Box–Muller (avoids a rand_distr dependency).
fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CorpusConfig {
        CorpusConfig {
            num_docs: 500,
            vocab_size: 2_000,
            mean_distinct_terms: 40,
            ..Default::default()
        }
    }

    #[test]
    fn deterministic_per_id() {
        let g = DocumentGenerator::new(small());
        assert_eq!(g.doc(7), g.doc(7));
        assert_ne!(g.doc(7), g.doc(8));
    }

    #[test]
    fn ids_and_timestamps_monotone() {
        let g = DocumentGenerator::new(small());
        let mut prev: Option<Document> = None;
        for d in g.docs(0..50) {
            if let Some(p) = &prev {
                assert!(d.id > p.id);
                assert!(d.timestamp >= p.timestamp);
            }
            prev = Some(d);
        }
    }

    #[test]
    fn terms_sorted_distinct_in_vocab() {
        let g = DocumentGenerator::new(small());
        for d in g.docs(0..50) {
            for w in d.terms.windows(2) {
                assert!(w[0].0 < w[1].0, "terms must be sorted and distinct");
            }
            for &(t, tf) in &d.terms {
                assert!(t.0 < 2_000);
                assert!(tf >= 1);
            }
        }
    }

    #[test]
    fn mean_length_near_target() {
        let g = DocumentGenerator::new(small());
        let total: usize = g.docs(0..300).map(|d| d.num_distinct_terms()).sum();
        let mean = total as f64 / 300.0;
        assert!(
            (25.0..=55.0).contains(&mean),
            "mean distinct terms {mean} too far from target 40"
        );
    }

    #[test]
    fn head_terms_dominate() {
        // Term 0 (rank 0) should appear in far more documents than a deep
        // tail term — the Zipf shape Figure 3(a) plots.
        let g = DocumentGenerator::new(small());
        let mut df0 = 0;
        let mut df_tail = 0;
        for d in g.docs(0..300) {
            if d.terms.iter().any(|&(t, _)| t.0 == 0) {
                df0 += 1;
            }
            if d.terms.iter().any(|&(t, _)| t.0 == 1_900) {
                df_tail += 1;
            }
        }
        assert!(
            df0 > 250,
            "rank-0 term should be near-ubiquitous, got {df0}"
        );
        assert!(df_tail < 30, "deep-tail term should be rare, got {df_tail}");
    }

    #[test]
    fn fixed_length_when_sigma_zero() {
        let g = DocumentGenerator::new(CorpusConfig {
            doc_len_sigma: 0.0,
            mean_distinct_terms: 25,
            ..small()
        });
        for d in g.docs(0..20) {
            // Draw cap can fall slightly short on unlucky dedup streaks,
            // but with a 20× cap that is vanishingly rare at this size.
            assert_eq!(d.num_distinct_terms(), 25);
        }
    }

    #[test]
    fn text_rendering_roundtrips_tokens() {
        let g = DocumentGenerator::new(small());
        let d = g.doc(3);
        let text = d.text();
        let tokens: Vec<&str> = text.split_whitespace().collect();
        assert_eq!(tokens.len() as u64, d.num_tokens());
        assert!(tokens.iter().all(|t| t.starts_with("kw")));
    }
}
