//! Workload statistics: term frequency `ti`, query frequency `qi`, and
//! rank curves.
//!
//! In the paper's notation (§3.1): `ti` is the length of term *i*'s
//! unmerged posting list (the number of documents containing the term) and
//! `qi` is the number of queries containing the term.  These two vectors
//! drive everything in Section 3: the workload-cost model (Eq. 1), the
//! merging heuristics ("popular terms unmerged"), and the learned variants
//! that estimate the statistics from a 10% prefix (Figures 3(f)–3(g)).

use crate::docs::DocumentGenerator;
use crate::queries::QueryGenerator;
use serde::{Deserialize, Serialize};
use tks_postings::TermId;

/// Per-term document frequency: `ti` in the paper.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TermStats {
    /// `doc_freq[t]` = number of documents containing term `t`.
    pub doc_freq: Vec<u64>,
    /// Documents scanned.
    pub num_docs: u64,
    /// Total postings (Σ ti).
    pub total_postings: u64,
}

impl TermStats {
    /// Scan documents `range` from the generator and count document
    /// frequencies.
    pub fn collect(gen: &DocumentGenerator, range: std::ops::Range<u64>) -> Self {
        let mut doc_freq = vec![0u64; gen.config().vocab_size as usize];
        let mut total = 0u64;
        let num_docs = range.end - range.start;
        for doc in gen.docs(range) {
            for &(t, _) in &doc.terms {
                doc_freq[t.0 as usize] += 1;
                total += 1;
            }
        }
        Self {
            doc_freq,
            num_docs,
            total_postings: total,
        }
    }

    /// `ti` for one term.
    pub fn ti(&self, t: TermId) -> u64 {
        self.doc_freq.get(t.0 as usize).copied().unwrap_or(0)
    }

    /// Term IDs sorted by decreasing document frequency (rank order for
    /// Figure 3(a) and the "popular document terms" merging heuristic).
    pub fn terms_by_rank(&self) -> Vec<TermId> {
        let mut ids: Vec<TermId> = (0..self.doc_freq.len() as u32).map(TermId).collect();
        ids.sort_by_key(|t| std::cmp::Reverse(self.doc_freq[t.0 as usize]));
        ids
    }

    /// The rank curve (frequencies sorted descending) — Figure 3(a)'s
    /// y-values.
    pub fn rank_curve(&self) -> Vec<u64> {
        let mut f = self.doc_freq.clone();
        f.sort_unstable_by(|a, b| b.cmp(a));
        f
    }

    /// Scale `ti` estimates from a prefix sample up to a full corpus of
    /// `full_docs` documents (used by the learned merging strategies).
    pub fn extrapolate(&self, full_docs: u64) -> Vec<f64> {
        let factor = full_docs as f64 / self.num_docs.max(1) as f64;
        self.doc_freq.iter().map(|&f| f as f64 * factor).collect()
    }
}

/// Per-term query frequency: `qi` in the paper.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryTermStats {
    /// `query_freq[t]` = number of queries containing term `t`.
    pub query_freq: Vec<u64>,
    /// Queries scanned.
    pub num_queries: u64,
}

impl QueryTermStats {
    /// Scan queries `range` from the generator and count query
    /// frequencies over a vocabulary of `vocab_size` terms.
    pub fn collect(gen: &QueryGenerator, range: std::ops::Range<u64>, vocab_size: u32) -> Self {
        let mut query_freq = vec![0u64; vocab_size as usize];
        let num_queries = range.end - range.start;
        for q in gen.queries(range) {
            for t in &q.terms {
                if let Some(slot) = query_freq.get_mut(t.0 as usize) {
                    *slot += 1;
                }
            }
        }
        Self {
            query_freq,
            num_queries,
        }
    }

    /// `qi` for one term.
    pub fn qi(&self, t: TermId) -> u64 {
        self.query_freq.get(t.0 as usize).copied().unwrap_or(0)
    }

    /// Term IDs sorted by decreasing query frequency ("popular query
    /// terms" heuristic).
    pub fn terms_by_rank(&self) -> Vec<TermId> {
        let mut ids: Vec<TermId> = (0..self.query_freq.len() as u32).map(TermId).collect();
        ids.sort_by_key(|t| std::cmp::Reverse(self.query_freq[t.0 as usize]));
        ids
    }

    /// The rank curve — Figure 3(b)'s y-values.
    pub fn rank_curve(&self) -> Vec<u64> {
        let mut f = self.query_freq.clone();
        f.sort_unstable_by(|a, b| b.cmp(a));
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::docs::CorpusConfig;
    use crate::queries::QueryConfig;

    fn doc_gen() -> DocumentGenerator {
        DocumentGenerator::new(CorpusConfig {
            num_docs: 400,
            vocab_size: 1_000,
            mean_distinct_terms: 30,
            ..Default::default()
        })
    }

    #[test]
    fn term_stats_consistency() {
        let g = doc_gen();
        let s = TermStats::collect(&g, 0..400);
        assert_eq!(s.num_docs, 400);
        assert_eq!(s.total_postings, s.doc_freq.iter().sum::<u64>());
        // No term can appear in more documents than exist.
        assert!(s.doc_freq.iter().all(|&f| f <= 400));
        // Rank curve is sorted.
        let rc = s.rank_curve();
        assert!(rc.windows(2).all(|w| w[0] >= w[1]));
        assert_eq!(rc[0], *s.doc_freq.iter().max().unwrap());
    }

    #[test]
    fn term_rank_order_matches_freq() {
        let g = doc_gen();
        let s = TermStats::collect(&g, 0..400);
        let ranked = s.terms_by_rank();
        for w in ranked.windows(2) {
            assert!(s.ti(w[0]) >= s.ti(w[1]));
        }
        // Zipf: low term IDs (head ranks) should top the ranking.
        assert!(ranked[0].0 < 20);
    }

    #[test]
    fn prefix_stats_extrapolate_close_to_full() {
        // The §3.3 learning experiment: statistics from the first 10% of
        // documents predict the full corpus well for head terms.
        let g = doc_gen();
        let prefix = TermStats::collect(&g, 0..40);
        let full = TermStats::collect(&g, 0..400);
        let est = prefix.extrapolate(400);
        // A 40-document prefix gives each head-term count a relative
        // standard error around 20%, so individual terms can legitimately
        // deviate well past 35% — bound each term loosely and the mean
        // across the head tightly instead.
        let mut total_err = 0.0;
        for t in 0..10u32 {
            let e = est[t as usize];
            let f = full.doc_freq[t as usize] as f64;
            let err = (e - f).abs() / f.max(1.0);
            assert!(
                err < 0.6,
                "head term {t}: estimated {e:.0} vs actual {f:.0}"
            );
            total_err += err;
        }
        assert!(
            total_err / 10.0 < 0.25,
            "mean head-term extrapolation error too large: {:.3}",
            total_err / 10.0
        );
    }

    #[test]
    fn query_stats_consistency() {
        let qg = QueryGenerator::new(QueryConfig {
            query_vocab: 1_000,
            ..Default::default()
        });
        let s = QueryTermStats::collect(&qg, 0..2_000, 1_000);
        assert_eq!(s.num_queries, 2_000);
        let total: u64 = s.query_freq.iter().sum();
        assert!(total >= 2_000, "each query has ≥1 term");
        let ranked = s.terms_by_rank();
        for w in ranked.windows(2) {
            assert!(s.qi(w[0]) >= s.qi(w[1]));
        }
    }

    #[test]
    fn qi_out_of_vocab_terms_ignored() {
        // Queries can reference terms ≥ vocab_size if the caller passes a
        // smaller vocabulary; those are counted nowhere but must not panic.
        let qg = QueryGenerator::new(QueryConfig {
            query_vocab: 1_000,
            ..Default::default()
        });
        let s = QueryTermStats::collect(&qg, 0..100, 10);
        assert_eq!(s.query_freq.len(), 10);
        assert_eq!(s.qi(TermId(5_000)), 0);
    }
}
