//! # `tks-corpus` — synthetic workload calibrated to the paper's data set
//!
//! The paper evaluates on one million documents crawled by an IBM intranet
//! search engine (~500 keywords per document on average, Zipfian term
//! distribution, >10⁶ distinct terms) and 300,000 logged user queries whose
//! term popularity correlates with document popularity — except for terms
//! like *following* that are "common in documents but rarely queried"
//! (§3.2–§3.3).  Those data are proprietary; this crate generates a
//! synthetic equivalent whose *statistical shape* — the only thing the
//! paper's results depend on — matches:
//!
//! * [`ZipfSampler`] — a rank-frequency Zipf(θ) sampler (Figure 3(a));
//! * [`DocumentGenerator`] — documents with a configurable mean number of
//!   distinct terms, Zipf-distributed term choices, strictly increasing
//!   document IDs and non-decreasing commit timestamps;
//! * [`QueryGenerator`] — a query log whose per-term query frequency is a
//!   jittered power law over document rank with a configurable fraction of
//!   "muted" terms (document-popular but query-rare), reproducing the
//!   qi/ti relationship of Figures 3(b)–3(c);
//! * [`stats`] — collectors for term frequency `ti` (posting-list length),
//!   query frequency `qi`, and rank curves.
//!
//! Generation is **deterministic and replayable**: document `i` and query
//! `j` are pure functions of `(seed, i)` / `(seed, j)`, so corpus-scale
//! experiments can stream documents repeatedly (for each cache size, say)
//! without storing the corpus.

#![warn(missing_docs)]
#![forbid(unsafe_code)]
// Synthetic-corpus generator, outside the production no-panic surface
// gated by clippy + `cargo xtask audit`.
#![allow(clippy::unwrap_used, clippy::expect_used)]

pub mod docs;
pub mod email;
pub mod queries;
pub mod stats;
pub mod zipf;

pub use docs::{CorpusConfig, Document, DocumentGenerator};
pub use queries::{Query, QueryConfig, QueryGenerator};
pub use stats::{QueryTermStats, TermStats};
pub use zipf::ZipfSampler;

use std::hash::{Hash, Hasher};

/// Derive a per-item RNG seed from a base seed and an item id, so that
/// item `i` is a pure function of `(seed, i)`.
pub(crate) fn item_seed(seed: u64, id: u64) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    (seed, id, 0x5eed_c0de_u64).hash(&mut h);
    h.finish()
}
