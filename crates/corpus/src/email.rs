//! Synthetic business-email stream.
//!
//! The paper's primary target is corporate email retention (SEC 17a-4),
//! and it notes that the Enron corpus (Klimt & Yang, reference \[19\]) is
//! the only public business email archive — but it has no query log, so
//! the evaluation used the IBM intranet crawl instead.  This module
//! provides an Enron-*shaped* synthetic stream for examples and tests:
//! emails with sender/recipient headers, a subject, and a body drawn from
//! a Zipfian vocabulary, committed in timestamp order.
//!
//! The generator is deterministic per `(seed, id)`, like the document
//! generator, and renders to plain text the engine's tokenizer consumes —
//! so sender/recipient addresses become searchable keywords, enabling the
//! paper's motivating query shape: "all emails from X to Y" (§4) as a
//! conjunctive query on the two addresses.

use crate::zipf::ZipfSampler;
use rand::{rngs::SmallRng, Rng, SeedableRng};
use tks_postings::Timestamp;

/// Configuration of the synthetic email stream.
#[derive(Debug, Clone)]
pub struct EmailConfig {
    /// Number of emails.
    pub num_emails: u64,
    /// Number of distinct employees (senders/recipients).
    pub num_people: u32,
    /// Zipf exponent of sender activity (a few people send most mail).
    pub sender_exponent: f64,
    /// Body vocabulary size.
    pub vocab_size: u32,
    /// Zipf exponent of body words.
    pub vocab_exponent: f64,
    /// Mean body length in tokens.
    pub mean_body_tokens: u32,
    /// First email's commit timestamp.
    pub base_timestamp: u64,
    /// Mean seconds between emails.
    pub mean_interval: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for EmailConfig {
    fn default() -> Self {
        Self {
            num_emails: 1_000,
            num_people: 150,
            sender_exponent: 1.0,
            vocab_size: 5_000,
            vocab_exponent: 1.0,
            mean_body_tokens: 40,
            base_timestamp: 1_004_572_800, // Nov 1, 2001 — the §5 scenario
            mean_interval: 300,
            seed: 0xE11A11,
        }
    }
}

/// One synthetic email.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Email {
    /// Position in the stream (commit order).
    pub id: u64,
    /// Commit timestamp (non-decreasing across the stream).
    pub timestamp: Timestamp,
    /// Sender handle (e.g. `emp12`).
    pub from: String,
    /// Recipient handle.
    pub to: String,
    /// Subject keywords.
    pub subject: String,
    /// Body text.
    pub body: String,
}

impl Email {
    /// Render as the flat text committed to the archive: headers become
    /// searchable tokens (`from emp12 to emp3 …`).
    pub fn text(&self) -> String {
        format!(
            "from {} to {} subject {} body {}",
            self.from, self.to, self.subject, self.body
        )
    }
}

/// Deterministic synthetic email generator.
///
/// # Example
///
/// ```
/// use tks_corpus::email::{EmailConfig, EmailGenerator};
///
/// let gen = EmailGenerator::new(EmailConfig::default());
/// let m = gen.email(7);
/// assert_eq!(m, gen.email(7), "emails are pure functions of (seed, id)");
/// assert!(m.text().starts_with("from emp"));
/// ```
#[derive(Debug, Clone)]
pub struct EmailGenerator {
    config: EmailConfig,
    people: ZipfSampler,
    vocab: ZipfSampler,
}

impl EmailGenerator {
    /// Build a generator.
    pub fn new(config: EmailConfig) -> Self {
        assert!(config.num_people >= 2, "need a sender and a recipient");
        let people = ZipfSampler::new(config.num_people as usize, config.sender_exponent);
        let vocab = ZipfSampler::new(config.vocab_size as usize, config.vocab_exponent);
        Self {
            config,
            people,
            vocab,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &EmailConfig {
        &self.config
    }

    /// Generate email `id` (0-based, `< num_emails`).
    pub fn email(&self, id: u64) -> Email {
        assert!(id < self.config.num_emails);
        let mut rng = SmallRng::seed_from_u64(crate::item_seed(self.config.seed, id));
        let from = self.people.sample(&mut rng);
        let to = loop {
            let p = self.people.sample(&mut rng);
            if p != from {
                break p;
            }
        };
        let word = |rng: &mut SmallRng| format!("w{}", self.vocab.sample(rng));
        let subject_len = rng.gen_range(2..=5);
        let subject: Vec<String> = (0..subject_len).map(|_| word(&mut rng)).collect();
        let body_len = (self.config.mean_body_tokens as f64 * (0.5 + rng.gen::<f64>()))
            .round()
            .max(1.0) as usize;
        let body: Vec<String> = (0..body_len).map(|_| word(&mut rng)).collect();
        // Timestamps accumulate deterministically without generating the
        // whole prefix: use a per-id pseudo-interval scaled by id.
        let jitter = SmallRng::seed_from_u64(crate::item_seed(self.config.seed ^ 0x7157A3, id))
            .gen_range(0..=self.config.mean_interval / 2);
        let ts = self.config.base_timestamp + id * self.config.mean_interval + jitter;
        Email {
            id,
            timestamp: Timestamp(ts),
            from: format!("emp{from}"),
            to: format!("emp{to}"),
            subject: subject.join(" "),
            body: body.join(" "),
        }
    }

    /// Iterate emails `range` in commit order.
    pub fn emails(&self, range: std::ops::Range<u64>) -> impl Iterator<Item = Email> + '_ {
        range.map(move |id| self.email(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen() -> EmailGenerator {
        EmailGenerator::new(EmailConfig {
            num_emails: 300,
            ..Default::default()
        })
    }

    #[test]
    fn deterministic_and_distinct_parties() {
        let g = gen();
        for id in 0..50 {
            let m = g.email(id);
            assert_eq!(m, g.email(id));
            assert_ne!(m.from, m.to, "no self-mail");
        }
    }

    #[test]
    fn timestamps_non_decreasing() {
        let g = gen();
        let mut prev = None;
        for m in g.emails(0..300) {
            if let Some(p) = prev {
                assert!(m.timestamp >= p, "{:?} then {:?}", p, m.timestamp);
            }
            prev = Some(m.timestamp);
        }
    }

    #[test]
    fn sender_activity_is_skewed() {
        let g = gen();
        let mut counts = std::collections::HashMap::new();
        for m in g.emails(0..300) {
            *counts.entry(m.from.clone()).or_insert(0u32) += 1;
        }
        let max = counts.values().max().copied().unwrap();
        assert!(max >= 10, "the heaviest sender must dominate, got {max}");
    }

    #[test]
    fn text_contains_searchable_headers() {
        let g = gen();
        let m = g.email(3);
        let text = m.text();
        assert!(text.contains(&format!("from {}", m.from)));
        assert!(text.contains(&format!("to {}", m.to)));
        assert!(text.split_whitespace().count() >= 8);
    }
}
