//! The replication log: sequenced entries describing one primary WORM
//! mutation each.
//!
//! An entry is exactly what the [`AppendTap`](tks_worm::AppendTap)
//! observed — one successful create/append/delete on one file of one of
//! the primary's devices — plus a global sequence number assigned in
//! commit order.  Replaying the entries in sequence against an empty
//! image reconstructs the primary byte for byte; the commit chain
//! embedded in the `engine/chain` stream lets the replica *prove* that,
//! commit point by commit point (see [`apply`](crate::apply)).

use std::fmt;

/// Which of the primary engine's WORM devices a stream belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FsKind {
    /// The posting-list store device.
    Store,
    /// The document device (record text, term dictionary, doc metadata,
    /// commit chain).
    Doc,
    /// The positional sidecar device (positional engines only).
    Pos,
}

impl fmt::Display for FsKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FsKind::Store => "store",
            FsKind::Doc => "doc",
            FsKind::Pos => "pos",
        })
    }
}

/// One replicated stream: a file on one of the primary's devices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stream {
    /// The device the file lives on.
    pub kind: FsKind,
    /// The file's name on that device.
    pub file: String,
}

impl fmt::Display for Stream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.kind, self.file)
    }
}

/// The mutation an entry replicates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplOp {
    /// The file was created, retained until the given logical time.
    Create {
        /// Logical time after which deletion of the file becomes legal.
        retention_expires_at: u64,
    },
    /// Bytes were appended at `offset` (the file's committed length on
    /// the primary before the append).  The replica replays them at the
    /// same offset and refuses anything else — see
    /// [`WormFs::replay`](tks_worm::WormFs::replay).
    Append {
        /// Offset the bytes were committed at on the primary.
        offset: u64,
    },
    /// The file was legally deleted at logical time `now`.
    Delete {
        /// The logical deletion time (at or past retention expiry).
        now: u64,
    },
}

/// One sequenced entry of the replication log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplEntry {
    /// Position in the global replication log (dense, starting at the
    /// sequence the replica was aligned to when it attached).
    pub seq: u64,
    /// The stream (device + file) the mutation targets.
    pub stream: Stream,
    /// What happened.
    pub op: ReplOp,
    /// The appended bytes (empty for creates and deletes).
    pub bytes: Vec<u8>,
}

impl ReplEntry {
    /// Bytes this entry carries (0 for creates/deletes).
    pub fn payload_len(&self) -> usize {
        self.bytes.len()
    }
}
