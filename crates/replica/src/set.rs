//! Fan-out: tapping a primary engine's devices and shipping every
//! committed mutation to a set of replica appliers.
//!
//! A [`ReplicaSet`] owns N [`Applier`]s behind a mutex.  Three
//! [`FsTap`]s (one per primary device) are installed on the primary's
//! [`WormFs`](tks_worm::WormFs) instances by [`attach`]; each committed
//! create/append/delete is assigned the next global sequence number and
//! fanned out to every healthy replica — applied inline
//! ([`ApplyMode::Inline`]) or parked on a per-replica queue
//! ([`ApplyMode::Queued`], drained explicitly with
//! [`ReplicaSet::drain`]) so tests can interleave replication lag with
//! reads.
//!
//! Attach performs **catch-up** first: the primary's file tables are
//! diffed against each replica's (by table index — creation order is
//! part of the replicated state) and the missing suffix is shipped as
//! ordinary entries through the same applier, so catch-up bytes get the
//! same chain verification as live ones.  A replica that is *ahead* of
//! the primary anywhere is not a prefix and is quarantined
//! ([`ReplicaError::NotAPrefix`]) rather than rewound — WORM devices
//! cannot rewind.

use crate::apply::Applier;
use crate::entry::{FsKind, ReplEntry, ReplOp, Stream};
use crate::error::ReplicaError;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use tks_core::engine::EngineParts;
use tks_core::SearchEngine;
use tks_worm::{AppendTap, ChainHead, FileHandle, WormDevice, WormFs};

/// When replicated entries are applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyMode {
    /// Apply each entry synchronously inside the tap notification (the
    /// replica commits in lockstep with the primary).
    Inline,
    /// Park entries on a per-replica queue; [`ReplicaSet::drain`]
    /// applies them.  Models replication lag deterministically for the
    /// schedule-exploration tests.
    Queued,
}

/// One replica: its applier plus its backlog (empty in inline mode).
#[derive(Debug)]
struct ReplicaSlot {
    applier: Applier,
    queue: VecDeque<ReplEntry>,
}

#[derive(Debug)]
struct SetInner {
    mode: ApplyMode,
    next_seq: u64,
    replicas: Vec<ReplicaSlot>,
}

/// A set of replica appliers fed by the primary's append taps.
#[derive(Debug)]
pub struct ReplicaSet {
    inner: Mutex<SetInner>,
}

/// Point-in-time status of one replica (for `tks archive replicas` and
/// the schedule tests' invariant checks).
#[derive(Debug, Clone)]
pub struct ReplicaStatus {
    /// The replica's index in the set.
    pub replica: usize,
    /// Documents whose commit points this replica has verified.
    pub verified_watermark: u64,
    /// Head of the replica's verified commit chain.
    pub chain_head: ChainHead,
    /// The next replication-log sequence number the replica expects.
    pub applied_seq: u64,
    /// Entries parked on the replica's queue (queued mode only).
    pub queued: usize,
    /// The quarantine fault, if the replica diverged.
    pub quarantined: Option<String>,
}

impl ReplicaSet {
    /// Wrap replica images in appliers.  Images are verified as they are
    /// wrapped: one whose existing chain state does not verify starts
    /// out quarantined.
    pub fn new(images: Vec<EngineParts>, mode: ApplyMode) -> ReplicaSet {
        let replicas = images
            .into_iter()
            .enumerate()
            .map(|(i, parts)| ReplicaSlot {
                applier: Applier::new(i, parts),
                queue: VecDeque::new(),
            })
            .collect();
        ReplicaSet {
            inner: Mutex::new(SetInner {
                mode,
                next_seq: 0,
                replicas,
            }),
        }
    }

    /// Number of replicas in the set (healthy or quarantined).
    pub fn len(&self) -> usize {
        self.lock().replicas.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, SetInner> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Assign the next sequence number and fan one mutation out to every
    /// healthy replica.  Called from the taps (under the primary's
    /// `&mut` borrow, so observed order is commit order).
    fn ship(&self, kind: FsKind, file: &str, op: ReplOp, bytes: &[u8]) {
        let mut inner = self.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let mode = inner.mode;
        for slot in &mut inner.replicas {
            if slot.applier.quarantined().is_some() {
                continue;
            }
            let entry = ReplEntry {
                seq,
                stream: Stream {
                    kind,
                    file: file.to_string(),
                },
                op: op.clone(),
                bytes: bytes.to_vec(),
            };
            match mode {
                // A failed apply quarantines the applier internally;
                // the primary's commit already happened and is not
                // affected (see the error module docs).
                ApplyMode::Inline => {
                    let _ = slot.applier.apply(&entry);
                }
                ApplyMode::Queued => slot.queue.push_back(entry),
            }
        }
    }

    /// Apply up to `budget` queued entries on one replica, returning how
    /// many were applied.  A replica that faults mid-drain keeps its
    /// remaining backlog (for diagnosis) but applies nothing further.
    pub fn drain(&self, replica: usize, budget: usize) -> usize {
        let mut inner = self.lock();
        let Some(slot) = inner.replicas.get_mut(replica) else {
            return 0;
        };
        let mut applied = 0;
        while applied < budget {
            if slot.applier.quarantined().is_some() {
                break;
            }
            let Some(entry) = slot.queue.pop_front() else {
                break;
            };
            if slot.applier.apply(&entry).is_err() {
                break;
            }
            applied += 1;
        }
        applied
    }

    /// Drain every replica's queue to empty (or to its first fault).
    pub fn drain_all(&self) {
        let n = self.len();
        for r in 0..n {
            loop {
                if self.drain(r, 1024) == 0 {
                    break;
                }
            }
        }
    }

    /// Point-in-time status of every replica.
    pub fn statuses(&self) -> Vec<ReplicaStatus> {
        let inner = self.lock();
        inner
            .replicas
            .iter()
            .map(|slot| ReplicaStatus {
                replica: slot.applier.replica(),
                verified_watermark: slot.applier.verified_watermark(),
                chain_head: slot.applier.chain_head(),
                applied_seq: slot.applier.next_seq(),
                queued: slot.queue.len(),
                quarantined: slot.applier.quarantined().map(|e| e.to_string()),
            })
            .collect()
    }

    /// Reclaim the replicas' devices, consuming the set.  Fails (handing
    /// the `Arc` back) while any tap still holds a reference — call
    /// [`detach`] first.
    // audit:allow(error-taxonomy) — try_unwrap idiom: Err hands the `Arc` back.
    pub fn reclaim(
        set: Arc<ReplicaSet>,
    ) -> Result<Vec<(EngineParts, Option<ReplicaError>)>, Arc<ReplicaSet>> {
        let set = Arc::try_unwrap(set)?;
        let inner = match set.inner.into_inner() {
            Ok(inner) => inner,
            Err(poisoned) => poisoned.into_inner(),
        };
        Ok(inner
            .replicas
            .into_iter()
            .map(|slot| slot.applier.into_parts())
            .collect())
    }
}

/// The per-device tap: forwards one primary device's commit stream into
/// the shared set.
struct FsTap {
    kind: FsKind,
    set: Arc<ReplicaSet>,
}

impl AppendTap for FsTap {
    fn on_create(&self, file: &str, retention_expires_at: u64) {
        self.set.ship(
            self.kind,
            file,
            ReplOp::Create {
                retention_expires_at,
            },
            &[],
        );
    }

    fn on_append(&self, file: &str, offset: u64, bytes: &[u8]) {
        self.set
            .ship(self.kind, file, ReplOp::Append { offset }, bytes);
    }

    fn on_delete(&self, file: &str, now: u64) {
        self.set.ship(self.kind, file, ReplOp::Delete { now }, &[]);
    }
}

/// Provision `n` empty replica images matching the primary's device
/// geometry (block sizes, positional sidecar present iff the primary has
/// one).
pub fn fresh_images(engine: &SearchEngine, n: usize) -> Vec<EngineParts> {
    let store_bs = engine.list_store().fs().device().block_size();
    let doc_bs = engine.doc_fs().device().block_size();
    let pos_bs = engine.positions_fs().map(|fs| fs.device().block_size());
    (0..n)
        .map(|_| EngineParts {
            store_fs: WormFs::new(WormDevice::new(store_bs)),
            doc_fs: WormFs::new(WormDevice::new(doc_bs)),
            pos_fs: pos_bs.map(|bs| WormFs::new(WormDevice::new(bs))),
        })
        .collect()
}

/// Diff one primary device against one replica device (by file-table
/// index — creation order is replicated state) and produce the entries
/// that bring the replica level.  Errors mean the replica is *not a
/// prefix* of the primary and must be quarantined.
fn catch_up_entries(
    replica: usize,
    kind: FsKind,
    primary: &WormFs,
    mine: &WormFs,
) -> Result<Vec<(Stream, ReplOp, Vec<u8>)>, ReplicaError> {
    let ptable = primary.export_file_table();
    let mtable = mine.export_file_table();
    if mtable.len() > ptable.len() {
        let extra = mtable
            .get(ptable.len())
            .map(|f| f.name.clone())
            .unwrap_or_default();
        return Err(ReplicaError::NotAPrefix {
            replica,
            file: extra,
            detail: format!(
                "replica has {} files, primary only {}",
                mtable.len(),
                ptable.len()
            ),
        });
    }
    let mut out = Vec::new();
    // The chain cursor requires every commit point's link to precede it,
    // so the commit-point stream's content must ship after the chain
    // stream's.  Deferring it to the end of the batch preserves that
    // regardless of file-table order (creates are unaffected — only
    // appends feed the cursor).
    let mut deferred = Vec::new();
    for (i, pf) in ptable.iter().enumerate() {
        let stream = |name: &str| Stream {
            kind,
            file: name.to_string(),
        };
        match mtable.get(i) {
            Some(mf) => {
                if mf.name != pf.name {
                    return Err(ReplicaError::NotAPrefix {
                        replica,
                        file: mf.name.clone(),
                        detail: format!("file {} is '{}' on the primary", i, pf.name),
                    });
                }
                if mf.len > pf.len {
                    return Err(ReplicaError::NotAPrefix {
                        replica,
                        file: mf.name.clone(),
                        detail: format!(
                            "replica committed {} bytes, primary only {}",
                            mf.len, pf.len
                        ),
                    });
                }
                if mf.deleted && !pf.deleted {
                    return Err(ReplicaError::NotAPrefix {
                        replica,
                        file: mf.name.clone(),
                        detail: "deleted on the replica but live on the primary".to_string(),
                    });
                }
                if mf.deleted && mf.len < pf.len {
                    return Err(ReplicaError::NotAPrefix {
                        replica,
                        file: mf.name.clone(),
                        detail: "deleted on the replica short of the primary's length".to_string(),
                    });
                }
                if mf.len < pf.len {
                    let missing = (pf.len - mf.len) as usize;
                    let bytes = primary.read(FileHandle(i as u32), mf.len, missing)?;
                    let entry = (stream(&pf.name), ReplOp::Append { offset: mf.len }, bytes);
                    if kind == FsKind::Doc && pf.name == crate::apply::DOCMETA_FILE {
                        deferred.push(entry);
                    } else {
                        out.push(entry);
                    }
                }
                if pf.deleted && !mf.deleted {
                    out.push((
                        stream(&pf.name),
                        ReplOp::Delete {
                            now: pf.retention_expires_at,
                        },
                        Vec::new(),
                    ));
                }
            }
            None => {
                out.push((
                    stream(&pf.name),
                    ReplOp::Create {
                        retention_expires_at: pf.retention_expires_at,
                    },
                    Vec::new(),
                ));
                if pf.len > 0 {
                    let bytes = primary.read(FileHandle(i as u32), 0, pf.len as usize)?;
                    let entry = (stream(&pf.name), ReplOp::Append { offset: 0 }, bytes);
                    if kind == FsKind::Doc && pf.name == crate::apply::DOCMETA_FILE {
                        deferred.push(entry);
                    } else {
                        out.push(entry);
                    }
                }
                if pf.deleted {
                    out.push((
                        stream(&pf.name),
                        ReplOp::Delete {
                            now: pf.retention_expires_at,
                        },
                        Vec::new(),
                    ));
                }
            }
        }
    }
    out.extend(deferred);
    Ok(out)
}

/// Catch every replica up to the primary's current state, then install
/// the taps so subsequent commits replicate live.
///
/// Catch-up entries flow through the ordinary [`Applier`] (with the same
/// chain verification as live entries); a replica that cannot be caught
/// up — ahead of the primary, or diverging during replay — is
/// quarantined and skipped by the live stream.  After catch-up all
/// healthy appliers are aligned to the set's global sequence counter.
pub fn attach(engine: &mut SearchEngine, set: &Arc<ReplicaSet>) {
    {
        let mut inner = set.lock();
        let base_seq = inner.next_seq;
        for slot in &mut inner.replicas {
            if slot.applier.quarantined().is_some() {
                continue;
            }
            let sources = [
                (
                    FsKind::Store,
                    engine.list_store().fs(),
                    &slot.applier.parts().store_fs,
                ),
                (FsKind::Doc, engine.doc_fs(), &slot.applier.parts().doc_fs),
            ];
            let mut entries = Vec::new();
            let mut fault: Option<ReplicaError> = None;
            for (kind, pfs, mfs) in sources {
                match catch_up_entries(slot.applier.replica(), kind, pfs, mfs) {
                    Ok(e) => entries.extend(e),
                    Err(e) => {
                        fault = Some(e);
                        break;
                    }
                }
            }
            if fault.is_none() {
                if let Some(pfs) = engine.positions_fs() {
                    match slot.applier.parts().pos_fs.as_ref() {
                        Some(mfs) => {
                            match catch_up_entries(slot.applier.replica(), FsKind::Pos, pfs, mfs) {
                                Ok(e) => entries.extend(e),
                                Err(e) => fault = Some(e),
                            }
                        }
                        None => {
                            fault = Some(ReplicaError::NoPositionalDevice {
                                replica: slot.applier.replica(),
                            })
                        }
                    }
                }
            }
            if let Some(e) = fault {
                slot.applier.quarantine(e);
                continue;
            }
            for (stream, op, bytes) in entries {
                let entry = ReplEntry {
                    seq: slot.applier.next_seq(),
                    stream,
                    op,
                    bytes,
                };
                if slot.applier.apply(&entry).is_err() {
                    break;
                }
            }
            slot.applier.align_seq(base_seq);
        }
    }
    install_taps(engine, set);
}

/// Install the three per-device taps (no catch-up): the caller
/// guarantees the replicas are already level with the primary.
fn install_taps(engine: &mut SearchEngine, set: &Arc<ReplicaSet>) {
    engine.list_store_mut().fs_mut().set_tap(Arc::new(FsTap {
        kind: FsKind::Store,
        set: Arc::clone(set),
    }));
    engine.doc_fs_mut().set_tap(Arc::new(FsTap {
        kind: FsKind::Doc,
        set: Arc::clone(set),
    }));
    if let Some(fs) = engine.positions_fs_mut() {
        fs.set_tap(Arc::new(FsTap {
            kind: FsKind::Pos,
            set: Arc::clone(set),
        }));
    }
}

/// Remove the replication taps from a primary engine (dropping the
/// taps' references to the set, so [`ReplicaSet::reclaim`] can succeed).
pub fn detach(engine: &mut SearchEngine) {
    engine.list_store_mut().fs_mut().clear_tap();
    engine.doc_fs_mut().clear_tap();
    if let Some(fs) = engine.positions_fs_mut() {
        fs.clear_tap();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tks_core::{EngineConfig, MergeAssignment};
    use tks_postings::Timestamp;

    fn engine() -> SearchEngine {
        SearchEngine::new(EngineConfig {
            block_size: 64,
            cache_bytes: 1 << 16,
            assignment: MergeAssignment::uniform(4),
            positional: true,
            ..Default::default()
        })
        .unwrap()
    }

    const DOCS: &[&str] = &[
        "compliance records on worm storage",
        "keyword search over retained records",
        "fossilized index structures resist tampering",
        "regulatory retention periods expire eventually",
    ];

    fn fses(e: &SearchEngine) -> [(&WormFs, FsKind); 3] {
        [
            (e.list_store().fs(), FsKind::Store),
            (e.doc_fs(), FsKind::Doc),
            (e.positions_fs().expect("positional"), FsKind::Pos),
        ]
    }

    fn assert_identical_images(engine: &SearchEngine, parts: &EngineParts) {
        for (pfs, kind) in fses(engine) {
            let mfs = match kind {
                FsKind::Store => &parts.store_fs,
                FsKind::Doc => &parts.doc_fs,
                FsKind::Pos => parts.pos_fs.as_ref().expect("positional replica"),
            };
            let pt = pfs.export_file_table();
            let mt = mfs.export_file_table();
            assert_eq!(pt.len(), mt.len(), "{kind}: file counts differ");
            for (i, (pf, mf)) in pt.iter().zip(&mt).enumerate() {
                assert_eq!(pf.name, mf.name, "{kind}: file {i} name");
                assert_eq!(pf.len, mf.len, "{kind}: '{}' length", pf.name);
                assert_eq!(pf.deleted, mf.deleted, "{kind}: '{}' deleted", pf.name);
                if pf.len > 0 {
                    let pb = pfs.read(FileHandle(i as u32), 0, pf.len as usize).unwrap();
                    let mb = mfs.read(FileHandle(i as u32), 0, mf.len as usize).unwrap();
                    assert_eq!(pb, mb, "{kind}: '{}' content", pf.name);
                }
            }
        }
    }

    /// Live replication: attach to an empty engine, index, and the
    /// replica images are byte-identical with verified chains.
    #[test]
    fn live_stream_replicates_byte_identically() {
        let mut e = engine();
        let set = Arc::new(ReplicaSet::new(fresh_images(&e, 2), ApplyMode::Inline));
        attach(&mut e, &set);
        for (i, d) in DOCS.iter().enumerate() {
            e.add_document(d, Timestamp(1000 + i as u64)).unwrap();
        }
        for st in set.statuses() {
            assert_eq!(st.quarantined, None);
            assert_eq!(st.verified_watermark, DOCS.len() as u64);
            assert_eq!(st.chain_head, e.chain_head());
        }
        detach(&mut e);
        for (parts, fault) in ReplicaSet::reclaim(set).unwrap() {
            assert!(fault.is_none());
            assert_identical_images(&e, &parts);
        }
    }

    /// Catch-up: attach *after* indexing; the diff brings a fresh image
    /// level, and subsequent live appends keep it level.
    #[test]
    fn catch_up_then_live() {
        let mut e = engine();
        for (i, d) in DOCS.iter().take(2).enumerate() {
            e.add_document(d, Timestamp(1000 + i as u64)).unwrap();
        }
        let set = Arc::new(ReplicaSet::new(fresh_images(&e, 1), ApplyMode::Inline));
        attach(&mut e, &set);
        let statuses = set.statuses();
        let st = &statuses[0];
        assert_eq!(st.quarantined, None, "{:?}", st.quarantined);
        assert_eq!(st.verified_watermark, 2);
        for (i, d) in DOCS.iter().skip(2).enumerate() {
            e.add_document(d, Timestamp(2000 + i as u64)).unwrap();
        }
        assert_eq!(set.statuses()[0].verified_watermark, DOCS.len() as u64);
        assert_eq!(set.statuses()[0].chain_head, e.chain_head());
        detach(&mut e);
        let (parts, fault) = ReplicaSet::reclaim(set).unwrap().pop().unwrap();
        assert!(fault.is_none());
        assert_identical_images(&e, &parts);
    }

    /// Queued mode: nothing applies until drained; drained state matches
    /// the primary's chain at the drained watermark.
    #[test]
    fn queued_mode_applies_on_drain() {
        let mut e = engine();
        let set = Arc::new(ReplicaSet::new(fresh_images(&e, 1), ApplyMode::Queued));
        attach(&mut e, &set);
        for (i, d) in DOCS.iter().enumerate() {
            e.add_document(d, Timestamp(1000 + i as u64)).unwrap();
        }
        assert_eq!(set.statuses()[0].verified_watermark, 0);
        assert!(set.statuses()[0].queued > 0);
        set.drain_all();
        let statuses = set.statuses();
        let st = &statuses[0];
        assert_eq!(st.queued, 0);
        assert_eq!(st.verified_watermark, DOCS.len() as u64);
        assert_eq!(st.chain_head, e.chain_head());
    }

    /// A replica that is ahead of the primary is quarantined at attach,
    /// not rewound.
    #[test]
    fn ahead_replica_is_not_a_prefix() {
        let mut primary = engine();
        primary.add_document(DOCS[0], Timestamp(1000)).unwrap();
        // The "replica" image has more documents than the primary.
        let mut ahead = engine();
        ahead.add_document(DOCS[0], Timestamp(1000)).unwrap();
        ahead.add_document(DOCS[1], Timestamp(1001)).unwrap();
        let set = Arc::new(ReplicaSet::new(vec![ahead.into_parts()], ApplyMode::Inline));
        attach(&mut primary, &set);
        let statuses = set.statuses();
        let q = statuses[0]
            .quarantined
            .as_deref()
            .expect("should quarantine");
        assert!(q.contains("not a prefix"), "{q}");
        // Live appends skip the quarantined replica without faulting the
        // primary.
        primary.add_document(DOCS[2], Timestamp(1002)).unwrap();
        assert_eq!(primary.num_docs(), 2);
    }

    /// Partial catch-up: a replica holding a strict prefix (fewer docs)
    /// is brought level by the diff alone.
    #[test]
    fn prefix_replica_catches_up() {
        let mut primary = engine();
        let mut prefix = engine();
        for (i, d) in DOCS.iter().take(2).enumerate() {
            primary.add_document(d, Timestamp(1000 + i as u64)).unwrap();
            prefix.add_document(d, Timestamp(1000 + i as u64)).unwrap();
        }
        for (i, d) in DOCS.iter().skip(2).enumerate() {
            primary.add_document(d, Timestamp(2000 + i as u64)).unwrap();
        }
        let set = Arc::new(ReplicaSet::new(
            vec![prefix.into_parts()],
            ApplyMode::Inline,
        ));
        attach(&mut primary, &set);
        let statuses = set.statuses();
        let st = &statuses[0];
        assert_eq!(st.quarantined, None, "{:?}", st.quarantined);
        assert_eq!(st.verified_watermark, DOCS.len() as u64);
        assert_eq!(st.chain_head, primary.chain_head());
        detach(&mut primary);
        let (parts, _) = ReplicaSet::reclaim(set).unwrap().pop().unwrap();
        assert_identical_images(&primary, &parts);
    }
}
