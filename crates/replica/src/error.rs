//! The replication layer's error taxonomy.
//!
//! Every variant names the replica it condemns: a replication fault
//! quarantines *one* backup device, never the primary — the primary's
//! appends already committed before the tap observed them, so a replica
//! that cannot keep up (or diverges) is evidence against the replica,
//! not against the archive.

use tks_worm::{ChainError, ChainHead, WormError};

/// Errors surfaced by the replication protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplicaError {
    /// A replicated entry arrived out of sequence: the replica missed or
    /// reordered part of the append stream and can no longer claim to be
    /// a prefix of the primary's commit sequence.
    SequenceGap {
        /// The replica that observed the gap.
        replica: usize,
        /// The sequence number the replica expected next.
        expected: u64,
        /// The sequence number that actually arrived.
        got: u64,
    },
    /// The replica's replayed commit chain diverged from the primary's:
    /// the chain link sealed at `watermark` does not extend the head the
    /// replica verified so far.  The replica's bytes are not the
    /// primary's bytes, so it is quarantined.
    ChainDivergence {
        /// The replica whose chain diverged.
        replica: usize,
        /// The watermark the offending link was sealed at.
        watermark: u64,
        /// The head the replica's verified chain is at.
        expected: ChainHead,
        /// The `prev_head` the replicated link claimed.
        actual: ChainHead,
    },
    /// A commit point (a whole DOCMETA record) arrived without the chain
    /// link that must precede it — a protocol violation no torn primary
    /// append can produce, since the tap ships only whole appends in
    /// commit order.
    CommitWithoutLink {
        /// The replica that observed the naked commit point.
        replica: usize,
        /// The watermark the unverifiable commit would have reached.
        watermark: u64,
    },
    /// A replicated entry addressed the positional stream of a replica
    /// provisioned without a positional device (configuration mismatch
    /// between primary and replica).
    NoPositionalDevice {
        /// The replica missing the device.
        replica: usize,
    },
    /// The replica's content is not a prefix of the primary's: a file is
    /// longer on the replica, deleted on the replica but live on the
    /// primary, or present on the replica but unknown to the primary.
    NotAPrefix {
        /// The replica that is ahead of (or disjoint from) the primary.
        replica: usize,
        /// Which file broke the prefix property.
        file: String,
        /// What about it broke the property.
        detail: String,
    },
    /// A WORM-layer operation on the replica's own devices failed (a
    /// refused replay offset, a missing file, …).
    Worm(WormError),
    /// A replicated chain-link record failed to decode or extend the
    /// replica's chain.
    Chain(ChainError),
}

impl std::fmt::Display for ReplicaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplicaError::SequenceGap {
                replica,
                expected,
                got,
            } => write!(
                f,
                "replica {replica}: sequence gap (expected entry {expected}, got {got})"
            ),
            ReplicaError::ChainDivergence {
                replica,
                watermark,
                expected,
                actual,
            } => write!(
                f,
                "replica {replica}: chain divergence at watermark {watermark}: link claims prev_head {actual}, verified head is {expected}"
            ),
            ReplicaError::CommitWithoutLink { replica, watermark } => write!(
                f,
                "replica {replica}: commit point at watermark {watermark} arrived without its chain link"
            ),
            ReplicaError::NoPositionalDevice { replica } => write!(
                f,
                "replica {replica}: positional entry for a replica with no positional device"
            ),
            ReplicaError::NotAPrefix {
                replica,
                file,
                detail,
            } => write!(
                f,
                "replica {replica}: not a prefix of the primary at '{file}': {detail}"
            ),
            ReplicaError::Worm(e) => write!(f, "replica device: {e}"),
            ReplicaError::Chain(e) => write!(f, "replica chain: {e}"),
        }
    }
}

impl std::error::Error for ReplicaError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplicaError::Worm(e) => Some(e),
            ReplicaError::Chain(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WormError> for ReplicaError {
    fn from(e: WormError) -> Self {
        ReplicaError::Worm(e)
    }
}

impl From<ChainError> for ReplicaError {
    fn from(e: ChainError) -> Self {
        ReplicaError::Chain(e)
    }
}
