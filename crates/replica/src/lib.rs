//! Per-shard replication and failover: chain-verified primary/backup
//! append streams with replica promotion and read scaling.
//!
//! The WORM model (paper §2) makes replication unusually simple and
//! unusually checkable.  Devices never rewrite, so the primary's entire
//! state is its append stream, and a replica that replays that stream
//! against empty devices is byte-identical by construction.  The commit
//! chain the engine already maintains (one sealed link per document
//! commit, hash-chained from genesis) rides along on the stream, which
//! lets a replica *prove* equality after every commit instead of
//! trusting the transport: a diverging replica is detected at the first
//! bad link and quarantined, never silently served.
//!
//! | module | role |
//! |---|---|
//! | [`entry`] | the replication log: sequenced create/append/delete entries |
//! | [`apply`] | the sequenced applier — the only mutation path onto replica devices (enforced by `cargo xtask audit`) |
//! | [`set`] | fan-out: append taps on the primary, catch-up diffing, inline/queued application |
//! | [`failover`] | recovery-time promotion: choose the image with the longest verified chain prefix |
//! | [`error`] | the [`ReplicaError`] taxonomy (faults condemn replicas, never the primary) |
//!
//! Reads scale because verified replicas at the primary's exact
//! watermark serve queries interchangeably (`tks-shard` round-robins
//! across them); writes stay single-primary — the paper's threat model
//! is a regulated archive, not a multi-writer database.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apply;
pub mod entry;
pub mod error;
pub mod failover;
pub mod set;

pub use apply::Applier;
pub use entry::{FsKind, ReplEntry, ReplOp, Stream};
pub use error::ReplicaError;
pub use failover::{recover_shard, FailoverOutcome, ReplicaVerdict};
pub use set::{attach, detach, fresh_images, ApplyMode, ReplicaSet, ReplicaStatus};
