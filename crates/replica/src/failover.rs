//! Failover: recovering a shard from its primary *and* replica images,
//! promoting a replica when it preserves more verified history.
//!
//! [`recover_shard`] recovers every candidate image through the ordinary
//! [`SearchEngine::recover`] path (quarantine scan, chain
//! re-verification, tamper audit) and then chooses:
//!
//! * the **primary**, unless a verified replica strictly beats it;
//! * the verified replica with the longest verified chain prefix
//!   (highest watermark, then fewest quarantined bytes, then lowest
//!   index) when the primary failed outright, recovered fewer
//!   documents, quarantined more bytes at the same watermark, or failed
//!   chain verification that the replica passes.
//!
//! A replica is **verified** iff it recovered cleanly and its re-derived
//! commit chain matches its persisted chain head — an unverified prefix
//! is never promoted, and never consulted for reads.  Replicas that
//! match the chosen engine's exact trust state (same watermark, chain
//! head, quarantine count) are returned as **standbys** for read
//! scaling; anything else is reported in the verdicts and dropped.

use tks_core::engine::EngineParts;
use tks_core::{EngineConfig, SearchEngine};
use tks_worm::ChainHead;

/// What recovery concluded about one replica image.
#[derive(Debug, Clone)]
pub struct ReplicaVerdict {
    /// The replica's index.
    pub replica: usize,
    /// Documents the replica recovered (0 if it failed).
    pub watermark: u64,
    /// The replica's recovered chain head (None if it failed).
    pub chain_head: Option<ChainHead>,
    /// Bytes quarantined while recovering the replica.
    pub quarantined_bytes: u64,
    /// Whether the replica recovered with its chain verifying end to
    /// end (the precondition for promotion or standby reads).
    pub verified: bool,
    /// Why the replica is unusable, when it is (device error, chain
    /// mismatch, …).
    pub error: Option<String>,
}

/// The result of recovering one shard from primary + replicas.
#[derive(Debug)]
pub struct FailoverOutcome {
    /// The recovered engine serving the shard (None ⇒ the shard is
    /// degraded: every candidate failed).
    pub engine: Option<Box<SearchEngine>>,
    /// `Some(r)` when replica `r` was promoted over the primary.
    pub promoted_from: Option<usize>,
    /// Why the shard is degraded, when it is.
    pub degraded_reason: Option<String>,
    /// Bytes the primary quarantined (0 if it failed to recover).
    pub primary_quarantined: u64,
    /// The primary's recovery error, if it failed outright.
    pub primary_error: Option<String>,
    /// Per-replica recovery verdicts, in replica order.
    pub replicas: Vec<ReplicaVerdict>,
    /// Verified replicas (index + engine) whose trust state exactly
    /// matches the chosen engine's — safe to serve reads.
    pub standbys: Vec<(usize, Box<SearchEngine>)>,
}

/// One recovered candidate's promotion-relevant stats.
struct Recovered {
    engine: Box<SearchEngine>,
    watermark: u64,
    quarantined: u64,
    verified: bool,
}

fn recover_candidate(
    parts: Result<EngineParts, String>,
    config: &EngineConfig,
) -> Result<Recovered, String> {
    let parts = parts?;
    let engine = SearchEngine::recover(parts, config.clone()).map_err(|e| e.to_string())?;
    let watermark = engine.num_docs();
    let quarantined = engine.quarantined_bytes();
    let verified = engine.chain_mismatch().is_none();
    Ok(Recovered {
        engine: Box::new(engine),
        watermark,
        quarantined,
        verified,
    })
}

/// Recover a shard from its primary image and any number of replica
/// images, promoting a replica when it verifiably preserves more (see
/// module docs for the promotion rule).
///
/// Callers prepare each candidate's devices exactly as they would for a
/// non-replicated recovery (crash-recover the WORM file systems first);
/// a candidate whose preparation already failed is passed as `Err` with
/// the reason.
pub fn recover_shard(
    primary: Result<EngineParts, String>,
    replicas: Vec<Result<EngineParts, String>>,
    config: &EngineConfig,
) -> FailoverOutcome {
    let primary = recover_candidate(primary, config);
    let mut verdicts = Vec::new();
    let mut recovered: Vec<Option<Recovered>> = Vec::new();
    for (i, parts) in replicas.into_iter().enumerate() {
        match recover_candidate(parts, config) {
            Ok(r) => {
                verdicts.push(ReplicaVerdict {
                    replica: i,
                    watermark: r.watermark,
                    chain_head: Some(r.engine.chain_head()),
                    quarantined_bytes: r.quarantined,
                    verified: r.verified,
                    error: r
                        .engine
                        .chain_mismatch()
                        .map(|m| format!("chain mismatch: {m}")),
                });
                recovered.push(Some(r));
            }
            Err(e) => {
                verdicts.push(ReplicaVerdict {
                    replica: i,
                    watermark: 0,
                    chain_head: None,
                    quarantined_bytes: 0,
                    verified: false,
                    error: Some(e),
                });
                recovered.push(None);
            }
        }
    }

    let (primary, primary_error, primary_quarantined) = match primary {
        Ok(p) => {
            let q = p.quarantined;
            (Some(p), None, q)
        }
        Err(e) => (None, Some(e), 0),
    };

    // Best verified replica: longest verified prefix, then least
    // quarantine, then lowest index (stable — max_by_key keeps the last
    // maximum, so order the key to prefer earlier replicas on ties).
    let best = recovered
        .iter()
        .enumerate()
        .filter_map(|(i, r)| r.as_ref().map(|r| (i, r)))
        .filter(|(_, r)| r.verified)
        .max_by(|(ia, a), (ib, b)| {
            (
                a.watermark,
                std::cmp::Reverse(a.quarantined),
                std::cmp::Reverse(*ia),
            )
                .cmp(&(
                    b.watermark,
                    std::cmp::Reverse(b.quarantined),
                    std::cmp::Reverse(*ib),
                ))
        })
        .map(|(i, _)| i);

    // Does the best verified replica strictly beat the primary?
    let promote = match (&primary, best) {
        (_, None) => None,
        (None, Some(b)) => Some(b),
        (Some(p), Some(b)) => {
            let r = match recovered.get(b).and_then(|r| r.as_ref()) {
                Some(r) => r,
                None => return degraded_internal(verdicts, primary_error, primary_quarantined),
            };
            let beats = r.watermark > p.watermark
                || (r.watermark == p.watermark && r.quarantined < p.quarantined)
                || (r.watermark == p.watermark && !p.verified && r.verified);
            if beats {
                Some(b)
            } else {
                None
            }
        }
    };

    let (engine, promoted_from) = match promote {
        Some(b) => match recovered.get_mut(b).and_then(|r| r.take()) {
            Some(r) => (Some(r.engine), Some(b)),
            None => (None, None),
        },
        None => (primary.map(|p| p.engine), None),
    };

    let degraded_reason = if engine.is_none() {
        Some(match &primary_error {
            Some(e) => format!("primary: {e}; no verified replica to promote"),
            None => "no recoverable image".to_string(),
        })
    } else {
        None
    };

    // Standby selection: identical trust state ⇒ identical responses.
    let mut standbys = Vec::new();
    if let Some(chosen) = engine.as_deref() {
        if chosen.chain_mismatch().is_none() {
            for (i, slot) in recovered.iter_mut().enumerate() {
                let keep = match slot.as_ref() {
                    Some(r) => {
                        r.verified
                            && r.watermark == chosen.num_docs()
                            && r.quarantined == chosen.quarantined_bytes()
                            && r.engine.chain_head() == chosen.chain_head()
                            && r.engine.tamper_logs_clean() == chosen.tamper_logs_clean()
                    }
                    None => false,
                };
                if keep {
                    if let Some(r) = slot.take() {
                        standbys.push((i, r.engine));
                    }
                }
            }
        }
    }

    FailoverOutcome {
        engine,
        promoted_from,
        degraded_reason,
        primary_quarantined,
        primary_error,
        replicas: verdicts,
        standbys,
    }
}

fn degraded_internal(
    verdicts: Vec<ReplicaVerdict>,
    primary_error: Option<String>,
    primary_quarantined: u64,
) -> FailoverOutcome {
    FailoverOutcome {
        engine: None,
        promoted_from: None,
        degraded_reason: Some("internal: promoted replica unavailable".to_string()),
        primary_quarantined,
        primary_error,
        replicas: verdicts,
        standbys: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set::{attach, detach, fresh_images, ApplyMode, ReplicaSet};
    use std::sync::Arc;
    use tks_core::MergeAssignment;
    use tks_postings::Timestamp;

    fn config() -> EngineConfig {
        EngineConfig {
            block_size: 64,
            cache_bytes: 1 << 16,
            assignment: MergeAssignment::uniform(4),
            positional: true,
            ..Default::default()
        }
    }

    const DOCS: &[&str] = &[
        "retention compels trustworthy indexes",
        "worm devices refuse overwrites",
        "chain heads commit the index state",
    ];

    /// Build a primary with `n` docs and 2 live replicas; return all
    /// three images.
    fn replicated(n: usize) -> (EngineParts, Vec<EngineParts>) {
        let mut e = SearchEngine::new(config()).unwrap();
        let set = Arc::new(ReplicaSet::new(fresh_images(&e, 2), ApplyMode::Inline));
        attach(&mut e, &set);
        for (i, d) in DOCS.iter().take(n).enumerate() {
            e.add_document(d, Timestamp(1000 + i as u64)).unwrap();
        }
        detach(&mut e);
        let images = ReplicaSet::reclaim(set)
            .unwrap()
            .into_iter()
            .map(|(parts, fault)| {
                assert!(fault.is_none(), "{fault:?}");
                parts
            })
            .collect();
        (e.into_parts(), images)
    }

    #[test]
    fn healthy_primary_is_kept_and_replicas_become_standbys() {
        let (primary, images) = replicated(3);
        let out = recover_shard(Ok(primary), images.into_iter().map(Ok).collect(), &config());
        assert!(out.promoted_from.is_none());
        assert!(out.degraded_reason.is_none());
        let engine = out.engine.expect("recovered");
        assert_eq!(engine.num_docs(), 3);
        assert_eq!(out.standbys.len(), 2);
        for (_, sb) in &out.standbys {
            assert_eq!(sb.num_docs(), 3);
            assert_eq!(sb.chain_head(), engine.chain_head());
        }
    }

    #[test]
    fn dead_primary_promotes_longest_verified_replica() {
        let (_primary, images) = replicated(3);
        let out = recover_shard(
            Err("device lost".to_string()),
            images.into_iter().map(Ok).collect(),
            &config(),
        );
        assert_eq!(out.promoted_from, Some(0));
        assert_eq!(out.primary_error.as_deref(), Some("device lost"));
        let engine = out.engine.expect("promoted");
        assert_eq!(engine.num_docs(), 3);
        // The other identical replica still serves reads.
        assert_eq!(out.standbys.len(), 1);
    }

    #[test]
    fn nothing_recoverable_is_degraded() {
        let out = recover_shard(
            Err("gone".to_string()),
            vec![Err("also gone".to_string())],
            &config(),
        );
        assert!(out.engine.is_none());
        let reason = out.degraded_reason.expect("degraded");
        assert!(reason.contains("gone"), "{reason}");
        assert_eq!(out.replicas.len(), 1);
        assert!(!out.replicas[0].verified);
    }

    /// A replica holding fewer documents than the recovered primary is
    /// never promoted (promotion must not lose documents).
    #[test]
    fn shorter_replica_never_beats_recovered_primary() {
        // Replicate only the first two docs, then index a third with
        // replication detached: primary is ahead.
        let mut e = SearchEngine::new(config()).unwrap();
        let set = Arc::new(ReplicaSet::new(fresh_images(&e, 1), ApplyMode::Inline));
        attach(&mut e, &set);
        for (i, d) in DOCS.iter().take(2).enumerate() {
            e.add_document(d, Timestamp(1000 + i as u64)).unwrap();
        }
        detach(&mut e);
        e.add_document(DOCS[2], Timestamp(2000)).unwrap();
        let images: Vec<_> = ReplicaSet::reclaim(set)
            .unwrap()
            .into_iter()
            .map(|(p, _)| Ok(p))
            .collect();
        let out = recover_shard(Ok(e.into_parts()), images, &config());
        assert!(out.promoted_from.is_none());
        assert_eq!(out.engine.expect("primary").num_docs(), 3);
        // The lagging replica is verified but not an identical standby.
        assert!(out.standbys.is_empty());
        assert!(out.replicas[0].verified);
        assert_eq!(out.replicas[0].watermark, 2);
    }
}
