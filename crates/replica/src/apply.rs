//! The sequenced replay applier: the **only** mutation path onto a
//! replica's devices.
//!
//! An [`Applier`] owns one replica's [`EngineParts`] and applies
//! [`ReplEntry`]s strictly in sequence.  Every append is replayed at the
//! offset the primary committed it at ([`WormFs::replay`]), so a missed
//! or duplicated entry is refused instead of silently diverging; and the
//! two engine metadata streams get protocol-level verification on top:
//!
//! * `engine/chain` — the primary piggybacks every sealed
//!   [`ChainLink`] on the stream (it is simply the chain file's
//!   content).  The applier decodes whole 72-byte links as they arrive
//!   and verifies each one extends the head it has verified so far;
//!   a link that does not is [`ReplicaError::ChainDivergence`] and
//!   quarantines the replica.
//! * `engine/docmeta` — each whole 16-byte record is a **commit
//!   point**.  Only then does the applier *confirm* the pending link and
//!   advance its verified head/watermark pair, so the verified watermark
//!   never covers a document whose commit point has not landed on this
//!   replica ("promotion never observes an unverified prefix").
//!
//! The `cargo xtask audit` rule `replica-apply-only` denies the WORM
//! mutation vocabulary (`create`/`append`/`replay`/`delete`/…)
//! everywhere in this crate *except* this module, so the sequencing and
//! verification above cannot be bypassed from the fan-out or failover
//! layers.

use crate::entry::{FsKind, ReplEntry, ReplOp};
use crate::error::ReplicaError;
use std::collections::VecDeque;
use tks_core::engine::EngineParts;
use tks_worm::{ChainError, ChainHead, ChainLink, WormFs};

/// The commit-chain stream: mirrors `tks_core`'s (private) engine layout.
/// The coupling is safe — if core ever renamed the file, the chain
/// cursor would simply never confirm a commit and every replication test
/// would fail loudly.
pub(crate) const CHAIN_FILE: &str = "engine/chain";
/// The commit-point stream (16-byte DOCMETA records; see `tks_core`).
pub(crate) const DOCMETA_FILE: &str = "engine/docmeta";
/// Fixed size of one DOCMETA record.
const DOCMETA_RECORD: u64 = 16;

/// Chain-verification state replayed over the replica's metadata
/// streams.
#[derive(Debug, Default)]
struct ChainCursor {
    /// Head of the verified chain (genesis before any confirmed commit).
    head: Option<ChainHead>,
    /// Watermark of the last *confirmed* (commit-point-backed) link.
    verified_watermark: u64,
    /// Links decoded and chained but not yet confirmed by a commit
    /// point.  A torn primary commit leaves its link here forever —
    /// sealed, shipped, never confirmed — exactly matching the
    /// quarantinable residue on the primary.
    pending: VecDeque<ChainLink>,
    /// Undecoded tail of the chain stream (< 72 bytes after draining).
    buf: Vec<u8>,
    /// Total bytes observed on the commit-point stream.
    docmeta_bytes: u64,
    /// Whole commit-point records already matched to a pending link.
    confirmed: u64,
}

impl ChainCursor {
    fn head(&self) -> ChainHead {
        self.head.unwrap_or_else(ChainHead::genesis)
    }

    /// Absorb chain-stream bytes: decode and link-verify every whole
    /// 72-byte record.
    fn observe_chain(&mut self, replica: usize, bytes: &[u8]) -> Result<(), ReplicaError> {
        self.buf.extend_from_slice(bytes);
        while self.buf.len() >= ChainLink::ENCODED {
            let record: Vec<u8> = self.buf.drain(..ChainLink::ENCODED).collect();
            let link = ChainLink::decode(&record)?;
            let (expect_head, expect_wm) = match self.pending.back() {
                Some(last) => (last.head(), last.watermark + 1),
                None => (self.head(), self.verified_watermark + 1),
            };
            if link.prev_head != expect_head {
                return Err(ReplicaError::ChainDivergence {
                    replica,
                    watermark: link.watermark,
                    expected: expect_head,
                    actual: link.prev_head,
                });
            }
            if link.watermark != expect_wm {
                return Err(ReplicaError::Chain(ChainError::WatermarkMismatch {
                    expected: expect_wm,
                    found: link.watermark,
                }));
            }
            self.pending.push_back(link);
        }
        Ok(())
    }

    /// Absorb commit-point bytes: every completed 16-byte record
    /// confirms exactly one pending link.
    fn observe_docmeta(&mut self, replica: usize, len: u64) -> Result<(), ReplicaError> {
        self.docmeta_bytes += len;
        while self.docmeta_bytes / DOCMETA_RECORD > self.confirmed {
            match self.pending.pop_front() {
                Some(link) => {
                    self.head = Some(link.head());
                    self.verified_watermark = link.watermark;
                    self.confirmed += 1;
                }
                None => {
                    return Err(ReplicaError::CommitWithoutLink {
                        replica,
                        watermark: self.confirmed + 1,
                    })
                }
            }
        }
        Ok(())
    }
}

/// One replica's applier: its devices, its position in the replication
/// log, and its verified chain state (see module docs).
#[derive(Debug)]
pub struct Applier {
    replica: usize,
    parts: EngineParts,
    next_seq: u64,
    cursor: ChainCursor,
    /// Sticky quarantine: the first replication fault, after which the
    /// applier refuses every further entry.
    fault: Option<ReplicaError>,
}

impl Applier {
    /// Wrap a replica image in an applier, replaying chain verification
    /// over whatever the image already contains.  An image whose
    /// existing chain does not verify starts out quarantined (the
    /// applier is still returned, so its devices can be reclaimed).
    pub fn new(replica: usize, parts: EngineParts) -> Applier {
        let mut applier = Applier {
            replica,
            parts,
            next_seq: 0,
            cursor: ChainCursor::default(),
            fault: None,
        };
        if let Err(e) = applier.prime() {
            applier.fault = Some(e);
        }
        applier
    }

    /// Replay chain verification over the image's existing metadata
    /// streams (no-op for a fresh, empty image).
    fn prime(&mut self) -> Result<(), ReplicaError> {
        let doc = &self.parts.doc_fs;
        if let Ok(f) = doc.open(CHAIN_FILE) {
            let len = doc.len(f);
            let bytes = doc.read(f, 0, len as usize)?;
            self.cursor.observe_chain(self.replica, &bytes)?;
        }
        if let Ok(f) = doc.open(DOCMETA_FILE) {
            self.cursor.observe_docmeta(self.replica, doc.len(f))?;
        }
        Ok(())
    }

    /// This applier's replica index (as named in errors and statuses).
    pub fn replica(&self) -> usize {
        self.replica
    }

    /// The next sequence number this applier expects.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Re-align the expected sequence number (after catch-up, when the
    /// replica joins the live stream).
    pub fn align_seq(&mut self, seq: u64) {
        self.next_seq = seq;
    }

    /// The verified chain head: the head after the last commit point
    /// this replica has durably applied and chain-verified.
    pub fn chain_head(&self) -> ChainHead {
        self.cursor.head()
    }

    /// The verified watermark (documents whose commit points this
    /// replica has applied and chain-verified).
    pub fn verified_watermark(&self) -> u64 {
        self.cursor.verified_watermark
    }

    /// Links shipped but not yet confirmed by a commit point.
    pub fn pending_links(&self) -> usize {
        self.cursor.pending.len()
    }

    /// The sticky quarantine fault, if this replica diverged.
    pub fn quarantined(&self) -> Option<&ReplicaError> {
        self.fault.as_ref()
    }

    /// Quarantine the replica for an externally-diagnosed fault (e.g. a
    /// catch-up diff proving it is not a prefix of the primary).
    pub fn quarantine(&mut self, fault: ReplicaError) {
        if self.fault.is_none() {
            self.fault = Some(fault);
        }
    }

    /// Read-only view of the replica's devices (for catch-up diffing).
    pub fn parts(&self) -> &EngineParts {
        &self.parts
    }

    /// Reclaim the replica's devices (for recovery or persistence),
    /// along with the quarantine fault if one was recorded.
    pub fn into_parts(self) -> (EngineParts, Option<ReplicaError>) {
        (self.parts, self.fault)
    }

    /// Apply one sequenced entry.  A failure of any kind quarantines the
    /// applier: replication faults condemn the replica, never the
    /// primary (see [`ReplicaError`]).
    pub fn apply(&mut self, entry: &ReplEntry) -> Result<(), ReplicaError> {
        if let Some(fault) = &self.fault {
            return Err(fault.clone());
        }
        match self.apply_inner(entry) {
            Ok(()) => {
                self.next_seq += 1;
                Ok(())
            }
            Err(e) => {
                self.fault = Some(e.clone());
                Err(e)
            }
        }
    }

    fn apply_inner(&mut self, entry: &ReplEntry) -> Result<(), ReplicaError> {
        if entry.seq != self.next_seq {
            return Err(ReplicaError::SequenceGap {
                replica: self.replica,
                expected: self.next_seq,
                got: entry.seq,
            });
        }
        let replica = self.replica;
        let fs: &mut WormFs = match entry.stream.kind {
            FsKind::Store => &mut self.parts.store_fs,
            FsKind::Doc => &mut self.parts.doc_fs,
            FsKind::Pos => self
                .parts
                .pos_fs
                .as_mut()
                .ok_or(ReplicaError::NoPositionalDevice { replica })?,
        };
        let file = entry.stream.file.as_str();
        match &entry.op {
            ReplOp::Create {
                retention_expires_at,
            } => {
                fs.create(file, *retention_expires_at)?;
            }
            ReplOp::Append { offset } => {
                fs.replay(file, *offset, &entry.bytes)?;
                if entry.stream.kind == FsKind::Doc {
                    if file == CHAIN_FILE {
                        self.cursor.observe_chain(replica, &entry.bytes)?;
                    } else if file == DOCMETA_FILE {
                        self.cursor
                            .observe_docmeta(replica, entry.bytes.len() as u64)?;
                    }
                }
            }
            ReplOp::Delete { now } => {
                let f = fs.open(file)?;
                fs.delete(f, *now)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::Stream;
    use tks_worm::{sha256, CommitChain, WormDevice};

    fn fresh_parts() -> EngineParts {
        EngineParts {
            store_fs: WormFs::new(WormDevice::new(64)),
            doc_fs: WormFs::new(WormDevice::new(64)),
            pos_fs: None,
        }
    }

    fn entry(seq: u64, kind: FsKind, file: &str, op: ReplOp, bytes: &[u8]) -> ReplEntry {
        ReplEntry {
            seq,
            stream: Stream {
                kind,
                file: file.to_string(),
            },
            op,
            bytes: bytes.to_vec(),
        }
    }

    #[test]
    fn replays_in_sequence_and_refuses_gaps() {
        let mut a = Applier::new(0, fresh_parts());
        a.apply(&entry(
            0,
            FsKind::Store,
            "lists/0",
            ReplOp::Create {
                retention_expires_at: u64::MAX,
            },
            &[],
        ))
        .unwrap();
        a.apply(&entry(
            1,
            FsKind::Store,
            "lists/0",
            ReplOp::Append { offset: 0 },
            b"abc",
        ))
        .unwrap();
        // Skipping seq 2 is a gap; the applier quarantines itself.
        let err = a
            .apply(&entry(
                3,
                FsKind::Store,
                "lists/0",
                ReplOp::Append { offset: 3 },
                b"de",
            ))
            .unwrap_err();
        assert!(matches!(
            err,
            ReplicaError::SequenceGap {
                expected: 2,
                got: 3,
                ..
            }
        ));
        assert!(a.quarantined().is_some());
        // Even the correct next entry is now refused (sticky).
        let err = a
            .apply(&entry(
                2,
                FsKind::Store,
                "lists/0",
                ReplOp::Append { offset: 3 },
                b"de",
            ))
            .unwrap_err();
        assert!(matches!(err, ReplicaError::SequenceGap { .. }));
    }

    #[test]
    fn wrong_offset_replay_is_refused() {
        let mut a = Applier::new(0, fresh_parts());
        a.apply(&entry(
            0,
            FsKind::Doc,
            "f",
            ReplOp::Create {
                retention_expires_at: u64::MAX,
            },
            &[],
        ))
        .unwrap();
        let err = a
            .apply(&entry(
                1,
                FsKind::Doc,
                "f",
                ReplOp::Append { offset: 4 },
                b"x",
            ))
            .unwrap_err();
        assert!(matches!(
            err,
            ReplicaError::Worm(tks_worm::WormError::ReplayMismatch { .. })
        ));
    }

    /// Commit points confirm chain links; heads track the replayed
    /// chain exactly and only advance at commit points.
    #[test]
    fn chain_confirms_only_at_commit_points() {
        let mut chain = CommitChain::new();
        let mut a = Applier::new(2, fresh_parts());
        let mut seq = 0u64;
        let mut send = |a: &mut Applier, kind, file: &str, op, bytes: &[u8]| {
            a.apply(&entry(seq, kind, file, op, bytes)).unwrap();
            seq += 1;
        };
        for f in [CHAIN_FILE, DOCMETA_FILE] {
            send(
                &mut a,
                FsKind::Doc,
                f,
                ReplOp::Create {
                    retention_expires_at: u64::MAX,
                },
                &[],
            );
        }
        assert_eq!(a.chain_head(), ChainHead::genesis());

        let mut chain_off = 0u64;
        let mut meta_off = 0u64;
        for wm in 1..=3u64 {
            chain.absorb_commit_header(wm - 1, 100 + wm, 4);
            chain.absorb_text(Some(b"text"));
            let link = chain.seal(wm);
            send(
                &mut a,
                FsKind::Doc,
                CHAIN_FILE,
                ReplOp::Append { offset: chain_off },
                &link.encode(),
            );
            chain_off += ChainLink::ENCODED as u64;
            // Link shipped but no commit point yet: head unchanged.
            assert_eq!(a.verified_watermark(), wm - 1);
            assert_eq!(a.pending_links(), 1);
            send(
                &mut a,
                FsKind::Doc,
                DOCMETA_FILE,
                ReplOp::Append { offset: meta_off },
                &[0u8; 16],
            );
            meta_off += 16;
            chain.advance(&link).unwrap();
            assert_eq!(a.verified_watermark(), wm);
            assert_eq!(a.chain_head(), chain.head(), "watermark {wm}");
        }
    }

    #[test]
    fn divergent_link_quarantines() {
        let mut a = Applier::new(1, fresh_parts());
        a.apply(&entry(
            0,
            FsKind::Doc,
            CHAIN_FILE,
            ReplOp::Create {
                retention_expires_at: u64::MAX,
            },
            &[],
        ))
        .unwrap();
        let bogus = ChainLink {
            prev_head: ChainHead(sha256(b"not the verified head")),
            commit_digest: sha256(b"payload"),
            watermark: 1,
        };
        let err = a
            .apply(&entry(
                1,
                FsKind::Doc,
                CHAIN_FILE,
                ReplOp::Append { offset: 0 },
                &bogus.encode(),
            ))
            .unwrap_err();
        assert!(
            matches!(
                err,
                ReplicaError::ChainDivergence {
                    replica: 1,
                    watermark: 1,
                    ..
                }
            ),
            "{err}"
        );
        assert!(a.quarantined().is_some());
    }

    #[test]
    fn priming_replays_existing_image_state() {
        // Build an image through one applier, then re-wrap its parts:
        // the new applier must resume with the same verified state.
        let mut chain = CommitChain::new();
        let mut a = Applier::new(0, fresh_parts());
        let mut seq = 0u64;
        for f in [CHAIN_FILE, DOCMETA_FILE] {
            a.apply(&entry(
                seq,
                FsKind::Doc,
                f,
                ReplOp::Create {
                    retention_expires_at: u64::MAX,
                },
                &[],
            ))
            .unwrap();
            seq += 1;
        }
        chain.absorb_commit_header(0, 7, 1);
        chain.absorb_text(None);
        let link = chain.seal(1);
        a.apply(&entry(
            seq,
            FsKind::Doc,
            CHAIN_FILE,
            ReplOp::Append { offset: 0 },
            &link.encode(),
        ))
        .unwrap();
        seq += 1;
        a.apply(&entry(
            seq,
            FsKind::Doc,
            DOCMETA_FILE,
            ReplOp::Append { offset: 0 },
            &[0u8; 16],
        ))
        .unwrap();
        chain.advance(&link).unwrap();

        let (parts, fault) = a.into_parts();
        assert!(fault.is_none());
        let resumed = Applier::new(0, parts);
        assert!(resumed.quarantined().is_none());
        assert_eq!(resumed.verified_watermark(), 1);
        assert_eq!(resumed.chain_head(), chain.head());
    }
}
