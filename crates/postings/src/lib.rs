//! # `tks-postings` — posting-list data model
//!
//! Shared identifier types and the posting-list storage layer for the
//! trustworthy inverted index of *Mitra, Hsu & Winslett (VLDB 2006)*.
//!
//! An inverted index maps each keyword to a **posting list** of document
//! identifiers (plus per-posting metadata).  In the trustworthy setting:
//!
//! * document IDs are assigned by a strictly increasing counter, so every
//!   posting list is a strictly monotonically increasing sequence — the
//!   property jump indexes exploit (paper §4.1);
//! * posting lists live in append-only WORM files: entries are durable and
//!   the path to each entry is durable;
//! * when several terms' lists are **merged** (paper §3) to make every
//!   index append hit the storage cache, each entry additionally carries an
//!   encoding of its keyword (a *term tag*) so false positives can be
//!   eliminated at query time.
//!
//! Postings are encoded in 8 bytes, matching the paper's accounting
//! ("500 8-byte postings per document"): a 32-bit document ID (the paper
//! sizes N = 2³² documents), a 24-bit term tag, and an 8-bit in-document
//! term frequency (saturating) used by the rankers.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod block_reader;
pub mod codec;
pub mod list;
pub mod summary;
pub mod tagcode;
pub mod types;

pub use block_reader::{BlockReader, DecodedBlockCache, DecodedCacheStats};
pub use codec::{decode_block, decode_posting, encode_posting, CodecError, Posting, POSTING_SIZE};
pub use list::{ListStore, PostingListReader, StoreRecovery};
pub use summary::{BlockSummary, BlockSummaryCache, SummaryCacheStats};
pub use types::{DocId, ListId, TermId, Timestamp};
