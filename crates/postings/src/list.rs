//! WORM-backed posting-list storage.
//!
//! A [`ListStore`] owns one append-only WORM file per *physical* posting
//! list.  Under merging, several terms map to the same [`ListId`]; each
//! appended posting carries a per-list term tag (allocated densely by a
//! [`crate::codec::TagAllocator`] entries) so that query-time readers
//! can eliminate false positives exactly (paper §3, Figure 1(b)).
//!
//! The store enforces the monotonicity invariant that underpins every
//! trustworthiness argument in the paper: document IDs appended to a list
//! never decrease (and are strictly increasing per term).  A violated
//! append is refused and surfaces as a tamper attempt, because only an
//! adversary replaying old IDs can produce one.
//!
//! I/O accounting: every append reports the touched tail block to an
//! optional [`StorageCache`], with `was_empty` / `fills` computed from the
//! file geometry, reproducing the paper's cache-simulation accounting.

use crate::block_reader::{BlockReader, DecodedBlockCache, DecodedCacheStats};
use crate::codec::{
    decode_block, decode_posting, encode_posting, Posting, TagAllocator, POSTING_SIZE,
};
use crate::summary::{BlockSummary, BlockSummaryCache, SummaryCacheStats};
use crate::types::{DocId, ListId, TermId};
use std::sync::Arc;
use tks_worm::{AccessKind, StorageCache, WormDevice, WormFs};

/// Error type for posting-list operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ListError {
    /// Underlying WORM failure.
    Worm(tks_worm::WormError),
    /// An append would break the non-decreasing document-ID invariant —
    /// evidence of adversarial replay, never of legitimate operation.
    NonMonotonicAppend {
        /// Target list.
        list: ListId,
        /// Last committed document ID in the list.
        last: DocId,
        /// The offending document ID.
        attempted: DocId,
    },
    /// Same `(term, doc)` pair appended twice.
    DuplicateTermDoc {
        /// Target list.
        list: ListId,
        /// The duplicated document ID.
        doc: DocId,
    },
    /// List ID out of range.
    NoSuchList(ListId),
    /// The store geometry (block size vs. posting size) is invalid.
    Geometry(String),
    /// Recovery from raw WORM bytes found an inconsistency — evidence of
    /// tampering or corruption, never of legitimate operation.
    Recovery(String),
    /// The list ends in quarantined torn-tail bytes from a crash
    /// recovery.  Appending past them would misalign every later record,
    /// so the list is read-only until compacted (future epoch rollover).
    QuarantinedTail {
        /// Target list.
        list: ListId,
        /// Dead bytes at the tail of the list file.
        bytes: u64,
    },
}

impl std::fmt::Display for ListError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ListError::Worm(e) => write!(f, "worm error: {e}"),
            ListError::NonMonotonicAppend {
                list,
                last,
                attempted,
            } => write!(
                f,
                "non-monotonic append to {list}: {attempted} after {last} (possible tampering)"
            ),
            ListError::DuplicateTermDoc { list, doc } => {
                write!(f, "duplicate (term, {doc}) append to {list}")
            }
            ListError::NoSuchList(l) => write!(f, "no such list: {l}"),
            ListError::Geometry(msg) => write!(f, "invalid store geometry: {msg}"),
            ListError::Recovery(msg) => write!(f, "recovery refused: {msg}"),
            ListError::QuarantinedTail { list, bytes } => write!(
                f,
                "{list} has {bytes} quarantined torn-tail byte(s); appends refused until compaction"
            ),
        }
    }
}

impl std::error::Error for ListError {}

impl From<tks_worm::WormError> for ListError {
    fn from(e: tks_worm::WormError) -> Self {
        ListError::Worm(e)
    }
}

#[derive(Debug)]
struct ListMeta {
    file: Option<tks_worm::FileHandle>,
    count: u64,
    last_doc: Option<DocId>,
    /// Tag of the last appended posting, used to reject duplicate
    /// `(term, doc)` pairs cheaply (only the latest doc can collide because
    /// doc IDs never decrease).
    last_tags: Vec<u32>,
    tags: TagAllocator,
    /// Dead bytes at the tail of the list file, quarantined by a crash
    /// recovery (a torn partial record and/or whole postings of a
    /// document whose commit never completed).  Readers never see them
    /// (`count` excludes them); appends are refused while they exist.
    quarantined_bytes: u64,
    /// Largest (saturated) term frequency ever appended to the list,
    /// across all tags — a sound per-term tf upper bound for the whole
    /// list, maintained on append and re-derived by recovery.  A tail
    /// quarantine may leave it larger than any live posting's tf, which
    /// keeps it a (looser) upper bound rather than making it wrong.
    max_tf: u8,
    /// Per-tag variant of `max_tf`, indexed by tag: the largest
    /// (saturated) tf ever appended *for that term*.  Much tighter than
    /// the list-wide bound on merged lists, where one high-frequency
    /// neighbour would otherwise inflate every term's score ceiling.
    tag_max_tf: Vec<u8>,
}

impl ListMeta {
    fn new() -> Self {
        Self {
            file: None,
            count: 0,
            last_doc: None,
            last_tags: Vec::new(),
            tags: TagAllocator::new(),
            quarantined_bytes: 0,
            max_tf: 0,
            tag_max_tf: Vec::new(),
        }
    }
}

/// What a torn-tail-tolerant [`ListStore::recover`] quarantined, if
/// anything — per-list dead tail bytes plus any partial record at the
/// end of the tag dictionary.  Quarantined bytes are torn-commit residue
/// (a crash between the first index append and the document's commit
/// point); they are *evidence*, reported upward through the engine's
/// `RecoveryReport`, never silently dropped.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreRecovery {
    /// `(list, bytes)` quarantined at each torn list tail, in list order.
    pub torn_lists: Vec<(u32, u64)>,
    /// Bytes of a partial record at the tail of the tag dictionary.
    pub dict_tail_bytes: u64,
}

impl StoreRecovery {
    /// Total quarantined bytes across the store.
    pub fn total_bytes(&self) -> u64 {
        self.dict_tail_bytes + self.torn_lists.iter().map(|&(_, b)| b).sum::<u64>()
    }

    /// True when recovery found no torn tail anywhere.
    pub fn is_clean(&self) -> bool {
        self.total_bytes() == 0
    }
}

/// Size of one on-WORM tag-dictionary record: `(list, term, tag)`.
const DICT_RECORD: usize = 12;

/// Decode a little-endian `u32` at `off` in `rec`, refusing short records
/// as recovery evidence instead of panicking (the investigator-facing
/// read path must never abort).
fn u32_at(rec: &[u8], off: usize) -> Result<u32, ListError> {
    rec.get(off..off + 4)
        .and_then(|s| <[u8; 4]>::try_from(s).ok())
        .map(u32::from_le_bytes)
        .ok_or_else(|| ListError::Recovery(format!("record too short for u32 at offset {off}")))
}
/// Size of the on-WORM store header: `(block_size, num_lists)`.
const META_RECORD: usize = 12;

/// A set of WORM-backed posting lists addressed by [`ListId`].
///
/// # Example
///
/// ```
/// use tks_postings::{DocId, ListId, ListStore, TermId};
///
/// let mut store = ListStore::new(8192, 4).unwrap();
/// let list = ListId(2);
/// store.append(list, TermId(10), DocId(1), 3, None).unwrap();
/// store.append(list, TermId(11), DocId(1), 1, None).unwrap(); // merged neighbour
/// store.append(list, TermId(10), DocId(5), 2, None).unwrap();
/// assert_eq!(store.len(list).unwrap(), 3);
/// let docs: Vec<_> = store.postings_for_term(list, TermId(10)).unwrap()
///     .map(|p| p.doc).collect();
/// assert_eq!(docs, vec![DocId(1), DocId(5)]);
/// ```
#[derive(Debug)]
pub struct ListStore {
    fs: WormFs,
    lists: Vec<ListMeta>,
    block_size: usize,
    dict_file: tks_worm::FileHandle,
    /// Decoded-block LRU shared by every reader of this store (interior
    /// mutability: readers hold `&ListStore`).  See
    /// [`crate::block_reader`] for the coherence argument.
    decoded: DecodedBlockCache,
    /// Per-block summary sidecar, populated as a by-product of every
    /// block decode and validated by posting count exactly like the
    /// decoded-block LRU.  See [`crate::summary`].
    summaries: BlockSummaryCache,
}

impl ListStore {
    /// Create a store with `num_lists` (initially empty) posting lists over
    /// a fresh WORM device with `block_size`-byte blocks.
    ///
    /// Alongside the lists, the store maintains two append-only metadata
    /// files on the same device so that the *entire* store is recoverable
    /// from raw WORM bytes (see [`ListStore::recover`]):
    ///
    /// * `meta` — a write-once header `(version, block_size, num_lists)`;
    /// * `tags` — one `(list, term, tag)` record per first use of a term
    ///   in a list, in allocation order.
    ///
    /// Rejects a `block_size` that is not a positive multiple of the
    /// 8-byte posting size (postings must never straddle blocks, as in the
    /// paper's accounting) with [`ListError::Geometry`].
    pub fn new(block_size: usize, num_lists: usize) -> Result<Self, ListError> {
        if block_size < POSTING_SIZE || !block_size.is_multiple_of(POSTING_SIZE) {
            return Err(ListError::Geometry(format!(
                "block size {block_size} is not a positive multiple of the \
                 {POSTING_SIZE}-byte posting"
            )));
        }
        // The meta header stores both as u32; a value that does not fit
        // must be a typed error, not a silent truncation that would make
        // the persisted header disagree with the live geometry.
        let block_size_u32 = u32::try_from(block_size).map_err(|_| {
            ListError::Geometry(format!(
                "block size {block_size} exceeds the u32 header field"
            ))
        })?;
        let num_lists_u32 = u32::try_from(num_lists).map_err(|_| {
            ListError::Geometry(format!(
                "list count {num_lists} exceeds the u32 header field"
            ))
        })?;
        let mut fs = WormFs::new(WormDevice::new(block_size));
        let meta_file = fs.create("meta", u64::MAX)?;
        let mut header = [0u8; META_RECORD];
        header[0..4].copy_from_slice(&1u32.to_le_bytes()); // format version
        header[4..8].copy_from_slice(&block_size_u32.to_le_bytes());
        header[8..12].copy_from_slice(&num_lists_u32.to_le_bytes());
        fs.append(meta_file, &header)?;
        let dict_file = fs.create("tags", u64::MAX)?;
        // Create every list file eagerly: if files were created lazily on
        // first append, an adversary could pre-create a list's file and
        // make later *legitimate* appends fail — a denial-of-service the
        // threat model must not allow (found by the adversary fuzz test).
        let mut lists = Vec::with_capacity(num_lists);
        for l in 0..num_lists {
            let mut meta = ListMeta::new();
            meta.file = Some(fs.create(&format!("lists/{l}"), u64::MAX)?);
            lists.push(meta);
        }
        Ok(Self {
            fs,
            lists,
            block_size,
            dict_file,
            decoded: DecodedBlockCache::default(),
            summaries: BlockSummaryCache::default(),
        })
    }

    /// Rebuild a store from the raw WORM bytes of a previous instance's
    /// file system.
    ///
    /// Recovery trusts *only* the committed bytes — not any in-memory
    /// state and not end-of-log markers (which the paper's §2.3 shows are
    /// forgeable).  Every structural invariant is re-verified:
    ///
    /// * the header is well-formed and matches the device geometry;
    /// * tag records are dense, in order, and never reassigned;
    /// * every list file decodes to whole postings with non-decreasing
    ///   document IDs, no duplicate `(term, doc)` pairs, and no tag that
    ///   lacks a dictionary record.
    ///
    /// Any *interior* violation yields [`ListError::Recovery`] — the
    /// adversary can corrupt availability (by appending garbage) but
    /// never silently alter what a recovered store serves.  A partial
    /// record at the very tail of a file is different: it is exactly what
    /// a crash mid-append leaves behind, so it is quarantined (excluded
    /// from the logical list, reported in the [`StoreRecovery`]) instead
    /// of refusing the whole store.  Use
    /// [`recover_with_report`](Self::recover_with_report) to observe the
    /// quarantine.
    pub fn recover(fs: WormFs) -> Result<Self, ListError> {
        Self::recover_with_report(fs).map(|(store, _)| store)
    }

    /// [`recover`](Self::recover), also returning what was quarantined.
    pub fn recover_with_report(fs: WormFs) -> Result<(Self, StoreRecovery), ListError> {
        let meta_file = fs
            .open("meta")
            .map_err(|_| ListError::Recovery("missing meta header".into()))?;
        if fs.len(meta_file) != META_RECORD as u64 {
            return Err(ListError::Recovery(format!(
                "meta header has {} bytes, expected {META_RECORD}",
                fs.len(meta_file)
            )));
        }
        // audit:allow(hot-path-io) — one 12-byte header read per recovery.
        let header = fs.read(meta_file, 0, META_RECORD)?;
        let version = u32_at(&header, 0)?;
        let block_size = u32_at(&header, 4)? as usize;
        let num_lists = u32_at(&header, 8)? as usize;
        if version != 1 {
            return Err(ListError::Recovery(format!(
                "unknown format version {version}"
            )));
        }
        if block_size != fs.device().block_size() {
            return Err(ListError::Recovery(format!(
                "header block size {block_size} != device block size {}",
                fs.device().block_size()
            )));
        }
        let dict_file = fs
            .open("tags")
            .map_err(|_| ListError::Recovery("missing tag dictionary".into()))?;

        let mut store = ListStore {
            fs,
            lists: (0..num_lists).map(|_| ListMeta::new()).collect(),
            block_size,
            dict_file,
            decoded: DecodedBlockCache::default(),
            summaries: BlockSummaryCache::default(),
        };

        let mut report = StoreRecovery::default();

        // Replay the tag dictionary, enforcing dense in-order allocation.
        // A partial record at the tail is a torn dictionary append (the
        // crash hit before the tag's first posting could exist, so no
        // committed posting can reference it) — quarantined, not fatal.
        let dict_len = store.fs.len(store.dict_file);
        let dict_whole = dict_len - dict_len % DICT_RECORD as u64;
        report.dict_tail_bytes = dict_len - dict_whole;
        // One batched read: the dictionary is metadata on the same order of
        // size as the allocators it rebuilds, so whole-file granularity
        // replaces one tiny read per record.
        let dict_bytes = store.fs.read(store.dict_file, 0, dict_whole as usize)?;
        for rec in dict_bytes.chunks_exact(DICT_RECORD) {
            let list = u32_at(rec, 0)?;
            let term = u32_at(rec, 4)?;
            let tag = u32_at(rec, 8)?;
            let meta = store
                .lists
                .get_mut(list as usize)
                .ok_or_else(|| ListError::Recovery(format!("tag record for bad list {list}")))?;
            if meta.tags.get(TermId(term)).is_some() {
                return Err(ListError::Recovery(format!(
                    "term {term} assigned a tag twice in list {list}"
                )));
            }
            let allocated = meta.tags.tag_for(TermId(term));
            if allocated != tag {
                return Err(ListError::Recovery(format!(
                    "tag record out of order in list {list}: expected {allocated}, found {tag}"
                )));
            }
        }

        // Replay every list file block by block (one batched read and one
        // buffer decode per block), re-deriving counts and re-checking the
        // monotonicity and tag invariants.
        let mut block_buf: Vec<Posting> = Vec::new();
        for l in 0..num_lists as u32 {
            let name = format!("lists/{l}");
            let Ok(file) = store.fs.open(&name) else {
                continue;
            };
            let len = store.fs.len(file);
            // A sub-record remainder can only sit at the file tail (whole
            // postings never straddle: the block size is a multiple of
            // the posting size).  That is the torn-write signature — the
            // crash killed an 8-byte posting append part-way — so the
            // remainder is quarantined and everything before it replays.
            let torn_tail = len % POSTING_SIZE as u64;
            if torn_tail != 0 {
                report.torn_lists.push((l, torn_tail));
            }
            let count = len / POSTING_SIZE as u64;
            let known_tags = store.lists[l as usize].tags.distinct_terms() as u32;
            let mut last_doc: Option<DocId> = None;
            let mut last_tags: Vec<u32> = Vec::new();
            let mut max_tf = 0u8;
            let mut tag_max_tf = vec![0u8; known_tags as usize];
            let mut i = 0u64;
            for b in 0..store.fs.num_blocks(file) {
                let bytes = store.fs.read_block(file, b)?;
                decode_block(bytes, &mut block_buf);
                // Rebuild the block-summary sidecar from the same replay
                // pass — recovery already decodes every block, so the
                // summaries come for free.
                if let Some(summary) = BlockSummary::from_postings(&block_buf) {
                    store.summaries.insert(ListId(l), b, summary);
                    max_tf = max_tf.max(summary.max_tf);
                }
                for &p in &block_buf {
                    if p.term_tag >= known_tags {
                        return Err(ListError::Recovery(format!(
                            "list {l} posting {i} uses tag {} with no dictionary record",
                            p.term_tag
                        )));
                    }
                    match last_doc {
                        Some(d) if p.doc < d => {
                            return Err(ListError::Recovery(format!(
                                "list {l} posting {i}: doc {} after {} breaks monotonicity",
                                p.doc, d
                            )));
                        }
                        Some(d) if p.doc == d => {
                            if last_tags.contains(&p.term_tag) {
                                return Err(ListError::Recovery(format!(
                                    "list {l} posting {i}: duplicate (term, {}) pair",
                                    p.doc
                                )));
                            }
                            last_tags.push(p.term_tag);
                        }
                        _ => {
                            last_tags.clear();
                            last_tags.push(p.term_tag);
                        }
                    }
                    last_doc = Some(p.doc);
                    if let Some(slot) = tag_max_tf.get_mut(p.term_tag as usize) {
                        *slot = (*slot).max(p.tf);
                    }
                    i += 1;
                }
            }
            let meta = &mut store.lists[l as usize];
            meta.file = Some(file);
            meta.count = count;
            meta.last_doc = last_doc;
            meta.last_tags = last_tags;
            meta.quarantined_bytes = torn_tail;
            meta.max_tf = max_tf;
            meta.tag_max_tf = tag_max_tf;
        }
        Ok((store, report))
    }

    /// Quarantine the trailing `postings` whole postings of `list`:
    /// exclude them from the logical list and refuse future appends to
    /// it (their bytes stay on WORM — they cannot be removed — so any
    /// append would land *after* dead bytes and misalign the list).
    ///
    /// The engine calls this during recovery for tail postings that
    /// reference a document with no commit point (no DOCMETA record):
    /// torn-commit residue.  Quarantining non-tail postings is
    /// impossible by construction — the caller passes a trailing run.
    pub fn quarantine_tail(&mut self, list: ListId, postings: u64) -> Result<(), ListError> {
        if postings == 0 {
            return Ok(());
        }
        let meta = self.meta(list)?;
        let count = meta.count;
        let file = meta.file;
        if postings > count {
            return Err(ListError::Recovery(format!(
                "cannot quarantine {postings} postings of {list}: only {count} committed"
            )));
        }
        let new_count = count - postings;
        // Re-derive the duplicate-rejection state at the new tail.
        let (last_doc, last_tags) = if new_count == 0 {
            (None, Vec::new())
        } else {
            let file = file
                .ok_or_else(|| ListError::Recovery(format!("{list} has no backing WORM file")))?;
            let last = self.read_posting_at(file, new_count - 1)?;
            let mut tags = vec![last.term_tag];
            let mut i = new_count - 1;
            while i > 0 {
                let p = self.read_posting_at(file, i - 1)?;
                if p.doc != last.doc {
                    break;
                }
                tags.push(p.term_tag);
                i -= 1;
            }
            (Some(last.doc), tags)
        };
        let meta = self.meta_mut(list)?;
        meta.quarantined_bytes += postings * POSTING_SIZE as u64;
        meta.count = new_count;
        meta.last_doc = last_doc;
        meta.last_tags = last_tags;
        Ok(())
    }

    /// Dead torn-tail bytes quarantined at the end of `list`'s file
    /// (0 on a store that never crash-recovered).  The raw file length
    /// always equals `len(list) * 8 + quarantined_bytes(list)` plus any
    /// adversarial raw appends.
    pub fn quarantined_bytes(&self, list: ListId) -> Result<u64, ListError> {
        Ok(self.meta(list)?.quarantined_bytes)
    }

    /// Consume the store, returning the WORM file system (simulating a
    /// shutdown whose only survivor is the storage device).
    pub fn into_fs(self) -> WormFs {
        self.fs
    }

    /// Number of lists (fixed at construction; merging determines how many
    /// terms share each).
    pub fn num_lists(&self) -> usize {
        self.lists.len()
    }

    /// Disk block size in bytes.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// The underlying WORM file system (for audits and attack harnesses).
    pub fn fs(&self) -> &WormFs {
        &self.fs
    }

    /// Mutable access to the underlying file system — the adversary's raw
    /// append path, used by attack simulations.
    pub fn fs_mut(&mut self) -> &mut WormFs {
        &mut self.fs
    }

    /// Postings committed to `list`.
    pub fn len(&self, list: ListId) -> Result<u64, ListError> {
        Ok(self.meta(list)?.count)
    }

    /// Whether `list` holds no postings.
    pub fn is_empty(&self, list: ListId) -> Result<bool, ListError> {
        Ok(self.meta(list)?.count == 0)
    }

    /// Last (largest) document ID committed to `list`.
    pub fn last_doc(&self, list: ListId) -> Result<Option<DocId>, ListError> {
        Ok(self.meta(list)?.last_doc)
    }

    /// Number of distinct terms that have appended to `list`.
    pub fn distinct_terms(&self, list: ListId) -> Result<usize, ListError> {
        Ok(self.meta(list)?.tags.distinct_terms())
    }

    /// Number of disk blocks occupied by `list` (the paper's query-cost
    /// unit).
    pub fn num_blocks(&self, list: ListId) -> Result<u64, ListError> {
        let bytes = self.meta(list)?.count * POSTING_SIZE as u64;
        Ok(bytes.div_ceil(self.block_size as u64))
    }

    /// Append a posting for `(term, doc)` with in-document frequency `tf`.
    ///
    /// Enforces non-decreasing doc IDs per list and strictly increasing doc
    /// IDs per term.  If `cache` is given, the touched tail block is
    /// reported with the paper's accounting (`was_empty` for fresh blocks,
    /// `fills` when the append completes a block).
    pub fn append(
        &mut self,
        list: ListId,
        term: TermId,
        doc: DocId,
        tf: u32,
        cache: Option<&mut StorageCache>,
    ) -> Result<(), ListError> {
        let block_size = self.block_size;
        let dict_file = self.dict_file;
        let meta = self.meta_mut(list)?;
        if meta.quarantined_bytes > 0 {
            // Quarantined bytes sit at the file tail and cannot be
            // removed (WORM); appending after them would shift the
            // offset of every new posting off the 8-byte grid readers
            // assume.  Refuse with a typed error instead.
            return Err(ListError::QuarantinedTail {
                list,
                bytes: meta.quarantined_bytes,
            });
        }
        if let Some(last) = meta.last_doc {
            if doc < last {
                return Err(ListError::NonMonotonicAppend {
                    list,
                    last,
                    attempted: doc,
                });
            }
        }
        let is_new_tag = meta.tags.get(term).is_none();
        let tag = meta.tags.tag_for(term);
        if is_new_tag {
            // Persist the allocation *before* any posting can use it, so
            // recovery never sees a tag without a dictionary record.
            let mut rec = [0u8; DICT_RECORD];
            rec[0..4].copy_from_slice(&list.0.to_le_bytes());
            rec[4..8].copy_from_slice(&term.0.to_le_bytes());
            rec[8..12].copy_from_slice(&tag.to_le_bytes());
            self.fs.append(dict_file, &rec)?;
        }
        let meta = self.meta_mut(list)?;
        if meta.last_doc == Some(doc) {
            if meta.last_tags.contains(&tag) {
                return Err(ListError::DuplicateTermDoc { list, doc });
            }
            meta.last_tags.push(tag);
        } else {
            meta.last_tags.clear();
            meta.last_tags.push(tag);
        }

        // Geometry before the append, for cache accounting.
        let bytes_before = meta.count * POSTING_SIZE as u64;
        let offset_in_block = (bytes_before % block_size as u64) as usize;
        let was_empty = offset_in_block == 0;
        let fills = offset_in_block + POSTING_SIZE == block_size;

        let Some(file) = meta.file else {
            // Only reachable on a recovered store whose list file vanished
            // from the device — refuse, rather than abort, mid-append.
            return Err(ListError::Recovery(format!(
                "{list} has no backing WORM file"
            )));
        };
        let posting = Posting::new(doc, tag, tf);
        self.fs.append(file, &encode_posting(posting))?;
        let meta = &mut self.lists[list.0 as usize];
        meta.count += 1;
        meta.last_doc = Some(doc);
        meta.max_tf = meta.max_tf.max(posting.tf);
        if meta.tag_max_tf.len() <= tag as usize {
            meta.tag_max_tf.resize(tag as usize + 1, 0);
        }
        if let Some(slot) = meta.tag_max_tf.get_mut(tag as usize) {
            *slot = (*slot).max(posting.tf);
        }

        if let Some(cache) = cache {
            let tail = self.fs.blocks(file)[(bytes_before / block_size as u64) as usize];
            cache.access(tail, AccessKind::Append { was_empty, fills });
        }
        Ok(())
    }

    /// Number of whole postings per disk block (geometry guarantees the
    /// block size is a positive multiple of the posting size).
    pub fn postings_per_block(&self) -> u64 {
        (self.block_size / POSTING_SIZE) as u64
    }

    /// The decoded postings of the `block_no`-th block of `list`, served
    /// from the decoded-block LRU when possible.
    ///
    /// Only postings the store itself committed are decoded (`count`-based,
    /// never raw file length), so adversarial raw appends can never enter
    /// the cache.  A cached tail block that the list has since grown past
    /// is invalidated by its length and re-decoded — see
    /// [`crate::block_reader`].
    pub fn decoded_block(&self, list: ListId, block_no: u64) -> Result<Arc<[Posting]>, ListError> {
        let ppb = self.postings_per_block();
        let meta = self.meta(list)?;
        let start = block_no.saturating_mul(ppb);
        if start >= meta.count {
            return Ok(Vec::new().into());
        }
        let expected = (meta.count - start).min(ppb) as usize;
        if let Some(hit) = self.decoded.get(list, block_no, expected) {
            return Ok(hit);
        }
        let Some(file) = meta.file else {
            return Err(ListError::Recovery(format!(
                "{list} has no backing WORM file"
            )));
        };
        let bytes = self.fs.read_block(file, block_no)?;
        let mut out = Vec::with_capacity(expected);
        // The block may hold raw bytes past the store's own count (an
        // adversary can append to the device directly); decode only the
        // committed prefix.
        decode_block(
            bytes.get(..expected * POSTING_SIZE).unwrap_or(bytes),
            &mut out,
        );
        let arc: Arc<[Posting]> = out.into();
        self.decoded.insert(list, block_no, Arc::clone(&arc));
        // Summarise as a by-product of the decode we just paid for: the
        // next ranked query can skip this block without re-reading it.
        if let Some(summary) = BlockSummary::from_postings(&arc) {
            self.summaries.insert(list, block_no, summary);
        }
        Ok(arc)
    }

    /// The cached summary of the `block_no`-th block of `list`, if one is
    /// resident and still valid for the list's current posting count.
    ///
    /// Never does I/O: `None` means the block has not been decoded (and
    /// thereby summarised) since it last changed, so a bounded evaluator
    /// must scan it — and charge it — rather than skip it.
    pub fn cached_block_summary(
        &self,
        list: ListId,
        block_no: u64,
    ) -> Result<Option<BlockSummary>, ListError> {
        let ppb = self.postings_per_block();
        let meta = self.meta(list)?;
        let start = block_no.saturating_mul(ppb);
        if start >= meta.count {
            return Ok(None);
        }
        let expected = (meta.count - start).min(ppb) as usize;
        Ok(self.summaries.get(list, block_no, expected))
    }

    /// Largest (saturated) term frequency ever appended to `list`, across
    /// all of its tags — a sound list-wide tf upper bound for any term
    /// routed to the list (0 for an empty list).
    pub fn max_tf(&self, list: ListId) -> Result<u8, ListError> {
        Ok(self.meta(list)?.max_tf)
    }

    /// Largest (saturated) term frequency ever appended to `list` under
    /// `tag` — the per-term tf upper bound bounded evaluators use for
    /// merged lists, where [`max_tf`](Self::max_tf) would be inflated by
    /// high-frequency neighbour terms.  0 for a tag with no postings.
    /// Like the list-wide bound, a tail quarantine can leave it looser
    /// than any live posting, never too small.
    pub fn max_tf_for_tag(&self, list: ListId, tag: u32) -> Result<u8, ListError> {
        Ok(self
            .meta(list)?
            .tag_max_tf
            .get(tag as usize)
            .copied()
            .unwrap_or(0))
    }

    /// Counters of the block-summary sidecar cache.
    pub fn summary_cache_stats(&self) -> SummaryCacheStats {
        self.summaries.stats()
    }

    /// Stream `list` one decoded block at a time (slice-based iteration).
    pub fn block_reader(&self, list: ListId) -> Result<BlockReader<'_>, ListError> {
        BlockReader::new(self, list)
    }

    /// Counters of the decoded-block LRU shared by this store's readers.
    pub fn decoded_cache_stats(&self) -> DecodedCacheStats {
        self.decoded.stats()
    }

    /// Read and decode the single posting at `ordinal` in `file` — the one
    /// shared single-posting read path (raw audits and tests; the query
    /// scan path goes through [`decoded_block`](Self::decoded_block)
    /// instead).
    pub fn read_posting_at(
        &self,
        file: tks_worm::FileHandle,
        ordinal: u64,
    ) -> Result<Posting, ListError> {
        let mut buf = [0u8; POSTING_SIZE];
        self.fs
            .read_exact_at(file, ordinal * POSTING_SIZE as u64, &mut buf)?;
        Ok(decode_posting(buf))
    }

    /// Decode all postings of `list` in commit order.
    pub fn postings(&self, list: ListId) -> Result<PostingListReader<'_>, ListError> {
        let meta = self.meta(list)?;
        Ok(PostingListReader {
            store: self,
            list,
            next: 0,
            count: meta.count,
            idx: 0,
            block: None,
        })
    }

    /// Decode the postings of `list` that belong to `term` (exact
    /// false-positive elimination via the per-list tag).
    pub fn postings_for_term(
        &self,
        list: ListId,
        term: TermId,
    ) -> Result<impl Iterator<Item = Posting> + '_, ListError> {
        let meta = self.meta(list)?;
        let tag = meta.tags.get(term);
        let reader = self.postings(list)?;
        Ok(reader.filter(move |p| Some(p.term_tag) == tag))
    }

    /// The per-list tag for `term`, if the term has ever been appended.
    pub fn tag_of(&self, list: ListId, term: TermId) -> Result<Option<u32>, ListError> {
        Ok(self.meta(list)?.tags.get(term))
    }

    /// The term behind a dense per-list tag (inverse of
    /// [`tag_of`](Self::tag_of)), used by recovery and verification.
    pub fn term_of_tag(&self, list: ListId, tag: u32) -> Result<Option<TermId>, ListError> {
        Ok(self.meta(list)?.tags.term_of(tag))
    }

    /// The ordinal (0-based index within the list's full posting
    /// sequence, foreign terms included) of the posting for
    /// `(term, doc)`, used to address lockstep sidecar records such as
    /// positional data.
    pub fn posting_ordinal(
        &self,
        list: ListId,
        term: TermId,
        doc: DocId,
    ) -> Result<Option<u64>, ListError> {
        let Some(tag) = self.meta(list)?.tags.get(term) else {
            return Ok(None);
        };
        for (i, p) in self.postings(list)?.enumerate() {
            if p.doc == doc && p.term_tag == tag {
                return Ok(Some(i as u64));
            }
            if p.doc > doc {
                return Ok(None);
            }
        }
        Ok(None)
    }

    /// Raw committed byte length of the list file (0 when never written).
    /// A live store can cross-check this against its logical posting count
    /// (`len(list) * 8`): any excess means raw adversarial appends, and a
    /// misaligned excess additionally shifts every later decode — which is
    /// why the engine audit treats *any* mismatch as tamper evidence.
    pub fn raw_len(&self, list: ListId) -> Result<u64, ListError> {
        let meta = self.meta(list)?;
        Ok(meta.file.map(|f| self.fs.len(f)).unwrap_or(0))
    }

    /// Audit `list`: re-scan the raw WORM bytes and verify the
    /// non-decreasing doc-ID invariant, returning the position of the first
    /// violation if any.  An adversary cannot *remove* postings (WORM), so
    /// the only corruption she can cause via raw device appends is a
    /// monotonicity break — which this audit surfaces.
    pub fn audit_monotonic(&self, list: ListId) -> Result<Option<u64>, ListError> {
        let mut last: Option<DocId> = None;
        for (i, p) in self.raw_scan(list)?.enumerate() {
            if let Some(l) = last {
                if p.doc < l {
                    return Ok(Some(i as u64));
                }
            }
            last = Some(p.doc);
        }
        Ok(None)
    }

    /// Scan the *raw committed bytes* of the list file (possibly longer
    /// than the store's own count, if an adversary appended directly to the
    /// device).  Used by audits.
    ///
    /// Deliberately bypasses the decoded-block cache: audits must see
    /// exactly the device bytes, including postings the store never
    /// committed.
    pub fn raw_scan(&self, list: ListId) -> Result<impl Iterator<Item = Posting> + '_, ListError> {
        let meta = self.meta(list)?;
        let file = meta.file;
        let count = file
            .map(|f| self.fs.len(f) / POSTING_SIZE as u64)
            .unwrap_or(0);
        Ok((0..count).map_while(move |i| self.read_posting_at(file?, i).ok()))
    }

    fn meta(&self, list: ListId) -> Result<&ListMeta, ListError> {
        self.lists
            .get(list.0 as usize)
            .ok_or(ListError::NoSuchList(list))
    }

    fn meta_mut(&mut self, list: ListId) -> Result<&mut ListMeta, ListError> {
        self.lists
            .get_mut(list.0 as usize)
            .ok_or(ListError::NoSuchList(list))
    }
}

/// Iterator over the committed postings of one list.
///
/// Serves postings from whole decoded blocks: one batched block read (and
/// one storage-cache touch) per block instead of one tiny `WormFs::read`
/// per posting, with decodes shared across readers via the store's
/// [`DecodedBlockCache`].
#[derive(Debug)]
pub struct PostingListReader<'a> {
    store: &'a ListStore,
    list: ListId,
    next: u64,
    count: u64,
    /// Position within `block` of the posting `next` refers to.
    idx: usize,
    /// Decoded postings of the block containing `next`, once fetched.
    block: Option<Arc<[Posting]>>,
}

impl Iterator for PostingListReader<'_> {
    type Item = Posting;

    fn next(&mut self) -> Option<Posting> {
        if self.next >= self.count {
            return None;
        }
        // Hot path: serve straight from the cached slice — no division,
        // no block-number comparison per posting.
        if let Some(&p) = self.block.as_ref().and_then(|b| b.get(self.idx)) {
            self.idx += 1;
            self.next += 1;
            return Some(p);
        }
        // Exhausted (or never fetched) the current block: fetch the one
        // containing `next`.  A tail block an earlier pass cached short is
        // re-decoded at its grown length by `decoded_block`.
        let ppb = self.store.postings_per_block();
        let decoded = self.store.decoded_block(self.list, self.next / ppb).ok()?;
        self.idx = (self.next % ppb) as usize;
        let p = decoded.get(self.idx).copied();
        self.block = Some(decoded);
        if p.is_some() {
            self.idx += 1;
            self.next += 1;
        }
        p
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.count - self.next) as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for PostingListReader<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use tks_worm::CacheConfig;

    fn store() -> ListStore {
        ListStore::new(64, 4).unwrap() // 8 postings per block
    }

    #[test]
    fn header_overflowing_geometry_is_a_typed_error_not_truncation() {
        // The meta header carries block size as a u32; 2^33 is a valid
        // multiple of the posting size but cannot fit, and must be
        // refused before anything reaches the device (the legacy
        // `as u32` cast would have persisted block size 0).
        match ListStore::new(1usize << 33, 4) {
            Err(ListError::Geometry(msg)) => assert!(msg.contains("u32"), "{msg}"),
            other => panic!("expected Geometry error, got {other:?}"),
        }
    }

    #[test]
    fn append_and_read_back() {
        let mut s = store();
        for d in [1u64, 4, 9, 16] {
            s.append(ListId(0), TermId(5), DocId(d), 1, None).unwrap();
        }
        let docs: Vec<_> = s.postings(ListId(0)).unwrap().map(|p| p.doc.0).collect();
        assert_eq!(docs, vec![1, 4, 9, 16]);
        assert_eq!(s.len(ListId(0)).unwrap(), 4);
        assert_eq!(s.last_doc(ListId(0)).unwrap(), Some(DocId(16)));
    }

    #[test]
    fn merged_list_filters_by_term() {
        let mut s = store();
        let l = ListId(1);
        s.append(l, TermId(1), DocId(1), 1, None).unwrap();
        s.append(l, TermId(2), DocId(1), 1, None).unwrap();
        s.append(l, TermId(1), DocId(3), 1, None).unwrap();
        s.append(l, TermId(2), DocId(4), 1, None).unwrap();
        let t1: Vec<_> = s
            .postings_for_term(l, TermId(1))
            .unwrap()
            .map(|p| p.doc.0)
            .collect();
        let t2: Vec<_> = s
            .postings_for_term(l, TermId(2))
            .unwrap()
            .map(|p| p.doc.0)
            .collect();
        assert_eq!(t1, vec![1, 3]);
        assert_eq!(t2, vec![1, 4]);
        assert_eq!(s.distinct_terms(l).unwrap(), 2);
        // Unknown term yields nothing.
        assert_eq!(s.postings_for_term(l, TermId(99)).unwrap().count(), 0);
    }

    #[test]
    fn non_monotonic_append_rejected() {
        let mut s = store();
        s.append(ListId(0), TermId(1), DocId(10), 1, None).unwrap();
        let err = s
            .append(ListId(0), TermId(1), DocId(9), 1, None)
            .unwrap_err();
        assert!(matches!(err, ListError::NonMonotonicAppend { .. }));
        // Equal doc for a *different* term is legal (merged lists).
        s.append(ListId(0), TermId(2), DocId(10), 1, None).unwrap();
        // Equal doc for the *same* term is a duplicate.
        let err = s
            .append(ListId(0), TermId(2), DocId(10), 1, None)
            .unwrap_err();
        assert!(matches!(err, ListError::DuplicateTermDoc { .. }));
    }

    #[test]
    fn block_count_matches_geometry() {
        let mut s = store(); // 8 postings/block
        let l = ListId(0);
        for d in 0..9 {
            s.append(l, TermId(0), DocId(d), 1, None).unwrap();
        }
        assert_eq!(s.num_blocks(l).unwrap(), 2);
    }

    #[test]
    fn cache_accounting_counts_fill_writes() {
        let mut s = store(); // 8 postings/block
        let mut cache = StorageCache::new(CacheConfig::new(64 * 100, 64));
        let l = ListId(0);
        for d in 0..8 {
            s.append(l, TermId(0), DocId(d), 1, Some(&mut cache))
                .unwrap();
        }
        // Exactly one write I/O: the block filled on the 8th append.
        assert_eq!(cache.stats().write_ios, 1);
        assert_eq!(cache.stats().read_ios, 0);
        // Next append opens a fresh block: no I/O.
        s.append(l, TermId(0), DocId(8), 1, Some(&mut cache))
            .unwrap();
        assert_eq!(cache.stats().total_ios(), 1);
    }

    #[test]
    fn audit_detects_adversarial_raw_append() {
        let mut s = store();
        let l = ListId(0);
        s.append(l, TermId(0), DocId(5), 1, None).unwrap();
        s.append(l, TermId(0), DocId(9), 1, None).unwrap();
        assert_eq!(s.audit_monotonic(l).unwrap(), None);
        // Mala appends a smaller doc id directly to the WORM file,
        // bypassing the store (she has superuser access to the device).
        let file = s.fs().open("lists/0").unwrap();
        let evil = encode_posting(Posting::new(DocId(2), 0, 1));
        s.fs_mut().append(file, &evil).unwrap();
        // The entry is now on WORM (cannot be removed) but the audit
        // flags it.
        assert_eq!(s.audit_monotonic(l).unwrap(), Some(2));
    }

    #[test]
    fn empty_and_missing_lists() {
        let s = store();
        assert!(s.is_empty(ListId(0)).unwrap());
        assert_eq!(s.postings(ListId(0)).unwrap().count(), 0);
        assert!(matches!(s.len(ListId(9)), Err(ListError::NoSuchList(_))));
    }

    #[test]
    fn recovery_roundtrip_preserves_everything() {
        let mut s = store();
        for d in 0..20u64 {
            s.append(ListId(0), TermId(d as u32 % 3), DocId(d), 1, None)
                .unwrap();
            s.append(ListId(2), TermId(7), DocId(d), 2, None).unwrap();
        }
        let before: Vec<Vec<Posting>> = (0..4)
            .map(|l| s.postings(ListId(l)).unwrap().collect())
            .collect();
        let tags_before: Vec<_> = (0..3u32)
            .map(|t| s.tag_of(ListId(0), TermId(t)).unwrap())
            .collect();
        let r = ListStore::recover(s.into_fs()).unwrap();
        for l in 0..4u32 {
            let after: Vec<Posting> = r.postings(ListId(l)).unwrap().collect();
            assert_eq!(after, before[l as usize], "list {l}");
        }
        for t in 0..3u32 {
            assert_eq!(
                r.tag_of(ListId(0), TermId(t)).unwrap(),
                tags_before[t as usize]
            );
        }
        assert_eq!(r.last_doc(ListId(2)).unwrap(), Some(DocId(19)));
        assert_eq!(r.num_lists(), 4);
        // The recovered store keeps accepting appends with correct
        // invariants.
        let mut r = r;
        assert!(r.append(ListId(2), TermId(7), DocId(5), 1, None).is_err());
        r.append(ListId(2), TermId(7), DocId(25), 1, None).unwrap();
    }

    #[test]
    fn recovery_quarantines_truncated_list_tail() {
        // A sub-posting remainder at the file tail is the torn-write
        // signature: recovery quarantines it instead of refusing the
        // whole store, and the quarantined list goes read-only.
        let mut s = store();
        s.append(ListId(0), TermId(0), DocId(1), 1, None).unwrap();
        let f = s.fs().open("lists/0").unwrap();
        s.fs_mut().append(f, &[0xDE, 0xAD]).unwrap();
        let (r, report) = ListStore::recover_with_report(s.into_fs()).unwrap();
        assert_eq!(report.torn_lists, vec![(0, 2)]);
        assert_eq!(report.total_bytes(), 2);
        assert!(!report.is_clean());
        // The whole posting before the tear survives.
        let postings: Vec<Posting> = r.postings(ListId(0)).unwrap().collect();
        assert_eq!(postings.len(), 1);
        assert_eq!(postings[0].doc, DocId(1));
        assert_eq!(r.quarantined_bytes(ListId(0)).unwrap(), 2);
        // Appending past dead tail bytes is refused with a typed error.
        let mut r = r;
        let err = r
            .append(ListId(0), TermId(0), DocId(2), 1, None)
            .unwrap_err();
        assert!(
            matches!(err, ListError::QuarantinedTail { bytes: 2, .. }),
            "{err}"
        );
        // Untouched lists still accept appends.
        r.append(ListId(1), TermId(1), DocId(2), 1, None).unwrap();
    }

    #[test]
    fn recovery_quarantines_torn_dict_tail() {
        let mut s = store();
        s.append(ListId(0), TermId(0), DocId(1), 1, None).unwrap();
        let dict = s.fs().open("tags").unwrap();
        s.fs_mut().append(dict, &[0x01, 0x02, 0x03]).unwrap(); // partial record
        let (r, report) = ListStore::recover_with_report(s.into_fs()).unwrap();
        assert_eq!(report.dict_tail_bytes, 3);
        assert!(report.torn_lists.is_empty());
        assert_eq!(r.tag_of(ListId(0), TermId(0)).unwrap(), Some(0));
    }

    #[test]
    fn quarantine_tail_drops_trailing_postings_and_restores_dup_state() {
        let mut s = store();
        s.append(ListId(0), TermId(0), DocId(1), 1, None).unwrap();
        s.append(ListId(0), TermId(1), DocId(1), 1, None).unwrap();
        s.append(ListId(0), TermId(0), DocId(2), 1, None).unwrap();
        s.append(ListId(0), TermId(1), DocId(2), 1, None).unwrap();
        // Quarantine doc 2's two postings (torn-commit residue).
        s.quarantine_tail(ListId(0), 2).unwrap();
        assert_eq!(s.len(ListId(0)).unwrap(), 2);
        assert_eq!(s.last_doc(ListId(0)).unwrap(), Some(DocId(1)));
        assert_eq!(s.quarantined_bytes(ListId(0)).unwrap(), 16);
        let postings: Vec<Posting> = s.postings(ListId(0)).unwrap().collect();
        assert_eq!(postings.iter().map(|p| p.doc.0).collect::<Vec<_>>(), [1, 1]);
        // Over-quarantining is refused.
        assert!(s.quarantine_tail(ListId(0), 3).is_err());
        // Quarantining zero postings is a no-op and keeps the list live.
        let mut live = store();
        live.append(ListId(1), TermId(0), DocId(1), 1, None)
            .unwrap();
        live.quarantine_tail(ListId(1), 0).unwrap();
        live.append(ListId(1), TermId(0), DocId(2), 1, None)
            .unwrap();
    }

    #[test]
    fn recovery_refuses_out_of_order_postings() {
        let mut s = store();
        s.append(ListId(0), TermId(0), DocId(5), 1, None).unwrap();
        s.append(ListId(0), TermId(0), DocId(9), 1, None).unwrap();
        let f = s.fs().open("lists/0").unwrap();
        let evil = encode_posting(Posting::new(DocId(2), 0, 1));
        s.fs_mut().append(f, &evil).unwrap();
        let err = ListStore::recover(s.into_fs()).unwrap_err();
        assert!(err.to_string().contains("monotonicity"), "{err}");
    }

    #[test]
    fn recovery_refuses_postings_with_unregistered_tags() {
        let mut s = store();
        s.append(ListId(0), TermId(0), DocId(5), 1, None).unwrap();
        // A forged posting with a tag that has no dictionary record.
        let f = s.fs().open("lists/0").unwrap();
        let evil = encode_posting(Posting::new(DocId(9), 7, 1));
        s.fs_mut().append(f, &evil).unwrap();
        let err = ListStore::recover(s.into_fs()).unwrap_err();
        assert!(err.to_string().contains("no dictionary record"), "{err}");
    }

    #[test]
    fn recovery_refuses_double_tag_assignment() {
        let mut s = store();
        s.append(ListId(0), TermId(3), DocId(1), 1, None).unwrap();
        // Mala appends a second dictionary record re-binding term 3.
        let dict = s.fs().open("tags").unwrap();
        let mut rec = [0u8; 12];
        rec[0..4].copy_from_slice(&0u32.to_le_bytes());
        rec[4..8].copy_from_slice(&3u32.to_le_bytes());
        rec[8..12].copy_from_slice(&1u32.to_le_bytes());
        s.fs_mut().append(dict, &rec).unwrap();
        let err = ListStore::recover(s.into_fs()).unwrap_err();
        assert!(err.to_string().contains("twice"), "{err}");
    }

    #[test]
    fn recovery_refuses_missing_header() {
        let fs = WormFs::new(WormDevice::new(64));
        let err = ListStore::recover(fs).unwrap_err();
        assert!(matches!(err, ListError::Recovery(_)));
    }

    #[test]
    fn reader_size_hint_exact() {
        let mut s = store();
        for d in 0..5 {
            s.append(ListId(0), TermId(0), DocId(d), 1, None).unwrap();
        }
        let r = s.postings(ListId(0)).unwrap();
        assert_eq!(r.len(), 5);
    }

    #[test]
    fn decode_summarises_blocks_as_a_by_product() {
        let mut s = store(); // 8 postings/block
        for d in 0..12u64 {
            s.append(ListId(0), TermId(0), DocId(d), (d + 1) as u32, None)
                .unwrap();
        }
        // Nothing decoded yet: no summaries, so nothing can be skipped.
        assert_eq!(s.cached_block_summary(ListId(0), 0).unwrap(), None);
        let _ = s.postings(ListId(0)).unwrap().count();
        let b0 = s.cached_block_summary(ListId(0), 0).unwrap().unwrap();
        assert_eq!((b0.len, b0.max_tf), (8, 8));
        assert_eq!((b0.min_doc, b0.max_doc), (DocId(0), DocId(7)));
        let b1 = s.cached_block_summary(ListId(0), 1).unwrap().unwrap();
        assert_eq!((b1.len, b1.max_tf), (4, 12));
        assert_eq!((b1.min_doc, b1.max_doc), (DocId(8), DocId(11)));
        // Past-the-end blocks have no summary.
        assert_eq!(s.cached_block_summary(ListId(0), 2).unwrap(), None);
        assert_eq!(s.max_tf(ListId(0)).unwrap(), 12);
        assert_eq!(s.max_tf(ListId(1)).unwrap(), 0);
    }

    #[test]
    fn tail_growth_invalidates_stale_summary() {
        let mut s = store();
        s.append(ListId(0), TermId(0), DocId(1), 3, None).unwrap();
        let _ = s.postings(ListId(0)).unwrap().count();
        assert!(s.cached_block_summary(ListId(0), 0).unwrap().is_some());
        // The tail grows: the one-posting summary is stale-short and must
        // not be served (its max_tf would miss the new posting).
        s.append(ListId(0), TermId(0), DocId(2), 9, None).unwrap();
        assert_eq!(s.cached_block_summary(ListId(0), 0).unwrap(), None);
        let _ = s.postings(ListId(0)).unwrap().count();
        let summary = s.cached_block_summary(ListId(0), 0).unwrap().unwrap();
        assert_eq!((summary.len, summary.max_tf), (2, 9));
    }

    #[test]
    fn recovery_rebuilds_summaries_and_max_tf() {
        let mut s = store();
        for d in 0..10u64 {
            s.append(ListId(0), TermId(0), DocId(d), (2 * d + 1) as u32, None)
                .unwrap();
        }
        let r = ListStore::recover(s.into_fs()).unwrap();
        // Summaries come back from recovery's replay, before any query
        // touches the store.
        let b0 = r.cached_block_summary(ListId(0), 0).unwrap().unwrap();
        assert_eq!((b0.len, b0.max_tf), (8, 15));
        let b1 = r.cached_block_summary(ListId(0), 1).unwrap().unwrap();
        assert_eq!((b1.len, b1.max_tf), (2, 19));
        assert_eq!(r.max_tf(ListId(0)).unwrap(), 19);
    }
}
