//! Per-block posting summaries for bounded top-k evaluation.
//!
//! The paper's query cost is counted in *blocks read* (Figure 8(c)).  A
//! ranked disjunctive query does not need most of those blocks: once a
//! top-k heap is full, any block whose best possible score contribution
//! cannot beat the current k-th score is irrelevant.  Deciding that
//! requires a tiny amount of per-block metadata — the maximum term
//! frequency and the document-ID range — which this module maintains as a
//! cache-resident *sidecar* of the decoded-block LRU:
//!
//! * [`BlockSummary`] — `(len, max_tf, min_doc, max_doc)` for one
//!   `(list, block)` pair.  `max_tf` upper-bounds every tf in the block
//!   (all tags of a merged list, so the bound is sound for *any* term
//!   routed to the list); `min_doc`/`max_doc` bound the block's document
//!   range, enabling visibility-watermark skips and accumulator-overlap
//!   checks.
//! * [`BlockSummaryCache`] — a shared LRU keyed by `(list, block_no)`,
//!   validated by posting count exactly like the decoded-block cache: a
//!   summary of a tail block that has since grown is *stale-short*, never
//!   wrong, and is dropped on lookup (append-watermark invalidation with
//!   no writer → reader signalling).
//!
//! Summaries are computed **once, at decode time** — the store summarises
//! each block as a by-product of decoding it (`ListStore::decoded_block`)
//! and during recovery's block replay — and never require extra I/O.  A
//! block whose summary is not yet resident simply cannot be skipped; it
//! is scanned (and charged to the Figure 8(c) accounting), which
//! summarises it for every later query.  Full (non-tail) WORM blocks are
//! immutable, so their summaries stay valid forever.

use crate::codec::Posting;
use crate::types::{DocId, ListId};
use std::collections::HashMap;
use std::sync::Mutex;
use tks_worm::LruCore;

/// Default capacity of the block-summary LRU, in blocks.
///
/// A summary is ~24 bytes, so the default covers a paper-scale store
/// (1M documents × 500 postings at 8 KB blocks ≈ 500 Ki blocks) in a few
/// tens of MB — the whole point is that skip decisions never do I/O.
pub const DEFAULT_BLOCK_SUMMARIES: usize = 1 << 20;

/// Cache key: `(physical list, file-relative block number)`.
type Key = (u32, u64);

/// Decode-time metadata of one posting block (see the [module docs](self)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockSummary {
    /// Number of committed postings summarised (the validity stamp: a
    /// summary is served only while the block still holds exactly this
    /// many postings).
    pub len: u32,
    /// Largest in-document term frequency in the block, across *all* tags
    /// of the (possibly merged) list — a sound per-term tf bound.
    pub max_tf: u8,
    /// Smallest document ID in the block (first posting; doc IDs are
    /// non-decreasing within a list).
    pub min_doc: DocId,
    /// Largest document ID in the block (last posting).
    pub max_doc: DocId,
}

impl BlockSummary {
    /// Summarise a decoded block.  Returns `None` for an empty slice —
    /// an empty block has nothing to bound and nothing to skip.
    pub fn from_postings(postings: &[Posting]) -> Option<Self> {
        let (first, last) = (postings.first()?, postings.last()?);
        let max_tf = postings.iter().map(|p| p.tf).max().unwrap_or(0);
        Some(Self {
            len: postings.len() as u32,
            max_tf,
            min_doc: first.doc,
            max_doc: last.doc,
        })
    }
}

/// Counters describing block-summary cache behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SummaryCacheStats {
    /// Lookups served from a resident, still-valid summary.
    pub hits: u64,
    /// Lookups that found no usable summary (the caller must scan the
    /// block — and thereby summarise it).
    pub misses: u64,
    /// Entries dropped because the list grew past them (tail blocks
    /// summarised before later appends).
    pub invalidations: u64,
    /// Summaries currently resident.
    pub resident: usize,
}

#[derive(Debug, Default)]
struct Inner {
    lru: LruCore<Key>,
    map: HashMap<Key, BlockSummary>,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

/// A shared LRU of per-block summaries (see the [module docs](self)).
///
/// All methods take `&self`; the cache is safe to share across the reader
/// snapshots of a concurrent query service, exactly like
/// [`DecodedBlockCache`](crate::DecodedBlockCache).
#[derive(Debug)]
pub struct BlockSummaryCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl BlockSummaryCache {
    /// An empty cache holding at most `capacity` summaries (`0` disables
    /// summarisation entirely: every lookup misses, every block scans).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner::default()),
            capacity,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned lock only means another reader panicked mid-lookup;
        // the map itself is always structurally valid, so recover it.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// The summary of `(list, block_no)` if present *and* still covering
    /// exactly `expected_len` postings.  A shorter entry was computed
    /// before the list's tail grew into this block; it is dropped and
    /// counted as an invalidation so the caller re-scans (and re-inserts).
    pub fn get(&self, list: ListId, block_no: u64, expected_len: usize) -> Option<BlockSummary> {
        let key = (list.0, block_no);
        let mut inner = self.lock();
        match inner.map.get(&key) {
            Some(&entry) if entry.len as usize == expected_len => {
                inner.lru.touch(&key);
                inner.hits += 1;
                Some(entry)
            }
            Some(_) => {
                inner.map.remove(&key);
                inner.lru.remove(&key);
                inner.invalidations += 1;
                inner.misses += 1;
                None
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Insert a freshly computed summary, evicting the least recently
    /// used entry at capacity.  Duplicate inserts (two readers racing on
    /// the same block) are harmless: both summaries are identical.
    pub fn insert(&self, list: ListId, block_no: u64, summary: BlockSummary) {
        if self.capacity == 0 {
            return;
        }
        let key = (list.0, block_no);
        let mut inner = self.lock();
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            if let Some(victim) = inner.lru.pop_lru() {
                inner.map.remove(&victim);
            }
        }
        inner.map.insert(key, summary);
        inner.lru.insert(key);
    }

    /// Snapshot of the cache counters.
    pub fn stats(&self) -> SummaryCacheStats {
        let inner = self.lock();
        SummaryCacheStats {
            hits: inner.hits,
            misses: inner.misses,
            invalidations: inner.invalidations,
            resident: inner.map.len(),
        }
    }
}

impl Default for BlockSummaryCache {
    fn default() -> Self {
        Self::new(DEFAULT_BLOCK_SUMMARIES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Posting;

    fn p(doc: u64, tf: u8) -> Posting {
        Posting {
            doc: DocId(doc),
            term_tag: 0,
            tf,
        }
    }

    #[test]
    fn summarises_range_and_max_tf() {
        let s = BlockSummary::from_postings(&[p(3, 1), p(5, 9), p(5, 2), p(8, 4)]).unwrap();
        assert_eq!(s.len, 4);
        assert_eq!(s.max_tf, 9);
        assert_eq!(s.min_doc, DocId(3));
        assert_eq!(s.max_doc, DocId(8));
        assert!(BlockSummary::from_postings(&[]).is_none());
    }

    #[test]
    fn stale_short_summary_invalidated_by_length() {
        let cache = BlockSummaryCache::new(8);
        let short = BlockSummary::from_postings(&[p(1, 1)]).unwrap();
        cache.insert(ListId(0), 0, short);
        // The tail grew to two postings: the one-posting summary must not
        // be served.
        assert!(cache.get(ListId(0), 0, 2).is_none());
        assert_eq!(cache.stats().invalidations, 1);
        // Re-inserted at the grown length, it serves again.
        let grown = BlockSummary::from_postings(&[p(1, 1), p(2, 3)]).unwrap();
        cache.insert(ListId(0), 0, grown);
        assert_eq!(cache.get(ListId(0), 0, 2), Some(grown));
    }

    #[test]
    fn capacity_bounds_resident_summaries() {
        let cache = BlockSummaryCache::new(2);
        let s = BlockSummary::from_postings(&[p(1, 1)]).unwrap();
        cache.insert(ListId(0), 0, s);
        cache.insert(ListId(0), 1, s);
        cache.insert(ListId(0), 2, s);
        assert_eq!(cache.stats().resident, 2, "LRU must evict to capacity");
        assert!(cache.get(ListId(0), 0, 1).is_none(), "0 was evicted");
        assert!(cache.get(ListId(0), 2, 1).is_some());
    }

    #[test]
    fn zero_capacity_cache_never_retains() {
        let cache = BlockSummaryCache::new(0);
        let s = BlockSummary::from_postings(&[p(1, 1)]).unwrap();
        cache.insert(ListId(0), 0, s);
        assert!(cache.get(ListId(0), 0, 1).is_none());
        assert_eq!(cache.stats().resident, 0);
    }
}
