//! Block-granular posting reads with a decoded-block LRU.
//!
//! The paper's cost accounting is counted in *blocks read*, but a naive
//! reader issues one tiny `WormFs::read` per 8-byte posting, paying call
//! overhead and a storage-cache LRU traversal for every entry of the same
//! block.  This module makes the block the unit of work on the read path:
//!
//! * [`DecodedBlockCache`] — a small LRU of already-decoded blocks keyed by
//!   `(list, block_no)`, sitting *above* the WORM storage cache.  Entries
//!   are validated against the list's current posting count, so a tail
//!   block that grew since it was cached (the only way committed WORM data
//!   can change) is re-decoded transparently: append-watermark
//!   invalidation without any writer → reader signalling.
//! * [`BlockReader`] — streams a list one decoded block at a time as cheap
//!   `Arc<[Posting]>` slices, for callers that want slice-based iteration
//!   instead of a posting-at-a-time iterator.
//!
//! Full (non-tail) blocks of a WORM list are immutable forever, which is
//! what makes the cache trivially coherent: an entry can only ever be
//! *stale-short* (decoded before the tail grew), never wrong.

use crate::codec::Posting;
use crate::list::{ListError, ListStore};
use crate::types::ListId;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use tks_worm::LruCore;

/// Default capacity of the decoded-block LRU, in blocks.
///
/// At the paper's 8 KB block size this caches 256 Ki postings (≈4 MB
/// decoded) — enough to keep the merged lists a conjunctive workload
/// rescans fully decoded across queries, small next to the MB-scale
/// storage caches the paper budgets below it.
pub const DEFAULT_DECODED_BLOCKS: usize = 256;

/// Cache key: `(physical list, file-relative block number)`.
type Key = (u32, u64);

/// Counters describing decoded-block cache behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DecodedCacheStats {
    /// Lookups served from an already-decoded block.
    pub hits: u64,
    /// Lookups that had to decode a block.
    pub misses: u64,
    /// Entries discarded because the list grew past them (tail blocks
    /// decoded before later appends).
    pub invalidations: u64,
    /// Blocks currently resident.
    pub resident: usize,
}

#[derive(Debug, Default)]
struct Inner {
    lru: LruCore<Key>,
    map: HashMap<Key, Arc<[Posting]>>,
    hits: u64,
    misses: u64,
    invalidations: u64,
}

/// A shared LRU of decoded posting blocks (see the [module docs](self)).
///
/// All methods take `&self`; the cache is safe to share across the reader
/// snapshots of a concurrent query service.
#[derive(Debug)]
pub struct DecodedBlockCache {
    inner: Mutex<Inner>,
    capacity: usize,
}

impl DecodedBlockCache {
    /// An empty cache holding at most `capacity` decoded blocks
    /// (`0` disables caching entirely: every lookup decodes).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(Inner::default()),
            capacity,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned lock only means another reader panicked mid-lookup;
        // the map itself is always structurally valid, so recover it.
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// The cached decode of `(list, block_no)` if present *and* still
    /// `expected_len` postings long.  A shorter entry was decoded before
    /// the list's tail grew into this block; it is dropped and counted as
    /// an invalidation so the caller re-decodes.
    pub fn get(&self, list: ListId, block_no: u64, expected_len: usize) -> Option<Arc<[Posting]>> {
        let key = (list.0, block_no);
        let mut inner = self.lock();
        match inner.map.get(&key) {
            Some(entry) if entry.len() == expected_len => {
                let entry = Arc::clone(entry);
                inner.lru.touch(&key);
                inner.hits += 1;
                Some(entry)
            }
            Some(_) => {
                inner.map.remove(&key);
                inner.lru.remove(&key);
                inner.invalidations += 1;
                inner.misses += 1;
                None
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Insert a freshly decoded block, evicting the least recently used
    /// entry at capacity.  Duplicate inserts (two readers racing on the
    /// same miss) are harmless: last write wins and both decodes are
    /// identical.
    pub fn insert(&self, list: ListId, block_no: u64, postings: Arc<[Posting]>) {
        if self.capacity == 0 {
            return;
        }
        let key = (list.0, block_no);
        let mut inner = self.lock();
        if !inner.map.contains_key(&key) && inner.map.len() >= self.capacity {
            if let Some(victim) = inner.lru.pop_lru() {
                inner.map.remove(&victim);
            }
        }
        inner.map.insert(key, postings);
        inner.lru.insert(key);
    }

    /// Snapshot of the cache counters.
    pub fn stats(&self) -> DecodedCacheStats {
        let inner = self.lock();
        DecodedCacheStats {
            hits: inner.hits,
            misses: inner.misses,
            invalidations: inner.invalidations,
            resident: inner.map.len(),
        }
    }
}

impl Default for DecodedBlockCache {
    fn default() -> Self {
        Self::new(DEFAULT_DECODED_BLOCKS)
    }
}

/// Streams the committed postings of one list a decoded block at a time.
///
/// Each item is the full decoded contents of one block as an
/// `Arc<[Posting]>` — slice-based iteration with no per-posting copies,
/// served through the store's [`DecodedBlockCache`].  Concatenating the
/// yielded slices reproduces exactly the per-posting
/// [`PostingListReader`](crate::PostingListReader) sequence.
#[derive(Debug)]
pub struct BlockReader<'a> {
    store: &'a ListStore,
    list: ListId,
    next_block: u64,
    num_blocks: u64,
}

impl<'a> BlockReader<'a> {
    pub(crate) fn new(store: &'a ListStore, list: ListId) -> Result<Self, ListError> {
        let num_blocks = store.num_blocks(list)?;
        Ok(Self {
            store,
            list,
            next_block: 0,
            num_blocks,
        })
    }

    /// Blocks not yet yielded.
    pub fn remaining_blocks(&self) -> u64 {
        self.num_blocks - self.next_block
    }
}

impl Iterator for BlockReader<'_> {
    type Item = Arc<[Posting]>;

    fn next(&mut self) -> Option<Arc<[Posting]>> {
        if self.next_block >= self.num_blocks {
            return None;
        }
        let block = self.store.decoded_block(self.list, self.next_block).ok()?;
        self.next_block += 1;
        Some(block)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.remaining_blocks() as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for BlockReader<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{DocId, TermId};

    fn store() -> ListStore {
        ListStore::new(64, 2).unwrap() // 8 postings per block
    }

    #[test]
    fn block_reader_concatenation_equals_posting_reader() {
        let mut s = store();
        for d in 0..20u64 {
            s.append(ListId(0), TermId((d % 3) as u32), DocId(d), 1, None)
                .unwrap();
        }
        let via_blocks: Vec<Posting> = s
            .block_reader(ListId(0))
            .unwrap()
            .flat_map(|b| b.iter().copied().collect::<Vec<_>>())
            .collect();
        let via_postings: Vec<Posting> = s.postings(ListId(0)).unwrap().collect();
        assert_eq!(via_blocks, via_postings);
        assert_eq!(s.block_reader(ListId(0)).unwrap().len(), 3); // ceil(20/8)
    }

    #[test]
    fn tail_growth_invalidates_cached_block() {
        let mut s = store();
        s.append(ListId(0), TermId(0), DocId(1), 1, None).unwrap();
        let first: Vec<_> = s.postings(ListId(0)).unwrap().collect();
        assert_eq!(first.len(), 1);
        // The tail block is now cached with one posting.  Growing the list
        // must invalidate it, not serve the stale decode.
        s.append(ListId(0), TermId(0), DocId(2), 1, None).unwrap();
        let docs: Vec<u64> = s.postings(ListId(0)).unwrap().map(|p| p.doc.0).collect();
        assert_eq!(docs, vec![1, 2]);
        assert!(
            s.decoded_cache_stats().invalidations >= 1,
            "stale tail decode must be counted as invalidated"
        );
    }

    #[test]
    fn repeated_scans_hit_the_decoded_cache() {
        let mut s = store();
        for d in 0..16u64 {
            s.append(ListId(1), TermId(0), DocId(d), 1, None).unwrap();
        }
        let _ = s.postings(ListId(1)).unwrap().count();
        let misses_after_first = s.decoded_cache_stats().misses;
        let _ = s.postings(ListId(1)).unwrap().count();
        let stats = s.decoded_cache_stats();
        assert_eq!(
            stats.misses, misses_after_first,
            "second scan must decode nothing"
        );
        assert!(stats.hits >= 2, "both blocks should hit on the rescan");
    }

    #[test]
    fn capacity_bounds_resident_blocks() {
        let cache = DecodedBlockCache::new(2);
        let empty: Arc<[Posting]> = Vec::new().into();
        cache.insert(ListId(0), 0, Arc::clone(&empty));
        cache.insert(ListId(0), 1, Arc::clone(&empty));
        cache.insert(ListId(0), 2, Arc::clone(&empty));
        let stats = cache.stats();
        assert_eq!(stats.resident, 2, "LRU must evict down to capacity");
        assert!(cache.get(ListId(0), 0, 0).is_none(), "0 was evicted");
        assert!(cache.get(ListId(0), 2, 0).is_some());
    }

    #[test]
    fn zero_capacity_cache_never_retains() {
        let cache = DecodedBlockCache::new(0);
        let empty: Arc<[Posting]> = Vec::new().into();
        cache.insert(ListId(0), 0, empty);
        assert!(cache.get(ListId(0), 0, 0).is_none());
        assert_eq!(cache.stats().resident, 0);
    }
}
