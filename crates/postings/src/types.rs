//! Core identifier types shared across the system.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a committed document (record).
///
/// Document IDs are assigned by a strictly increasing counter at commit
/// time (paper §4.1: "document IDs are assigned through an increasing
/// counter"), which makes every posting list a strictly monotonically
/// increasing sequence — the invariant on which jump indexes and their
/// trustworthiness guarantees rest.
///
/// The paper sizes indexes for N = 2³² documents, so a `u32` payload is
/// faithful; we use `u64` internally and enforce the 2³² ceiling in the
/// 8-byte posting codec.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct DocId(pub u64);

impl DocId {
    /// The next document ID in commit order.
    pub fn next(self) -> DocId {
        DocId(self.0 + 1)
    }
}

impl fmt::Display for DocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "doc#{}", self.0)
    }
}

/// Identifier of a distinct keyword (term) in the vocabulary.
///
/// Term IDs are dense.  By convention in the synthetic corpus, term IDs are
/// assigned in descending document-frequency order (term 0 is the most
/// common word), which makes rank computations trivial; nothing else
/// depends on that convention.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct TermId(pub u32);

impl fmt::Display for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "term#{}", self.0)
    }
}

/// Identifier of a physical posting list.
///
/// Under merging (paper §3) several terms share one list, so `ListId` and
/// [`TermId`] are distinct notions: a *merge assignment* maps each term to
/// the list that stores its postings.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct ListId(pub u32);

impl fmt::Display for ListId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "list#{}", self.0)
    }
}

/// A logical commit timestamp (e.g. seconds since an epoch).
///
/// Commit timestamps are non-decreasing in commit order, so a jump index
/// over them supports trustworthy time-range restriction (paper §5).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub u64);

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doc_id_ordering_and_next() {
        assert!(DocId(3) < DocId(4));
        assert_eq!(DocId(3).next(), DocId(4));
    }

    #[test]
    fn display_forms() {
        assert_eq!(DocId(7).to_string(), "doc#7");
        assert_eq!(TermId(7).to_string(), "term#7");
        assert_eq!(ListId(7).to_string(), "list#7");
        assert_eq!(Timestamp(7).to_string(), "t=7");
    }
}
