//! Compact keyword encodings for merged posting lists.
//!
//! Paper §3, on the cost of merging: "we must store (an encoding of) the
//! keyword with each entry in a merged list.  The encoding can be stored
//! in log(q) bits, where q is the number of posting lists that are merged
//! together.  **This overhead can be reduced further if an encoding
//! scheme like Huffman encoding is used, since keyword occurrences within
//! merged posting lists are unlikely to be uniformly distributed.**"
//!
//! This module implements both:
//!
//! * the fixed `⌈log₂ q⌉`-bit code
//!   ([`tag_bits_for_group`](crate::codec::tag_bits_for_group)), and
//! * a canonical **Huffman code** over per-tag posting frequencies
//!   ([`HuffmanTagCode`]), with bit-exact encode/decode of tag streams.
//!
//! Because Zipf's law concentrates postings on a few member terms of each
//! merged list, Huffman coding beats the fixed code substantially in
//! practice — the `ablation` harness in `tks-bench` quantifies it on the
//! synthetic corpus.

use std::collections::BinaryHeap;

/// A canonical Huffman code over dense tags `0..n`.
///
/// # Example
///
/// ```
/// use tks_postings::tagcode::HuffmanTagCode;
///
/// // One hot tag, several cold ones.
/// let code = HuffmanTagCode::from_frequencies(&[90, 4, 3, 2, 1]);
/// assert!(code.code_len(0) < code.code_len(4));
/// let tags = vec![0, 0, 3, 0, 4, 1, 0];
/// let bits = code.encode(&tags);
/// assert_eq!(code.decode(&bits, tags.len()), tags);
/// // Far below the fixed ⌈log₂ 5⌉ = 3 bits per tag on this skew:
/// assert!(code.expected_bits(&[90, 4, 3, 2, 1]) < 1.6);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HuffmanTagCode {
    /// Code length (bits) per tag; 0 only in the degenerate 1-tag case.
    lengths: Vec<u8>,
    /// Canonical codewords per tag (MSB-first within the length).
    codes: Vec<u32>,
    /// Decode table: tags sorted by (length, tag) with first-code offsets
    /// per length.
    sorted_tags: Vec<u32>,
    first_code: Vec<u32>,   // per length 0..=MAX
    first_index: Vec<u32>,  // per length 0..=MAX
    count_at_len: Vec<u32>, // per length 0..=MAX
    max_len: u8,
}

/// An encoded tag stream: packed bits, MSB-first.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TagBits {
    /// Packed bits.
    pub bytes: Vec<u8>,
    /// Number of meaningful bits.
    pub bit_len: u64,
}

impl HuffmanTagCode {
    /// Build a code for tags `0..freqs.len()` from their posting
    /// frequencies.  Zero-frequency tags get valid (long) codes so the
    /// code is total.
    ///
    /// # Panics
    ///
    /// Panics (via `assert!`) if `freqs` is empty; use
    /// [`try_from_frequencies`](Self::try_from_frequencies) to get a typed
    /// error instead.
    pub fn from_frequencies(freqs: &[u64]) -> Self {
        assert!(!freqs.is_empty(), "need at least one tag");
        Self::build(freqs)
    }

    /// Fallible variant of [`from_frequencies`](Self::from_frequencies):
    /// an empty tag universe yields [`CodecError::EmptyCodebook`] instead
    /// of a panic.
    pub fn try_from_frequencies(freqs: &[u64]) -> Result<Self, crate::codec::CodecError> {
        if freqs.is_empty() {
            return Err(crate::codec::CodecError::EmptyCodebook);
        }
        Ok(Self::build(freqs))
    }

    /// The one implementation behind both constructors; `freqs` is
    /// non-empty here.
    fn build(freqs: &[u64]) -> Self {
        let n = freqs.len();
        // Degenerate single-tag case: zero bits per posting.
        if n == 1 {
            return Self {
                lengths: vec![0],
                codes: vec![0],
                sorted_tags: vec![0],
                first_code: Vec::new(),
                first_index: Vec::new(),
                count_at_len: Vec::new(),
                max_len: 0,
            };
        }
        // Standard Huffman over (freq + 1) so zero-frequency tags stay
        // encodable without distorting the hot tags.
        #[derive(PartialEq, Eq)]
        struct Node {
            weight: u64,
            id: usize,
        }
        impl Ord for Node {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                other.weight.cmp(&self.weight).then(other.id.cmp(&self.id))
            }
        }
        impl PartialOrd for Node {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        let mut heap: BinaryHeap<Node> = (0..n)
            .map(|t| Node {
                weight: freqs[t] + 1,
                id: t,
            })
            .collect();
        // parent[] over 2n-1 implicit nodes.
        let mut parent = vec![usize::MAX; 2 * n - 1];
        let mut next_id = n;
        while heap.len() > 1 {
            let (Some(a), Some(b)) = (heap.pop(), heap.pop()) else {
                break; // unreachable: the loop guard holds ≥ 2 nodes
            };
            parent[a.id] = next_id;
            parent[b.id] = next_id;
            heap.push(Node {
                weight: a.weight + b.weight,
                id: next_id,
            });
            next_id += 1;
        }
        let mut lengths = vec![0u8; n];
        for (t, len) in lengths.iter_mut().enumerate() {
            let mut d = 0u8;
            let mut cur = t;
            while parent[cur] != usize::MAX {
                cur = parent[cur];
                d += 1;
            }
            *len = d.max(1);
        }
        Self::from_lengths(lengths)
    }

    /// Build the canonical code tables from per-tag lengths.
    fn from_lengths(lengths: Vec<u8>) -> Self {
        let max_len = lengths.iter().copied().max().unwrap_or(0);
        let mut sorted_tags: Vec<u32> = (0..lengths.len() as u32).collect();
        sorted_tags.sort_by_key(|&t| (lengths[t as usize], t));
        let mut codes = vec![0u32; lengths.len()];
        let mut first_code = vec![0u32; max_len as usize + 1];
        let mut first_index = vec![0u32; max_len as usize + 1];
        let mut count_at_len = vec![0u32; max_len as usize + 1];
        for &l in &lengths {
            count_at_len[l as usize] += 1;
        }
        let mut code = 0u32;
        let mut prev_len = 0u8;
        for (i, &t) in sorted_tags.iter().enumerate() {
            let len = lengths[t as usize];
            code <<= len - prev_len;
            if len != prev_len {
                first_code[len as usize] = code;
                first_index[len as usize] = i as u32;
            }
            codes[t as usize] = code;
            code += 1;
            prev_len = len;
        }
        Self {
            lengths,
            codes,
            sorted_tags,
            first_code,
            first_index,
            count_at_len,
            max_len,
        }
    }

    /// Number of tags covered.
    pub fn num_tags(&self) -> usize {
        self.lengths.len()
    }

    /// Code length in bits for `tag`.
    pub fn code_len(&self, tag: u32) -> u32 {
        self.lengths[tag as usize] as u32
    }

    /// Expected bits per posting under the given tag frequencies.
    pub fn expected_bits(&self, freqs: &[u64]) -> f64 {
        let total: u64 = freqs.iter().sum();
        if total == 0 {
            return 0.0;
        }
        freqs
            .iter()
            .enumerate()
            .map(|(t, &f)| f as f64 * self.lengths[t] as f64)
            .sum::<f64>()
            / total as f64
    }

    /// Encode a tag stream.
    pub fn encode(&self, tags: &[u32]) -> TagBits {
        let mut out = TagBits::default();
        for &t in tags {
            let len = self.lengths[t as usize] as u32;
            let code = self.codes[t as usize];
            for i in (0..len).rev() {
                let bit = (code >> i) & 1;
                let byte = (out.bit_len / 8) as usize;
                if byte == out.bytes.len() {
                    out.bytes.push(0);
                }
                if bit == 1 {
                    out.bytes[byte] |= 1 << (7 - (out.bit_len % 8));
                }
                out.bit_len += 1;
            }
        }
        out
    }

    /// Decode `count` tags from an encoded stream.
    ///
    /// # Panics
    ///
    /// Panics on a truncated or corrupt stream (the engine treats that as
    /// tamper evidence before decoding, via length bookkeeping).
    pub fn decode(&self, bits: &TagBits, count: usize) -> Vec<u32> {
        let mut out = Vec::with_capacity(count);
        if self.max_len == 0 {
            // Single-tag code: everything is tag 0.
            out.resize(count, 0);
            return out;
        }
        let mut pos = 0u64;
        let read_bit = |p: u64| -> u32 {
            let byte = bits.bytes[(p / 8) as usize];
            ((byte >> (7 - (p % 8))) & 1) as u32
        };
        for _ in 0..count {
            let mut code = 0u32;
            let mut len = 0u8;
            loop {
                assert!(pos < bits.bit_len, "truncated tag stream");
                code = (code << 1) | read_bit(pos);
                pos += 1;
                len += 1;
                // Canonical decoding: at length `len`, codes for that
                // length start at first_code[len]; the tag index is the
                // offset from it.
                let fc = self.first_code[len as usize];
                let fi = self.first_index[len as usize];
                let count_at_len = self.count_at_len[len as usize];
                if count_at_len > 0 && code >= fc && code - fc < count_at_len {
                    out.push(self.sorted_tags[(fi + (code - fc)) as usize]);
                    break;
                }
                assert!(len <= self.max_len, "corrupt tag stream");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_tag_is_free() {
        let code = HuffmanTagCode::from_frequencies(&[10]);
        assert_eq!(code.code_len(0), 0);
        let bits = code.encode(&[0, 0, 0]);
        assert_eq!(bits.bit_len, 0);
        assert_eq!(code.decode(&bits, 3), vec![0, 0, 0]);
    }

    #[test]
    fn two_tags_one_bit_each() {
        let code = HuffmanTagCode::from_frequencies(&[5, 5]);
        assert_eq!(code.code_len(0), 1);
        assert_eq!(code.code_len(1), 1);
        let tags = vec![0, 1, 1, 0];
        assert_eq!(code.decode(&code.encode(&tags), 4), tags);
    }

    #[test]
    fn skewed_distribution_beats_fixed_code() {
        // 32 tags, Zipf-ish skew: fixed code is 5 bits.
        let freqs: Vec<u64> = (0..32).map(|t| 10_000 / (t as u64 + 1)).collect();
        let code = HuffmanTagCode::from_frequencies(&freqs);
        let avg = code.expected_bits(&freqs);
        assert!(avg < 5.0, "Huffman {avg:.2} bits must beat fixed 5 bits");
        // Kraft inequality: Σ 2^-len ≤ 1 — the code is prefix-free.
        let kraft: f64 = (0..32).map(|t| 2f64.powi(-(code.code_len(t) as i32))).sum();
        assert!(kraft <= 1.0 + 1e-9, "kraft {kraft}");
    }

    #[test]
    fn zero_frequency_tags_remain_encodable() {
        let code = HuffmanTagCode::from_frequencies(&[100, 0, 0, 50]);
        let tags = vec![1, 2, 0, 3];
        assert_eq!(code.decode(&code.encode(&tags), 4), tags);
    }

    #[test]
    fn uniform_distribution_near_log_q() {
        let freqs = vec![10u64; 16];
        let code = HuffmanTagCode::from_frequencies(&freqs);
        let avg = code.expected_bits(&freqs);
        assert!(
            (avg - 4.0).abs() < 0.5,
            "uniform 16 tags ≈ 4 bits, got {avg}"
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_roundtrip(freqs in proptest::collection::vec(0u64..1000, 1..40),
                          raw_tags in proptest::collection::vec(0u32..40, 0..200)) {
            let n = freqs.len() as u32;
            let tags: Vec<u32> = raw_tags.into_iter().map(|t| t % n).collect();
            let code = HuffmanTagCode::from_frequencies(&freqs);
            let bits = code.encode(&tags);
            prop_assert_eq!(code.decode(&bits, tags.len()), tags);
        }

        #[test]
        fn prop_huffman_never_worse_than_fixed(freqs in proptest::collection::vec(1u64..10_000, 2..64)) {
            let code = HuffmanTagCode::from_frequencies(&freqs);
            let avg = code.expected_bits(&freqs);
            let fixed = (freqs.len() as f64).log2().ceil();
            // Huffman is within one bit of entropy and never beaten by the
            // fixed-width code by more than rounding slack.
            prop_assert!(avg <= fixed + 1e-9, "avg {} vs fixed {}", avg, fixed);
        }

        #[test]
        fn prop_code_is_prefix_free(freqs in proptest::collection::vec(0u64..500, 2..48)) {
            let code = HuffmanTagCode::from_frequencies(&freqs);
            let n = freqs.len() as u32;
            for a in 0..n {
                for b in 0..n {
                    if a == b { continue; }
                    let (la, lb) = (code.code_len(a), code.code_len(b));
                    if la <= lb {
                        let ca = code.codes[a as usize];
                        let cb = code.codes[b as usize] >> (lb - la);
                        prop_assert!(ca != cb, "code {} is a prefix of {}", a, b);
                    }
                }
            }
        }
    }
}
