//! The 8-byte posting encoding.
//!
//! The paper's cost accounting assumes "500 8-byte postings per document"
//! (§3) and notes that under merging "we must store (an encoding of) the
//! keyword with each entry in a merged list … in log(q) bits, where q is the
//! number of posting lists that are merged together" (§3, bullet 2).
//!
//! Layout (little-endian `u64`):
//!
//! ```text
//!  63        32 31        8 7      0
//! +------------+-----------+--------+
//! |  doc id    | term tag  |  tf    |
//! |  (32 bit)  | (24 bit)  | (8 bit)|
//! +------------+-----------+--------+
//! ```
//!
//! * **doc id** — 32 bits, per the paper's N = 2³² sizing;
//! * **term tag** — 24 bits identifying the keyword *within its merged
//!   list*.  With uniform merging of ~10⁶ terms into 2¹⁵ lists, q ≈ 32
//!   terms share a list, so 24 bits is generous; the cost model charges
//!   only the paper's log(q)-bit figure, while the storage format keeps a
//!   fixed 8-byte entry as the paper's accounting does;
//! * **tf** — the in-document term frequency, saturating at 255, used by
//!   the cosine / Okapi BM25 rankers.

use crate::types::{DocId, TermId};
use serde::{Deserialize, Serialize};

/// Size of one encoded posting in bytes.
pub const POSTING_SIZE: usize = 8;

/// Maximum representable document ID (the paper's N = 2³² sizing).
pub const MAX_DOC_ID: u64 = (1 << 32) - 1;

/// Maximum representable term tag (24 bits).
pub const MAX_TERM_TAG: u32 = (1 << 24) - 1;

/// One posting-list entry: a document reference plus metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Posting {
    /// The document containing the keyword.
    pub doc: DocId,
    /// The keyword's tag within its (possibly merged) list.  For unmerged
    /// lists the tag is conventionally 0.
    pub term_tag: u32,
    /// In-document term frequency, saturated to 255.
    pub tf: u8,
}

/// Errors from the posting/tag codec layer.
///
/// Part of the workspace error taxonomy: `tks_core::TksError` absorbs
/// this type via `From`, so codec failures propagate as typed errors
/// instead of panics anywhere on the investigator-facing read path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// A document ID exceeds the paper's `N = 2³²` sizing and cannot be
    /// represented in the 8-byte posting.
    DocIdOverflow {
        /// The offending document ID.
        doc: u64,
    },
    /// A term tag exceeds the 24-bit tag field.
    TagOverflow {
        /// The offending tag.
        tag: u32,
    },
    /// A tag code was requested over an empty tag universe.
    EmptyCodebook,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::DocIdOverflow { doc } => {
                write!(f, "document id {doc} exceeds the 2^32 posting sizing")
            }
            CodecError::TagOverflow { tag } => {
                write!(f, "term tag {tag} exceeds the 24-bit tag field")
            }
            CodecError::EmptyCodebook => write!(f, "tag code requested over zero tags"),
        }
    }
}

impl std::error::Error for CodecError {}

impl Posting {
    /// Construct a posting, saturating `tf` and checking ranges in debug
    /// builds.
    pub fn new(doc: DocId, term_tag: u32, tf: u32) -> Self {
        debug_assert!(doc.0 <= MAX_DOC_ID, "doc id exceeds 2^32 sizing");
        debug_assert!(term_tag <= MAX_TERM_TAG, "term tag exceeds 24 bits");
        Self {
            doc,
            term_tag,
            tf: tf.min(255) as u8,
        }
    }

    /// Range-checked construction: rejects IDs and tags that the 8-byte
    /// encoding cannot represent instead of silently truncating them in
    /// release builds.
    pub fn try_new(doc: DocId, term_tag: u32, tf: u32) -> Result<Self, CodecError> {
        if doc.0 > MAX_DOC_ID {
            return Err(CodecError::DocIdOverflow { doc: doc.0 });
        }
        if term_tag > MAX_TERM_TAG {
            return Err(CodecError::TagOverflow { tag: term_tag });
        }
        Ok(Self::new(doc, term_tag, tf))
    }
}

/// Encode a posting into its 8-byte on-WORM representation.
pub fn encode_posting(p: Posting) -> [u8; POSTING_SIZE] {
    let word: u64 = (p.doc.0 << 32) | ((p.term_tag as u64) << 8) | p.tf as u64;
    word.to_le_bytes()
}

/// Decode an 8-byte on-WORM posting.
pub fn decode_posting(bytes: [u8; POSTING_SIZE]) -> Posting {
    let word = u64::from_le_bytes(bytes);
    Posting {
        doc: DocId(word >> 32),
        term_tag: ((word >> 8) & MAX_TERM_TAG as u64) as u32,
        tf: (word & 0xFF) as u8,
    }
}

/// Decode a block's worth of committed postings into `out`, which is
/// cleared first so callers can reuse one buffer across blocks.
///
/// Trailing bytes that do not form a whole 8-byte posting are ignored,
/// matching the floor semantics of raw scans (`raw_len / POSTING_SIZE`).
/// This is the batch unit of the block-granular read path: one call
/// decodes every posting of a block with no per-posting array copies.
pub fn decode_block(bytes: &[u8], out: &mut Vec<Posting>) {
    out.clear();
    out.reserve(bytes.len() / POSTING_SIZE);
    for chunk in bytes.chunks_exact(POSTING_SIZE) {
        // `chunks_exact(POSTING_SIZE)` guarantees every chunk is exactly
        // POSTING_SIZE bytes, so the array conversion is infallible.
        debug_assert_eq!(chunk.len(), POSTING_SIZE);
        let mut arr = [0u8; POSTING_SIZE];
        arr.copy_from_slice(chunk);
        out.push(decode_posting(arr));
    }
    debug_assert_eq!(out.len(), bytes.len() / POSTING_SIZE);
}

/// Number of bits the paper charges for the keyword encoding in a merged
/// list of `q` terms: ⌈log₂(q)⌉ ("The encoding can be stored in log(q)
/// bits").  Returns 0 for unmerged lists (q ≤ 1).
pub fn tag_bits_for_group(q: usize) -> u32 {
    if q <= 1 {
        0
    } else {
        (q as u64).next_power_of_two().trailing_zeros()
    }
}

/// A per-list tag allocator: maps the terms sharing a merged list to dense
/// local tags, so the reader can filter false positives exactly.
#[derive(Debug, Default, Clone)]
pub struct TagAllocator {
    assigned: std::collections::HashMap<TermId, u32>,
    /// Inverse mapping: `by_tag[tag]` = term (tags are dense).
    by_tag: Vec<TermId>,
}

impl TagAllocator {
    /// Create an empty allocator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tag for `term`, allocating the next dense tag on first use.
    pub fn tag_for(&mut self, term: TermId) -> u32 {
        let next = self.assigned.len() as u32;
        let tag = *self.assigned.entry(term).or_insert(next);
        if tag == next {
            self.by_tag.push(term);
        }
        tag
    }

    /// Tag for `term` if already allocated.
    pub fn get(&self, term: TermId) -> Option<u32> {
        self.assigned.get(&term).copied()
    }

    /// The term a dense tag was allocated to (inverse lookup).
    pub fn term_of(&self, tag: u32) -> Option<TermId> {
        self.by_tag.get(tag as usize).copied()
    }

    /// Number of distinct terms seen by this list.
    pub fn distinct_terms(&self) -> usize {
        self.assigned.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_simple() {
        let p = Posting::new(DocId(123456), 789, 12);
        assert_eq!(decode_posting(encode_posting(p)), p);
    }

    #[test]
    fn tf_saturates() {
        let p = Posting::new(DocId(1), 0, 1000);
        assert_eq!(p.tf, 255);
    }

    #[test]
    fn boundary_values_roundtrip() {
        let p = Posting {
            doc: DocId(MAX_DOC_ID),
            term_tag: MAX_TERM_TAG,
            tf: 255,
        };
        assert_eq!(decode_posting(encode_posting(p)), p);
        let p = Posting {
            doc: DocId(0),
            term_tag: 0,
            tf: 0,
        };
        assert_eq!(decode_posting(encode_posting(p)), p);
    }

    #[test]
    fn tag_bits_matches_paper_formula() {
        assert_eq!(tag_bits_for_group(0), 0);
        assert_eq!(tag_bits_for_group(1), 0);
        assert_eq!(tag_bits_for_group(2), 1);
        assert_eq!(tag_bits_for_group(3), 2);
        assert_eq!(tag_bits_for_group(32), 5);
        assert_eq!(tag_bits_for_group(33), 6);
    }

    #[test]
    fn tag_allocator_is_dense_and_stable() {
        let mut a = TagAllocator::new();
        let t1 = a.tag_for(TermId(100));
        let t2 = a.tag_for(TermId(7));
        let t1_again = a.tag_for(TermId(100));
        assert_eq!(t1, 0);
        assert_eq!(t2, 1);
        assert_eq!(t1, t1_again);
        assert_eq!(a.get(TermId(7)), Some(1));
        assert_eq!(a.get(TermId(8)), None);
        assert_eq!(a.distinct_terms(), 2);
    }

    #[test]
    fn decode_block_reuses_buffer_and_floors_partial_tail() {
        let a = Posting::new(DocId(1), 0, 1);
        let b = Posting::new(DocId(2), 3, 9);
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&encode_posting(a));
        bytes.extend_from_slice(&encode_posting(b));
        bytes.extend_from_slice(&[0xDE, 0xAD]); // partial trailing posting
        let mut out = vec![Posting::new(DocId(99), 0, 0)]; // stale content
        decode_block(&bytes, &mut out);
        assert_eq!(out, vec![a, b]);
        decode_block(&[], &mut out);
        assert!(out.is_empty());
    }

    proptest! {
        #[test]
        fn prop_roundtrip(doc in 0u64..=MAX_DOC_ID, tag in 0u32..=MAX_TERM_TAG, tf in 0u32..=255) {
            let p = Posting::new(DocId(doc), tag, tf);
            prop_assert_eq!(decode_posting(encode_posting(p)), p);
        }

        #[test]
        fn prop_encoding_order_preserves_doc_order(a in 0u64..=MAX_DOC_ID, b in 0u64..=MAX_DOC_ID) {
            // Encoded words compare like their doc ids when tags/tf are
            // equal — handy for raw-byte scans.
            let pa = u64::from_le_bytes(encode_posting(Posting::new(DocId(a), 5, 1)));
            let pb = u64::from_le_bytes(encode_posting(Posting::new(DocId(b), 5, 1)));
            prop_assert_eq!(pa.cmp(&pb), a.cmp(&b));
        }
    }
}
