//! Property tests for the block-granular read path.
//!
//! The decoded-block cache and `BlockReader` must be observationally
//! invisible: for any append sequence and any block geometry, block-wise
//! iteration, posting-wise iteration, and single-posting reads all yield
//! exactly the same sequence — and rescans interleaved with appends always
//! reflect the store's current contents (cached tail decodes are
//! invalidated by growth, never served stale).

use proptest::prelude::*;
use tks_postings::{DocId, ListId, ListStore, Posting, TermId, POSTING_SIZE};

const NUM_LISTS: u32 = 3;

proptest! {
    /// `BlockReader` concatenation == `PostingListReader` == per-posting
    /// `read_posting_at`, for arbitrary append sequences and block sizes.
    #[test]
    fn block_iteration_equals_posting_iteration(
        ppb in 1usize..=13,
        ops in proptest::collection::vec(
            (0u32..NUM_LISTS, 0u32..4, 0u64..3, 1u32..5),
            0..120,
        ),
    ) {
        let mut store = ListStore::new(ppb * POSTING_SIZE, NUM_LISTS as usize).unwrap();
        let mut model: Vec<Vec<Posting>> = vec![Vec::new(); NUM_LISTS as usize];
        for (list, term, gap, tf) in ops {
            let last = store
                .last_doc(ListId(list))
                .unwrap()
                .map(|d| d.0)
                .unwrap_or(0);
            let doc = DocId(last + gap);
            // Duplicate (term, doc) appends are rejected by the store;
            // the model tracks only what actually committed.
            if store.append(ListId(list), TermId(term), doc, tf, None).is_ok() {
                let tag = store.tag_of(ListId(list), TermId(term)).unwrap().unwrap();
                model[list as usize].push(Posting::new(doc, tag, tf));
            }
        }
        for l in 0..NUM_LISTS {
            let expect = &model[l as usize];
            let via_reader: Vec<Posting> = store.postings(ListId(l)).unwrap().collect();
            prop_assert_eq!(&via_reader, expect, "posting reader, list {}", l);
            let via_blocks: Vec<Posting> = store
                .block_reader(ListId(l))
                .unwrap()
                .flat_map(|b| b.to_vec())
                .collect();
            prop_assert_eq!(&via_blocks, expect, "block reader, list {}", l);
            let file = store.fs().open(&format!("lists/{l}")).unwrap();
            let via_single: Vec<Posting> = (0..expect.len() as u64)
                .map(|i| store.read_posting_at(file, i).unwrap())
                .collect();
            prop_assert_eq!(&via_single, expect, "single-posting reads, list {}", l);
        }
    }

    /// Rescans interleaved with appends always see the full committed
    /// prefix: a tail block cached by an earlier scan must be invalidated
    /// by its length once the list grows into it.
    #[test]
    fn rescans_stay_exact_as_the_list_grows(
        ppb in 1usize..=8,
        batches in proptest::collection::vec(1u64..6, 1..12),
    ) {
        let mut store = ListStore::new(ppb * POSTING_SIZE, 1).unwrap();
        let mut next = 0u64;
        let mut model: Vec<u64> = Vec::new();
        for batch in batches {
            for _ in 0..batch {
                store
                    .append(ListId(0), TermId(0), DocId(next), 1, None)
                    .unwrap();
                model.push(next);
                next += 1;
            }
            let docs: Vec<u64> = store
                .postings(ListId(0))
                .unwrap()
                .map(|p| p.doc.0)
                .collect();
            prop_assert_eq!(&docs, &model, "scan after growing to {} postings", next);
        }
        let stats = store.decoded_cache_stats();
        prop_assert!(
            stats.misses > 0,
            "scans must have gone through the decoded cache: {:?}",
            stats
        );
    }
}
