//! Structural rules: checks that need item extents, statement shape, or
//! binding liveness — things the line-oriented engine could not express.
//!
//! * [`trusted_conjunction`] — the paper's §4 ranking-attack
//!   countermeasure as a lint: the `trusted` verdict may only *originate*
//!   in the verification module, and everywhere else may only get more
//!   conservative (`&&` / `&=`).
//! * [`atomic_ordering`] — the commit-point watermark publishes with
//!   `Release` and is read with `Acquire`; `Relaxed` on a watermark
//!   atomic silently breaks the readers' happens-before argument.
//! * [`guard_across_io`] — a lock guard held across a device read stalls
//!   every concurrent searcher on storage latency; the hot read path
//!   copies what it needs out of the lock before touching I/O.

use super::{first_word, idents, under_any, Sink, HOT_PATH_PREFIXES, PROD_PREFIXES};
use crate::report::Severity;
use crate::scan::SourceFile;

/// The one module allowed to *originate* a `trusted` verdict: the engine's
/// verification path, which derives it from the tamper-log check.
const TRUSTED_INIT_MODULE: &str = "crates/core/src/engine.rs";

/// Rule `trusted-conjunction`: the `trusted` flag on query responses is
/// the paper's §4 countermeasure against ranking attacks — it may only be
/// *derived* from verification (the tamper-log scan in the engine) and
/// may only ever get more conservative as responses flow outward.
/// Outside the allowlisted verification module, non-test code:
///
/// * must not assign literal `true` to a `trusted` binding or field
///   (`trusted = true`, `trusted: true`) — that manufactures trust;
/// * must not combine disjunctively (`trusted |= …`, `trusted ^= …`, or
///   an assignment whose right-hand side contains `||`) — trust must not
///   come back once lost;
/// * may copy (`trusted: resp.trusted`), clear (`= false`), and combine
///   conjunctively (`&&`, `&=`).
pub fn trusted_conjunction(files: &[SourceFile], sink: &mut Sink) {
    for file in files
        .iter()
        .filter(|f| under_any(&f.rel, &PROD_PREFIXES) && f.rel != TRUSTED_INIT_MODULE)
    {
        for line in file.lines() {
            if line.in_test {
                continue;
            }
            for (col, id) in idents(line.code) {
                if id != "trusted" {
                    continue;
                }
                let rest = line.code[col + id.len()..].trim_start();
                let offence = if let Some(value) = rest.strip_prefix(':') {
                    // Struct init / field shorthand: only literal `true`
                    // manufactures trust.  (`trusted: bool` declarations
                    // and copies are fine.)
                    (first_word(value) == "true")
                        .then_some("literal `true` assigned to a `trusted` field")
                } else if rest.starts_with("|=") || rest.starts_with("^=") {
                    Some("disjunctive compound assignment to `trusted`")
                } else if rest.starts_with("&=") || rest.starts_with("==") {
                    None // conjunctive combine / comparison: fine anywhere
                } else if let Some(rhs) = rest.strip_prefix('=') {
                    if first_word(rhs) == "true" {
                        Some("literal `true` assigned to `trusted`")
                    } else if rhs_contains_or(rhs) {
                        Some("disjunction on the right-hand side of a `trusted` assignment")
                    } else {
                        None
                    }
                } else {
                    None
                };
                if let Some(what) = offence {
                    sink.emit(
                        file,
                        "trusted-conjunction",
                        Severity::Deny,
                        line.number,
                        col,
                        format!(
                            "{what}; the `trusted` verdict originates only in the \
                             verification module ({TRUSTED_INIT_MODULE}) and may only \
                             be combined conjunctively (`&&`/`&=`) elsewhere — \
                             trust must never be manufactured or regained (paper §4 \
                             ranking-attack countermeasure)"
                        ),
                    );
                }
            }
        }
    }
}

/// Does the assignment right-hand side (up to the statement's `;`) contain
/// a logical-or?  `||` only — a single `|` is a bitwise or on integers and
/// never applies to the bool flag without also tripping `|=`.
fn rhs_contains_or(rhs: &str) -> bool {
    let stmt = rhs.split(';').next().unwrap_or(rhs);
    stmt.contains("||")
}

/// Crates whose watermark atomics this rule polices: the engine core
/// (commit-point watermark) and the shard layer that republishes it.
const WATERMARK_SCOPE: [&str; 2] = ["crates/core/src/", "crates/shard/src/"];

/// Rule `atomic-ordering`: the commit watermark is the one piece of shared
/// state that tells searchers how far the WORM log is durable.  Its writer
/// must publish with `Release` and its readers must observe with `Acquire`
/// — `Ordering::Relaxed` on a watermark-named atomic gives a reader the
/// watermark value without the happens-before edge to the appends it
/// covers, so a searcher could read past the commit point into torn data.
pub fn atomic_ordering(files: &[SourceFile], sink: &mut Sink) {
    for file in files.iter().filter(|f| under_any(&f.rel, &WATERMARK_SCOPE)) {
        let lines: Vec<&str> = file.code.lines().collect();
        for (idx, line) in lines.iter().enumerate() {
            if file.tree.in_test(idx) {
                continue;
            }
            let ids = idents(line);
            let Some(&(col, _)) = ids.iter().find(|(_, id)| *id == "Relaxed") else {
                continue;
            };
            // The receiver may sit on an earlier line of the same
            // *statement* (rustfmt wraps long `store` calls): join
            // continuation lines back to the previous statement boundary
            // (`;`/`{`/`}`) so a watermark mention in an unrelated earlier
            // statement cannot implicate this one.
            let mut stmt_start = idx;
            while stmt_start > 0 && idx - stmt_start < 4 {
                let prev = lines[stmt_start - 1].trim_end();
                if prev.ends_with(';') || prev.ends_with('{') || prev.ends_with('}') {
                    break;
                }
                stmt_start -= 1;
            }
            let window = stmt_start..=idx;
            let names_watermark = window.clone().any(|j| {
                lines.get(j).is_some_and(|l| {
                    idents(l)
                        .iter()
                        .any(|(_, id)| id.to_ascii_lowercase().contains("watermark"))
                })
            });
            let is_atomic_op = window.clone().any(|j| {
                lines.get(j).is_some_and(|l| {
                    [
                        ".store(",
                        ".load(",
                        ".swap(",
                        ".compare_exchange",
                        ".fetch_",
                    ]
                    .iter()
                    .any(|p| l.contains(p))
                })
            });
            if names_watermark && is_atomic_op {
                sink.emit(
                    file,
                    "atomic-ordering",
                    Severity::Deny,
                    idx + 1,
                    col,
                    "`Ordering::Relaxed` on a watermark atomic: the commit watermark \
                     must publish with `Release` and be read with `Acquire`, or \
                     searchers can observe it without the happens-before edge to the \
                     appends it covers"
                        .to_string(),
                );
            }
        }
    }
}

/// A lock guard binding that is still live.
struct Guard {
    name: String,
    line: usize,
    depth: i32,
}

/// Rule `guard-across-io`: in the hot read-path crates, a `Mutex`/`RwLock`
/// guard binding must not be live across a `WormFs`/`StorageCache` device
/// I/O call.  Holding the decoded-block cache lock (or any other) across a
/// device read serializes every concurrent searcher behind storage
/// latency; the read path copies what it needs out of the lock, drops the
/// guard, and then reads.  Function-scoped via the item tree: a guard is
/// live from its `let` binding until its enclosing block closes or an
/// explicit `drop(guard)`.
pub fn guard_across_io(files: &[SourceFile], sink: &mut Sink) {
    for file in files
        .iter()
        .filter(|f| under_any(&f.rel, &HOT_PATH_PREFIXES))
    {
        let lines: Vec<&str> = file.code.lines().collect();
        for (item, in_test) in file.tree.functions() {
            if in_test || item.tok_body_open.is_none() {
                continue;
            }
            let start = item.kw_line.saturating_sub(1);
            let end = item
                .end_line
                .saturating_sub(1)
                .min(lines.len().saturating_sub(1));
            let mut guards: Vec<Guard> = Vec::new();
            let mut depth = 0i32;
            for (i, &line) in lines.iter().enumerate().take(end + 1).skip(start) {
                if file.tree.in_test(i) {
                    continue;
                }
                // Explicit drop ends a guard's liveness early.
                guards.retain(|g| !line.contains(&format!("drop({})", g.name)));
                // Device I/O while any guard is live?
                if let Some(col) = io_call_col(line) {
                    for g in &guards {
                        sink.emit(
                            file,
                            "guard-across-io",
                            Severity::Deny,
                            i + 1,
                            col,
                            format!(
                                "device I/O with lock guard `{}` (bound at line {}) still \
                                 live; copy what you need out of the lock and drop the \
                                 guard before touching storage — a guard held across a \
                                 device read serializes every concurrent searcher",
                                g.name, g.line
                            ),
                        );
                    }
                }
                // New guard binding on this line?
                if let Some(name) = guard_binding(line) {
                    guards.push(Guard {
                        name,
                        line: i + 1,
                        depth,
                    });
                }
                // Track block structure; a guard dies when its block closes.
                for c in line.chars() {
                    match c {
                        '{' => depth += 1,
                        '}' => {
                            depth -= 1;
                            // A guard bound at depth d dies when its block
                            // closes, i.e. when depth drops below d.
                            guards.retain(|g| depth >= g.depth);
                        }
                        _ => {}
                    }
                }
            }
        }
    }
}

/// Column of a device-I/O call on the stripped line, if any: a block read,
/// a positioned read, or an `fs`-receiver read/append.
fn io_call_col(line: &str) -> Option<usize> {
    for pat in [".read_block(", ".read_exact_at(", ".write_at("] {
        if let Some(p) = line.find(pat) {
            return Some(p);
        }
    }
    for pat in [".read(", ".append("] {
        let mut from = 0;
        while let Some(p) = line.get(from..).and_then(|s| s.find(pat)) {
            let i = from + p;
            if super::receiver_ends_with_fs(line, i) {
                return Some(i);
            }
            from = i + pat.len();
        }
    }
    None
}

/// The bound name of a lock-guard `let` on the stripped line, if the line
/// is one: `let [mut] NAME = …lock()…` / `….read()` / `….write()`.
fn guard_binding(line: &str) -> Option<String> {
    let t = line.trim_start();
    let rest = t.strip_prefix("let ")?;
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let name = super::first_word(rest);
    if name.is_empty() {
        return None;
    }
    let rhs = &rest[name.len()..];
    let acquires = rhs.contains(".lock(") || rhs.contains(".read()") || rhs.contains(".write()");
    acquires.then(|| name.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Report;
    use std::path::PathBuf;

    fn fixture(rel: &str, src: &str) -> SourceFile {
        SourceFile::from_source(PathBuf::from(rel), rel.to_string(), src.to_string())
    }

    fn run(rule: fn(&[SourceFile], &mut Sink), files: &[SourceFile]) -> Report {
        let mut report = Report::default();
        let mut sink = Sink::new(&mut report);
        rule(files, &mut sink);
        report
    }

    #[test]
    fn guard_binding_detects_lock_acquisitions() {
        assert_eq!(
            guard_binding("    let cache = self.blocks.lock().unwrap_or_default();"),
            Some("cache".to_string())
        );
        assert_eq!(
            guard_binding("    let mut map = self.state.write();"),
            Some("map".to_string())
        );
        assert_eq!(guard_binding("    let n = fs.read(f, 0, len)?;"), None);
        assert_eq!(guard_binding("    cache.lock();"), None);
    }

    #[test]
    fn io_col_requires_fs_receiver_for_plain_read() {
        assert!(io_call_col("    let b = self.doc_fs.read(f, 0, n)?;").is_some());
        assert!(io_call_col("    let b = cache.read();").is_none());
        assert!(io_call_col("    let b = store.read_block(id)?;").is_some());
    }

    #[test]
    fn trusted_literal_true_denied_outside_verifier() {
        let src = "\
fn merge(resp: &mut Response) {
    resp.trusted = true;
}
";
        let report = run(
            trusted_conjunction,
            &[fixture("crates/shard/src/service.rs", src)],
        );
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
        assert_eq!(report.findings[0].rule, "trusted-conjunction");
        assert_eq!(report.findings[0].line, 2);
    }

    #[test]
    fn trusted_conjunctive_and_copies_allowed() {
        let src = "\
fn merge(out: &mut Response, resp: &Response) {
    out.trusted &= resp.trusted;
    out.trusted = out.trusted && resp.trusted;
    out.trusted = false;
    let copy = Response { trusted: resp.trusted, hits: 0 };
    if out.trusted == resp.trusted {}
}
struct Response { trusted: bool, hits: u32 }
";
        let report = run(
            trusted_conjunction,
            &[fixture("crates/shard/src/service.rs", src)],
        );
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn trusted_disjunction_denied() {
        let src = "\
fn merge(out: &mut Response, a: &Response, b: &Response) {
    out.trusted |= a.trusted;
    out.trusted = a.trusted || b.trusted;
}
";
        let report = run(
            trusted_conjunction,
            &[fixture("crates/shard/src/service.rs", src)],
        );
        let lines: Vec<usize> = report.findings.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![2, 3], "{:?}", report.findings);
    }

    #[test]
    fn trusted_verifier_module_and_tests_exempt() {
        let src = "\
fn verify(&self) -> Response {
    Response { trusted: true }
}
#[cfg(test)]
mod tests {
    fn t() { let r = Response { trusted: true }; }
}
";
        let in_verifier = run(
            trusted_conjunction,
            &[fixture("crates/core/src/engine.rs", src)],
        );
        assert!(in_verifier.findings.is_empty());
        // The same cfg(test) init in another file is masked; the non-test
        // one fires.
        let elsewhere = run(
            trusted_conjunction,
            &[fixture("crates/server/src/handlers.rs", src)],
        );
        let lines: Vec<usize> = elsewhere.findings.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![2], "{:?}", elsewhere.findings);
    }

    #[test]
    fn atomic_relaxed_on_watermark_denied_release_fine() {
        let src = "\
fn publish(&self, v: u64) {
    self.watermark.store(v, Ordering::Relaxed);
    self.watermark.store(v, Ordering::Release);
    self.stats.store(v, Ordering::Relaxed);
}
fn read(&self) -> u64 {
    self.commit_watermark
        .load(Ordering::Relaxed)
}
";
        let report = run(
            atomic_ordering,
            &[fixture("crates/core/src/service.rs", src)],
        );
        let lines: Vec<usize> = report.findings.iter().map(|f| f.line).collect();
        assert_eq!(
            lines,
            vec![2, 8],
            "Relaxed on watermark (same-line and wrapped) denied; Release and \
             non-watermark atomics fine: {:?}",
            report.findings
        );
    }

    #[test]
    fn guard_across_io_denies_live_guard_over_device_read() {
        let src = "\
fn read_posting(&self, id: BlockId) -> Result<Vec<u8>, E> {
    let cache = self.blocks.lock();
    if let Some(hit) = cache.get(&id) {
        return Ok(hit.clone());
    }
    let bytes = self.store_fs.read(file, off, len)?;
    Ok(bytes)
}
";
        let report = run(
            guard_across_io,
            &[fixture("crates/postings/src/list.rs", src)],
        );
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
        assert_eq!(report.findings[0].line, 6);
        assert!(report.findings[0].message.contains("`cache`"));
    }

    #[test]
    fn guard_across_io_accepts_drop_before_read_and_scoped_guards() {
        let src = "\
fn read_posting(&self, id: BlockId) -> Result<Vec<u8>, E> {
    let cache = self.blocks.lock();
    let cached = cache.get(&id).cloned();
    drop(cache);
    if let Some(hit) = cached {
        return Ok(hit);
    }
    let bytes = self.store_fs.read(file, off, len)?;
    {
        let scoped = self.blocks.lock();
        scoped.insert(id);
    }
    let more = self.store_fs.read(file, off2, len2)?;
    let _ = more;
    Ok(bytes)
}
";
        let report = run(
            guard_across_io,
            &[fixture("crates/postings/src/list.rs", src)],
        );
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn guard_across_io_honours_inline_allow() {
        let src = "\
fn recover(&self) -> Result<(), E> {
    let state = self.state.lock();
    // audit:allow(guard-across-io) — single-threaded recovery path
    let bytes = self.doc_fs.read(file, 0, 16)?;
    let _ = (state, bytes);
    Ok(())
}
";
        let report = run(
            guard_across_io,
            &[fixture("crates/core/src/recover.rs", src)],
        );
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert_eq!(report.suppressed, 1);
    }
}
