//! The eight original lexical rules, ported onto the token-derived views.
//!
//! These rules match ident/line patterns over the stripped code view, with
//! `#[cfg(test)]` masking and function extents now supplied by the item
//! tree instead of ad-hoc brace counting.  Their findings are pinned by
//! the fixture corpus in `tests/audit.rs`: the port must produce the same
//! `(file, line, severity)` set the line-oriented engine did.

use super::{
    call_args, crate_prefix, find_result, idents, is_const_len, last_segment, last_top_level_arg,
    next_non_ws, receiver_ends_with_fs, return_type, second_generic_arg, under_any, Sink,
    HOT_PATH_PREFIXES, PROD_PREFIXES, WIRE_ENVELOPE, WIRE_PREFIXES,
};
use crate::report::Severity;
use crate::scan::SourceFile;
use std::collections::{BTreeMap, BTreeSet};

/// serde machinery identifiers denied outside the envelope module.
const SERDE_IDENTS: [&str; 4] = ["serde", "serde_json", "Serialize", "Deserialize"];

/// Internal core/shard types that must never be serialized directly: their
/// layout follows the engine, not the protocol, so putting one on the wire
/// silently couples remote clients to internal refactors.  The envelope
/// mirrors each as a versioned `Wire*` type instead.
const INTERNAL_WIRE_TYPES: [&str; 9] = [
    "Query",
    "QueryResponse",
    "ShardedResponse",
    "ShardStatus",
    "TimeRange",
    "TermSelector",
    "SearchHit",
    "DegradedShard",
    "ShardedStatus",
];

/// Path prefixes exempt from `worm-append-only`: the WORM layer itself
/// (it names overwrite APIs in order to reject them) and this audit tool
/// (it names them as patterns).
const WORM_RULE_ALLOW: [&str; 2] = ["crates/worm/", "crates/xtask/"];

/// Panicking constructs denied in production code.
const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];
const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// API names that truncate or overwrite storage.  Nothing outside the WORM
/// layer may even name them: committed extents are immutable, and the only
/// mutation path is `WormDevice::try_overwrite`, which exists to *reject*
/// tampering and log a `TamperAttempt`.
const OVERWRITE_APIS: [&str; 7] = [
    "try_overwrite",
    "device_mut",
    "set_len",
    "ftruncate",
    "truncate_file",
    "remove_file",
    "OpenOptions",
];

/// Storage-layer identifiers the shard crate must not name: the sharding
/// layer routes and merges, it never touches a shard's WORM devices or
/// posting store directly.  Every storage interaction flows through the
/// engine/service API, so per-shard fault isolation (and the audit rules
/// above it) cannot be bypassed by the orchestration layer.  The opaque
/// `EngineParts` pass-through is allowed — it carries devices to recovery
/// without granting access to them.
/// The replication crate's applier module — the one file that may mutate
/// a replica's WORM devices (`WormFs::replay` behind chain verification).
const REPLICA_APPLIER: &str = "crates/replica/src/apply.rs";

/// WORM mutation APIs denied in the replication crate outside the applier:
/// every byte on a replica device must arrive through the chain-verified
/// `Applier`.  `crash_recover` is deliberately absent — quarantining torn
/// residue at replica reboot is recovery, not replication.
const REPLICA_MUTATION_IDENTS: [&str; 6] = [
    "append",
    "replay",
    "create",
    "delete",
    "import",
    "device_mut",
];

const SHARD_STORAGE_IDENTS: [&str; 13] = [
    "WormFs",
    "WormDevice",
    "ListStore",
    "list_store",
    "list_store_mut",
    "doc_fs",
    "doc_fs_mut",
    "positions_fs",
    "positions_fs_mut",
    "store_fs",
    "pos_fs",
    "load_fs",
    "save_fs",
];

/// Rule `no-panic-in-prod`: no `unwrap`/`expect` calls and no
/// `panic!`/`unreachable!`/`todo!`/`unimplemented!` macros in non-test code
/// of the production crates (deny); slice/array indexing is flagged at warn
/// severity since `get(..)` with a typed error is preferred but indexing a
/// just-validated range is acceptable.
pub fn no_panic_in_prod(files: &[SourceFile], sink: &mut Sink) {
    for file in files.iter().filter(|f| under_any(&f.rel, &PROD_PREFIXES)) {
        for line in file.lines() {
            if line.in_test {
                continue;
            }
            for (col, id) in idents(line.code) {
                let after = col + id.len();
                if PANIC_METHODS.contains(&id) && next_non_ws(line.code, after) == Some(b'(') {
                    sink.emit(
                        file,
                        "no-panic-in-prod",
                        Severity::Deny,
                        line.number,
                        col,
                        format!(
                            "`{id}(…)` can panic; production code must return a typed \
                             error from the workspace taxonomy instead"
                        ),
                    );
                }
                if PANIC_MACROS.contains(&id) && next_non_ws(line.code, after) == Some(b'!') {
                    sink.emit(
                        file,
                        "no-panic-in-prod",
                        Severity::Deny,
                        line.number,
                        col,
                        format!(
                            "`{id}!` aborts the process; a crash during a compliance \
                             lookup is indistinguishable from a hidden record"
                        ),
                    );
                }
            }
            // Warn-level: indexing expressions `expr[…]` (an out-of-range
            // index panics).  Heuristic: `[` directly preceded by an
            // identifier character, `)`, or `]`.  Attribute lines are
            // skipped (`#[cfg(...)]`).
            if line.code.trim_start().starts_with('#') {
                continue;
            }
            let b = line.code.as_bytes();
            for i in 1..b.len() {
                if b[i] == b'['
                    && (b[i - 1].is_ascii_alphanumeric()
                        || b[i - 1] == b'_'
                        || b[i - 1] == b')'
                        || b[i - 1] == b']')
                {
                    sink.emit(
                        file,
                        "no-panic-in-prod",
                        Severity::Warn,
                        line.number,
                        i,
                        "indexing can panic on out-of-range; prefer `get(..)` with a \
                         typed error unless the range was just validated"
                            .to_string(),
                    );
                }
            }
        }
    }
}

/// Rule `worm-append-only`: outside the WORM layer, no non-test code may
/// name a truncation/overwrite API.  Committed extents are write-once; the
/// append-only discipline is what makes the index trustworthy, so the
/// compiler-visible surface of every other crate must not even mention the
/// escape hatches.
pub fn worm_append_only(files: &[SourceFile], sink: &mut Sink) {
    for file in files
        .iter()
        .filter(|f| !under_any(&f.rel, &WORM_RULE_ALLOW))
    {
        // Scope: crate sources and the facade crate, not tests/examples
        // (adversary simulations legitimately attempt overwrites there).
        let in_scope = (file.rel.starts_with("crates/") && file.rel.contains("/src/"))
            || file.rel.starts_with("src/");
        if !in_scope {
            continue;
        }
        for line in file.lines() {
            if line.in_test {
                continue;
            }
            for (col, id) in idents(line.code) {
                if OVERWRITE_APIS.contains(&id) {
                    sink.emit(
                        file,
                        "worm-append-only",
                        Severity::Deny,
                        line.number,
                        col,
                        format!(
                            "`{id}` is a truncation/overwrite API; only crates/worm may \
                             name it (committed WORM extents are immutable)"
                        ),
                    );
                }
            }
        }
    }
}

/// Rule `shard-isolation`: non-test code in `crates/shard` must not name
/// any storage-layer API — no `WormFs`/`WormDevice`, no posting-store
/// accessors, no persistence entry points.  The sharding layer is pure
/// orchestration: it owns per-shard `IndexWriter`/`Searcher` handles and
/// opaque `EngineParts`, and every byte that reaches a WORM device goes
/// through the engine's audited commit path.  A shard layer with direct
/// device access could corrupt one shard while reporting another healthy,
/// which is exactly the confusion per-shard fault isolation exists to
/// prevent.
pub fn shard_isolation(files: &[SourceFile], sink: &mut Sink) {
    for file in files
        .iter()
        .filter(|f| f.rel.starts_with("crates/shard/src/"))
    {
        for line in file.lines() {
            if line.in_test {
                continue;
            }
            for (col, id) in idents(line.code) {
                if SHARD_STORAGE_IDENTS.contains(&id) {
                    sink.emit(
                        file,
                        "shard-isolation",
                        Severity::Deny,
                        line.number,
                        col,
                        format!(
                            "`{id}` is a storage-layer API; the shard layer is pure \
                             orchestration and must reach storage only through the \
                             engine/service interface"
                        ),
                    );
                }
            }
        }
    }
}

/// Rule `replica-apply-only`: non-test code in `crates/replica` outside
/// the applier module must not name any WORM mutation API.  The applier
/// is the single point where replicated bytes land on a backup device,
/// and it verifies the commit chain before acknowledging every commit
/// point; a second mutation path (fan-out, catch-up, failover) could
/// write bytes no chain link vouches for — exactly the divergence
/// replication exists to detect.
pub fn replica_apply_only(files: &[SourceFile], sink: &mut Sink) {
    for file in files
        .iter()
        .filter(|f| f.rel.starts_with("crates/replica/src/") && f.rel != REPLICA_APPLIER)
    {
        for line in file.lines() {
            if line.in_test {
                continue;
            }
            for (col, id) in idents(line.code) {
                if REPLICA_MUTATION_IDENTS.contains(&id) {
                    sink.emit(
                        file,
                        "replica-apply-only",
                        Severity::Deny,
                        line.number,
                        col,
                        format!(
                            "`{id}` is a WORM mutation API; replica devices change \
                             only through the chain-verified applier module \
                             (`{REPLICA_APPLIER}`)"
                        ),
                    );
                }
            }
        }
    }
}

/// Rule `wire-versioning`: in the network crates (`crates/server`,
/// `crates/client`) every serde touchpoint must live in the envelope
/// module, and internal core/shard types must never be serialized
/// directly.  The wire format is a compatibility contract — a versioned
/// `Wire*` mirror per payload, behind the protocol-version byte — so the
/// engine's internal response types can evolve without silently breaking
/// deployed clients.  Concretely:
///
/// * outside `crates/server/src/wire.rs`, non-test code in the network
///   crates must not name `serde`, `serde_json`, `Serialize`, or
///   `Deserialize` (derives included);
/// * inside the envelope module, no hand-rolled
///   `impl Serialize/Deserialize for <internal type>` and no
///   `serde_json` call that names an internal core/shard type.
pub fn wire_versioning(files: &[SourceFile], sink: &mut Sink) {
    for file in files.iter().filter(|f| under_any(&f.rel, &WIRE_PREFIXES)) {
        let in_envelope = file.rel == WIRE_ENVELOPE;
        for line in file.lines() {
            if line.in_test {
                continue;
            }
            let ids = idents(line.code);
            if !in_envelope {
                // One finding per line: a `use serde::{…}` line names
                // several serde idents but is a single offence.
                if let Some(&(col, id)) = ids.iter().find(|(_, id)| SERDE_IDENTS.contains(id)) {
                    sink.emit(
                        file,
                        "wire-versioning",
                        Severity::Deny,
                        line.number,
                        col,
                        format!(
                            "`{id}` outside the envelope module ({WIRE_ENVELOPE}); \
                             every wire type and serde touchpoint in the network \
                             crates must live behind the versioned envelope"
                        ),
                    );
                }
                continue;
            }
            // Envelope module: serde is allowed, internal types on the
            // wire are not.
            for pat in ["Serialize for ", "Deserialize for "] {
                if let Some(pos) = line.code.find(pat) {
                    if line.code[..pos].contains("impl") {
                        let name: String = line.code[pos + pat.len()..]
                            .chars()
                            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                            .collect();
                        if INTERNAL_WIRE_TYPES.contains(&name.as_str()) {
                            sink.emit(
                                file,
                                "wire-versioning",
                                Severity::Deny,
                                line.number,
                                pos,
                                format!(
                                    "hand-rolled serde impl for internal type `{name}`; \
                                     internal core/shard types cross the wire only as \
                                     versioned `Wire*` envelope mirrors"
                                ),
                            );
                        }
                    }
                }
            }
            // Same-line lexical check: a serde_json call that names an
            // internal type on the line (argument, turbofish, or binding
            // annotation) is a direct leak of engine layout to the wire.
            if ids.iter().any(|&(_, id)| id == "serde_json") {
                if let Some(&(col, id)) =
                    ids.iter().find(|(_, id)| INTERNAL_WIRE_TYPES.contains(id))
                {
                    sink.emit(
                        file,
                        "wire-versioning",
                        Severity::Deny,
                        line.number,
                        col,
                        format!(
                            "internal type `{id}` on a serde_json line; serialize \
                             its versioned `Wire*` mirror instead — internal types \
                             are not wire-stable"
                        ),
                    );
                }
            }
        }
    }
}

/// Rule `hot-path-io` (warn): a `…fs.read(…)` call whose length argument
/// is a small constant — an integer literal or an ALL-CAPS const like
/// `META_RECORD` — inside the postings/core read paths is a per-record
/// read: it pays call overhead and a storage-cache traversal for every
/// few bytes.  Batch through `WormFs::read_block` / `read_exact_at` and
/// decode whole blocks instead.  One-off metadata readers (recovery
/// headers, per-document records) may opt out with
/// `audit:allow(hot-path-io)`.
pub fn hot_path_io(files: &[SourceFile], sink: &mut Sink) {
    for file in files
        .iter()
        .filter(|f| under_any(&f.rel, &HOT_PATH_PREFIXES))
    {
        let lines: Vec<&str> = file.code.lines().collect();
        for (idx, line) in lines.iter().enumerate() {
            if file.tree.in_test(idx) {
                continue;
            }
            let mut from = 0;
            while let Some(p) = line.get(from..).and_then(|s| s.find(".read(")) {
                let i = from + p;
                from = i + ".read(".len();
                if !receiver_ends_with_fs(line, i) {
                    continue;
                }
                let Some(args) = call_args(&lines, idx, i + ".read(".len()) else {
                    continue;
                };
                let Some(len_arg) = last_top_level_arg(&args) else {
                    continue;
                };
                if is_const_len(&len_arg) {
                    sink.emit(
                        file,
                        "hot-path-io",
                        Severity::Warn,
                        idx + 1,
                        i,
                        format!(
                            "constant-length `fs.read(…, {len_arg})` is a per-record read on \
                             the block-granular read path; batch via `read_block`/`read_exact_at` \
                             (metadata readers may `audit:allow(hot-path-io)`)"
                        ),
                    );
                }
            }
        }
    }
}

/// Rule `forbid-unsafe`: no `unsafe` anywhere in the workspace (tests
/// included), and every library crate root must carry
/// `#![forbid(unsafe_code)]` so the compiler enforces it too.
pub fn forbid_unsafe(files: &[SourceFile], sink: &mut Sink) {
    for file in files {
        for line in file.lines() {
            for (col, id) in idents(line.code) {
                if id == "unsafe" {
                    sink.emit(
                        file,
                        "forbid-unsafe",
                        Severity::Deny,
                        line.number,
                        col,
                        "`unsafe` is banned workspace-wide; the index must be \
                         auditable without trusting hand-checked invariants"
                            .to_string(),
                    );
                }
            }
        }
        let is_lib_root = file.rel == "src/lib.rs"
            || (file.rel.starts_with("crates/") && file.rel.ends_with("/src/lib.rs"));
        if is_lib_root && !file.raw.contains("#![forbid(unsafe_code)]") {
            sink.emit(
                file,
                "forbid-unsafe",
                Severity::Deny,
                1,
                0,
                "library crate root is missing `#![forbid(unsafe_code)]`".to_string(),
            );
        }
    }
}

/// Rule `error-taxonomy`: every `pub fn` in a production crate that returns
/// `Result<_, E>` must use an `E` that implements `std::error::Error`
/// (membership is established by scanning the workspace for
/// `impl std::error::Error for …`).  `String`, integers, and other ad-hoc
/// error payloads are denied — they cannot carry a source chain and do not
/// compose under the `TksError` umbrella.
///
/// Since the item-tree port, "public" means any `pub` visibility —
/// `pub(crate)` and `pub(super)` functions are part of the audited surface
/// too (their callers cross module boundaries and deserve taxonomy errors
/// just as much).
pub fn error_taxonomy(files: &[SourceFile], sink: &mut Sink) {
    // Pass 1: collect types with an Error impl, plus per-crate `Result`
    // aliases (e.g. tks-worm's `pub type Result<T> = Result<T, WormError>`).
    let mut error_types: BTreeSet<String> = BTreeSet::new();
    error_types.insert("Error".to_string()); // std::io::Error et al.
    let mut aliases: BTreeMap<String, String> = BTreeMap::new();
    for file in files {
        for line in file.code.lines() {
            if let Some(pos) = line.find("Error for ") {
                if line[..pos].contains("impl") {
                    let rest = &line[pos + "Error for ".len()..];
                    let name: String = rest
                        .chars()
                        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                        .collect();
                    if !name.is_empty() {
                        error_types.insert(name);
                    }
                }
            }
            if let (Some(tp), Some(eq)) = (line.find("type Result<"), line.find('=')) {
                if tp < eq {
                    if let Some(err) = second_generic_arg(&line[eq..]) {
                        if let Some(krate) = crate_prefix(&file.rel) {
                            aliases.insert(krate.to_string(), last_segment(&err));
                        }
                    }
                }
            }
        }
    }

    // Pass 2: check public fallible signatures in production code, walking
    // the item tree's `fn` items.
    for file in files.iter().filter(|f| under_any(&f.rel, &PROD_PREFIXES)) {
        for (line_no, sig) in pub_fn_signatures(file) {
            let Some(ret) = return_type(&sig) else {
                continue;
            };
            let Some(idx) = find_result(&ret) else {
                continue;
            };
            let before = &ret[..idx];
            let err = match second_generic_arg(&ret[idx..]) {
                Some(e) => last_segment(&e),
                None => {
                    // Single-argument `Result<T>`: an alias.  `io::Result`
                    // means `io::Error`; otherwise resolve the crate alias.
                    if before.contains("io::") {
                        "Error".to_string()
                    } else {
                        crate_prefix(&file.rel)
                            .and_then(|k| aliases.get(k).cloned())
                            .unwrap_or_default()
                    }
                }
            };
            let ok =
                error_types.contains(&err) || err.starts_with("Box<dyn") || ret.contains("Box<dyn");
            if !ok {
                sink.emit(
                    file,
                    "error-taxonomy",
                    Severity::Deny,
                    line_no,
                    0,
                    format!(
                        "public fallible API returns `Result<_, {}>` but `{}` has no \
                         `std::error::Error` impl in the workspace taxonomy",
                        if err.is_empty() { "?" } else { &err },
                        if err.is_empty() {
                            "the error type"
                        } else {
                            &err
                        },
                    ),
                );
            }
        }
    }
}

/// Extract `(line_number, signature_text)` for every public `fn` item in
/// non-test code, straight from the item tree: the signature runs from the
/// `fn` keyword token to the body's `{` (or the terminating `;`).
fn pub_fn_signatures(file: &SourceFile) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let toks = &file.tokens;
    for (item, in_test) in file.tree.functions() {
        if in_test || !item.is_pub {
            continue;
        }
        let Some(kw) = toks.get(item.tok_kw) else {
            continue;
        };
        let end_byte = match item.tok_body_open.and_then(|b| toks.get(b)) {
            Some(t) => t.start,
            None => toks
                .get(item.tok_end.saturating_sub(1))
                .map(|t| t.start)
                .unwrap_or(file.code.len()),
        };
        if end_byte <= kw.start {
            continue;
        }
        let sig: String = file.code[kw.start..end_byte]
            .chars()
            .map(|c| if c == '\n' { ' ' } else { c })
            .collect();
        out.push((item.kw_line, sig));
    }
    out
}

/// Rule `commit-point-order`: DOCMETA is the commit point — the record
/// whose presence makes a document durable — so it must be the **last**
/// WORM append of a commit path.  Crash recovery quarantines everything
/// behind the last whole DOCMETA record; an index append sequenced after
/// the DOCMETA append would make a torn commit *visible* (metadata whole,
/// postings missing) instead of quarantinable.
///
/// Per item-tree `fn` span: inside any one non-test function in
/// `crates/core/src/`, a write-path `open(DOCMETA_FILE)` site must not be
/// followed by an index-path append (`store.append(…)`, a B-tree
/// `insert_with(…)`, or a positional-sidecar append) later in the same
/// function.
pub fn commit_point_order(files: &[SourceFile], sink: &mut Sink) {
    for file in files
        .iter()
        .filter(|f| f.rel.starts_with("crates/core/src/"))
    {
        let lines: Vec<&str> = file.code.lines().collect();
        for (item, in_test) in file.tree.functions() {
            if in_test || item.tok_body_open.is_none() {
                continue;
            }
            let start = item.kw_line.saturating_sub(1);
            let end = item.end_line.saturating_sub(1);
            let mut docmeta: Option<(usize, usize)> = None;
            let mut index_after: Option<usize> = None;
            for (i, line) in lines
                .iter()
                .enumerate()
                .take((end + 1).min(lines.len()))
                .skip(start)
            {
                if file.tree.in_test(i) {
                    continue;
                }
                if let Some(col) = line.find("open(DOCMETA_FILE)") {
                    // A read-path site (`open` feeding `read`) cannot
                    // reorder appends; only remember sites in functions
                    // that also append to the index, checked below.
                    if docmeta.is_none() {
                        docmeta = Some((i, col));
                    }
                }
                if docmeta.is_some() && is_index_append(line) {
                    index_after = Some(i);
                }
            }
            if let (Some((dl, dc)), Some(il)) = (docmeta, index_after) {
                sink.emit(
                    file,
                    "commit-point-order",
                    Severity::Deny,
                    dl + 1,
                    dc,
                    format!(
                        "DOCMETA is the commit point and must be the last WORM append \
                         of a commit; an index append follows at line {}",
                        il + 1
                    ),
                );
            }
        }
    }
}

/// An index-path append on the stripped line: a posting-list append, a
/// B-tree (jump / commit-time) `insert_with`, or a positional-sidecar
/// append.
fn is_index_append(line: &str) -> bool {
    [
        "store.append(",
        ".insert_with(",
        "ps.append(",
        "positions.append(",
    ]
    .iter()
    .any(|pat| line.contains(pat))
}

/// `chain-append-discipline` — no core commit path may bypass the chain
/// hasher.  The commit chain's persisted links only attest to the
/// archive if the in-flight digest sees every byte a commit writes; a
/// WORM append in a function that never touches the chain is a write
/// the chain cannot have absorbed, so `tks archive verify` would pass
/// over whatever that write smuggled in.
///
/// Per item-tree `fn` span: inside any one non-test function in
/// `crates/core/src/`, a commit-path append (`store.append(…)`,
/// `doc_fs.append(…)`, or `ps.append(…)`) requires the function to also
/// name the chain (any `chain`-bearing identifier).  Paths that append
/// bytes the chain covers transitively — or that exist to demonstrate
/// the *absence* of this discipline — carry an `audit:allow` with the
/// bounds argument.
pub fn chain_append_discipline(files: &[SourceFile], sink: &mut Sink) {
    for file in files
        .iter()
        .filter(|f| f.rel.starts_with("crates/core/src/"))
    {
        let lines: Vec<&str> = file.code.lines().collect();
        for (item, in_test) in file.tree.functions() {
            if in_test || item.tok_body_open.is_none() {
                continue;
            }
            let start = item.kw_line.saturating_sub(1);
            let end = item.end_line.saturating_sub(1);
            let mut appends: Vec<(usize, usize)> = Vec::new();
            let mut names_chain = false;
            for (i, line) in lines
                .iter()
                .enumerate()
                .take((end + 1).min(lines.len()))
                .skip(start)
            {
                if file.tree.in_test(i) {
                    continue;
                }
                if let Some(col) = commit_path_append(line) {
                    appends.push((i, col));
                }
                if idents(line)
                    .iter()
                    .any(|(_, id)| id.to_ascii_lowercase().contains("chain"))
                {
                    names_chain = true;
                }
            }
            if names_chain {
                continue;
            }
            for (i, col) in appends {
                sink.emit(
                    file,
                    "chain-append-discipline",
                    Severity::Deny,
                    i + 1,
                    col,
                    "commit-path WORM append in a function that never touches the \
                     commit chain; the chain hasher must absorb every byte a commit \
                     writes (or the site needs an audit:allow with a bounds argument)"
                        .to_string(),
                );
            }
        }
    }
}

/// A commit-path WORM append on the stripped line: the posting store,
/// the document device, or the positional sidecar.
fn commit_path_append(line: &str) -> Option<usize> {
    ["store.append(", "doc_fs.append(", "ps.append("]
        .iter()
        .filter_map(|pat| line.find(pat))
        .min()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Report;
    use std::path::PathBuf;

    fn core_fixture(src: &str) -> SourceFile {
        SourceFile::from_source(
            PathBuf::from("crates/core/src/engine.rs"),
            "crates/core/src/engine.rs".to_string(),
            src.to_string(),
        )
    }

    fn run(rule: fn(&[SourceFile], &mut Sink), files: &[SourceFile]) -> Report {
        let mut report = Report::default();
        let mut sink = Sink::new(&mut report);
        rule(files, &mut sink);
        report
    }

    #[test]
    fn commit_point_order_denies_docmeta_before_index_append() {
        let src = "\
fn add(&mut self) -> Result<(), E> {
    let f = self.doc_fs.open(DOCMETA_FILE)?;
    self.doc_fs.append(f, &rec)?;
    self.store.append(list, term, doc, tf, cache)?;
    Ok(())
}
";
        let report = run(commit_point_order, &[core_fixture(src)]);
        assert_eq!(report.findings.len(), 1);
        assert_eq!(report.findings[0].rule, "commit-point-order");
        assert_eq!(report.findings[0].line, 2);
    }

    #[test]
    fn commit_point_order_accepts_docmeta_last() {
        let src = "\
fn add(&mut self) -> Result<(), E> {
    self.store.append(list, term, doc, tf, cache)?;
    self.commit_times.insert_with(entry, |t| {})?;
    let f = self.doc_fs.open(DOCMETA_FILE)?;
    self.doc_fs.append(f, &rec)?;
    Ok(())
}
fn recover() -> Result<(), E> {
    let f = doc_fs.open(DOCMETA_FILE)?;
    let rec = doc_fs.read(f, 0, 16)?;
    Ok(())
}
";
        let report = run(commit_point_order, &[core_fixture(src)]);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn commit_point_order_scopes_per_function_and_skips_tests() {
        // The index append lives in a *different* function, and the
        // test-gated copy of the bad ordering is masked: neither fires.
        let src = "\
fn write_meta(&mut self) -> Result<(), E> {
    let f = self.doc_fs.open(DOCMETA_FILE)?;
    self.doc_fs.append(f, &rec)?;
    Ok(())
}
fn index(&mut self) -> Result<(), E> {
    self.store.append(list, term, doc, tf, cache)?;
    Ok(())
}
#[cfg(test)]
mod tests {
    fn bad() {
        let f = doc_fs.open(DOCMETA_FILE).unwrap();
        store.append(list, term, doc, tf, None).unwrap();
    }
}
";
        let report = run(commit_point_order, &[core_fixture(src)]);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn commit_point_order_honours_inline_allow() {
        let src = "\
fn migrate(&mut self) -> Result<(), E> {
    // audit:allow(commit-point-order)
    let f = self.doc_fs.open(DOCMETA_FILE)?;
    self.store.append(list, term, doc, tf, cache)?;
    Ok(())
}
";
        let report = run(commit_point_order, &[core_fixture(src)]);
        assert!(report.findings.is_empty());
        assert_eq!(report.suppressed, 1);
    }

    #[test]
    fn chain_append_discipline_denies_chainless_commit_appends() {
        let src = "\
fn smuggle(&mut self) -> Result<(), E> {
    self.doc_fs.append(f, &rec)?;
    self.store.append(list, term, doc, tf, cache)?;
    Ok(())
}
";
        let report = run(chain_append_discipline, &[core_fixture(src)]);
        assert_eq!(report.findings.len(), 2, "{:?}", report.findings);
        assert!(report
            .findings
            .iter()
            .all(|f| f.rule == "chain-append-discipline"));
    }

    #[test]
    fn chain_append_discipline_accepts_chain_fed_commits() {
        let src = "\
fn commit(&mut self) -> Result<(), E> {
    self.doc_fs.append(f, text.as_bytes())?;
    self.chain.absorb_text(Some(text.as_bytes()));
    self.store.append(list, term, doc, tf, cache)?;
    Ok(())
}
#[cfg(test)]
mod tests {
    fn injection_helper() {
        store.append(list, term, doc, tf, None).unwrap();
    }
}
";
        let report = run(chain_append_discipline, &[core_fixture(src)]);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn chain_append_discipline_honours_item_scoped_allow() {
        let src = "\
// audit:allow(chain-append-discipline) — dictionary bytes are bound
// transitively via the per-posting term names the chain absorbs
fn intern(&mut self) -> Result<(), E> {
    self.doc_fs.append(file, &rec)?;
    Ok(())
}
";
        let report = run(chain_append_discipline, &[core_fixture(src)]);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert_eq!(report.suppressed, 1);
    }

    #[test]
    fn replica_apply_only_denies_mutation_outside_the_applier() {
        let set = SourceFile::from_source(
            PathBuf::from("crates/replica/src/set.rs"),
            "crates/replica/src/set.rs".to_string(),
            "fn sneak(fs: &mut WormFs, f: FileHandle) {\n    let _ = fs.append(f, b\"x\");\n}\n"
                .to_string(),
        );
        let applier = SourceFile::from_source(
            PathBuf::from("crates/replica/src/apply.rs"),
            "crates/replica/src/apply.rs".to_string(),
            "fn land(fs: &mut WormFs, f: FileHandle) {\n    let _ = fs.replay(f, 0, b\"x\");\n}\n"
                .to_string(),
        );
        let report = run(replica_apply_only, &[set, applier]);
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
        assert_eq!(report.findings[0].rule, "replica-apply-only");
        assert_eq!(report.findings[0].file, "crates/replica/src/set.rs");
        assert_eq!(report.findings[0].line, 2);
    }

    #[test]
    fn replica_apply_only_skips_tests_and_other_crates() {
        let set = SourceFile::from_source(
            PathBuf::from("crates/replica/src/set.rs"),
            "crates/replica/src/set.rs".to_string(),
            "#[cfg(test)]\nmod tests {\n    fn t(fs: &mut WormFs, f: FileHandle) { fs.append(f, b\"x\").unwrap(); }\n}\n"
                .to_string(),
        );
        let other = SourceFile::from_source(
            PathBuf::from("crates/core/src/engine.rs"),
            "crates/core/src/engine.rs".to_string(),
            "fn commit(fs: &mut WormFs, f: FileHandle) {\n    let _ = fs.append(f, b\"x\");\n}\n"
                .to_string(),
        );
        let report = run(replica_apply_only, &[set, other]);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
    }

    #[test]
    fn error_taxonomy_covers_pub_crate_fns() {
        let src = "\
pub(crate) fn helper() -> Result<u8, String> {
    Ok(1)
}
";
        let report = run(error_taxonomy, &[core_fixture(src)]);
        assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
        assert_eq!(report.findings[0].line, 1);
    }

    #[test]
    fn error_taxonomy_item_scoped_allow_covers_whole_fn() {
        let src = "\
// audit:allow(error-taxonomy) — migration shim
#[inline]
pub fn legacy(
    x: u8,
) -> Result<u8, String> {
    Ok(x)
}
";
        let report = run(error_taxonomy, &[core_fixture(src)]);
        assert!(report.findings.is_empty(), "{:?}", report.findings);
        assert_eq!(report.suppressed, 1);
    }
}
